//! Brace/attribute-aware pass over the token stream.
//!
//! Two jobs on top of the raw lexer:
//!
//! 1. **Test-code masking** — items gated behind a `test` attribute
//!    (`#[cfg(test)] mod tests { … }`, `#[test] fn …`, `#[cfg(all(test,
//!    …))]`) are outside the determinism contract; their tokens are
//!    marked and every rule skips them. `#[cfg(not(test))]` does *not*
//!    mask.
//! 2. **Suppression parsing** — `// shredder-lint: allow(R4) — reason`
//!    comments, collected per line. A suppression without a reason is
//!    itself reported (rule `A0`): an allow nobody can audit is a hole
//!    in the contract, not an exemption.

use crate::lexer::{lex, Tok, TokKind};

/// A parsed `shredder-lint: allow(…)` comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// Line the comment starts on.
    pub line: u32,
    /// Rules named inside `allow(…)`, e.g. `["R4", "R5"]`.
    pub rules: Vec<String>,
    /// The free-text justification after the rule list (after `—`,
    /// `-` or `:`). Empty when the author gave none.
    pub reason: String,
}

impl Suppression {
    /// True if the suppression carries a non-empty justification.
    pub fn has_reason(&self) -> bool {
        !self.reason.is_empty()
    }
}

/// A lexed file plus the structural facts the rules need.
#[derive(Debug)]
pub struct ScanFile<'a> {
    /// The source text.
    pub src: &'a str,
    /// Non-comment tokens, in order.
    pub sig: Vec<Tok>,
    /// Aligned with `sig`: true when the token sits inside a
    /// test-gated item.
    pub masked: Vec<bool>,
    /// Every parsed `shredder-lint:` suppression comment.
    pub suppressions: Vec<Suppression>,
    /// Lines holding a `shredder-lint:` marker that failed to parse as
    /// `allow(<rules>)`.
    pub malformed: Vec<u32>,
}

impl<'a> ScanFile<'a> {
    /// Lexes and scans one file.
    pub fn new(src: &'a str) -> Self {
        let toks = lex(src);
        let mut sig = Vec::with_capacity(toks.len());
        let mut suppressions = Vec::new();
        let mut malformed = Vec::new();
        for t in &toks {
            match t.kind {
                TokKind::LineComment | TokKind::BlockComment => {
                    match parse_suppression(t.text(src), t.line) {
                        ParsedComment::Suppression(s) => suppressions.push(s),
                        ParsedComment::Malformed => malformed.push(t.line),
                        ParsedComment::Plain => {}
                    }
                }
                _ => sig.push(*t),
            }
        }
        let masked = mask_test_items(src, &sig);
        ScanFile {
            src,
            sig,
            masked,
            suppressions,
            malformed,
        }
    }

    /// Text of significant token `k`.
    pub fn text(&self, k: usize) -> &'a str {
        self.sig[k].text(self.src)
    }

    /// Kind of significant token `k`.
    pub fn kind(&self, k: usize) -> TokKind {
        self.sig[k].kind
    }

    /// Line of significant token `k`.
    pub fn line(&self, k: usize) -> u32 {
        self.sig[k].line
    }

    /// True when rule `rule` is allowed (with a reason) on `line` or
    /// the line directly above it.
    pub fn allowed(&self, rule: &str, line: u32) -> Option<&Suppression> {
        self.suppressions.iter().find(|s| {
            s.has_reason()
                && (s.line == line || s.line + 1 == line)
                && s.rules.iter().any(|r| r == rule)
        })
    }
}

enum ParsedComment {
    Plain,
    Suppression(Suppression),
    Malformed,
}

/// Parses `// shredder-lint: allow(R1, R4) — reason` out of a comment.
/// The marker must open the comment (after the `//`/`/*` fence) so
/// prose that merely *mentions* the marker, like this doc comment,
/// stays plain.
fn parse_suppression(comment: &str, line: u32) -> ParsedComment {
    let body = comment.trim_start_matches(['/', '!', '*', ' ', '\t']);
    let Some(rest) = body.strip_prefix("shredder-lint:") else {
        return ParsedComment::Plain;
    };
    let rest = rest.trim_start();
    let Some(open) = rest.strip_prefix("allow(") else {
        return ParsedComment::Malformed;
    };
    let Some(close) = open.find(')') else {
        return ParsedComment::Malformed;
    };
    let rules: Vec<String> = open[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() || !rules.iter().all(|r| valid_rule_name(r)) {
        return ParsedComment::Malformed;
    }
    let mut reason = open[close + 1..].trim();
    // Strip the leading separator (em dash / hyphen / colon) and, for
    // block comments, the closing `*/`.
    reason = reason.trim_start_matches(['—', '–', '-', ':', ' ']).trim();
    let reason = reason.strip_suffix("*/").unwrap_or(reason).trim();
    ParsedComment::Suppression(Suppression {
        line,
        rules,
        reason: reason.to_string(),
    })
}

fn valid_rule_name(r: &str) -> bool {
    let mut cs = r.chars();
    cs.next() == Some('R') && r.len() >= 2 && cs.all(|c| c.is_ascii_digit())
}

/// Marks every token belonging to a test-gated item.
fn mask_test_items(src: &str, sig: &[Tok]) -> Vec<bool> {
    let n = sig.len();
    let mut masked = vec![false; n];
    let mut k = 0usize;
    while k < n {
        if sig[k].text(src) == "#" && k + 1 < n && sig[k + 1].text(src) == "[" {
            let (after, is_test) = parse_attr(src, sig, k + 1);
            if is_test {
                // Swallow any further attributes, then the item itself.
                let mut m = after;
                while m + 1 < n && sig[m].text(src) == "#" && sig[m + 1].text(src) == "[" {
                    let (e, _) = parse_attr(src, sig, m + 1);
                    m = e;
                }
                let end = item_end(src, sig, m);
                for slot in masked.iter_mut().take(end).skip(k) {
                    *slot = true;
                }
                k = end;
                continue;
            }
            k = after;
            continue;
        }
        k += 1;
    }
    masked
}

/// Parses an attribute starting at the `[` token `open`. Returns the
/// index one past the matching `]` and whether the attribute gates
/// test code.
fn parse_attr(src: &str, sig: &[Tok], open: usize) -> (usize, bool) {
    let n = sig.len();
    let mut depth = 0i32;
    let mut has_test = false;
    let mut has_not = false;
    let mut k = open;
    while k < n {
        match sig[k].text(src) {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return (k + 1, has_test && !has_not);
                }
            }
            "test" if sig[k].kind == TokKind::Ident => has_test = true,
            "not" if sig[k].kind == TokKind::Ident => has_not = true,
            _ => {}
        }
        k += 1;
    }
    (n, false)
}

/// Finds the end of the item starting at `from`: one past its closing
/// `}` (tracking brace depth), or one past a top-level `;` for
/// braceless items (`use`, type aliases, statics).
fn item_end(src: &str, sig: &[Tok], from: usize) -> usize {
    let n = sig.len();
    let mut depth = 0i32;
    let mut k = from;
    while k < n {
        match sig[k].text(src) {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth <= 0 {
                    return k + 1;
                }
            }
            ";" if depth == 0 => return k + 1,
            _ => {}
        }
        k += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_cfg_test_mod() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n fn inner() { x.unwrap(); }\n}\nfn after() {}";
        let f = ScanFile::new(src);
        let unwrap_pos = (0..f.sig.len()).find(|&k| f.text(k) == "unwrap").unwrap();
        assert!(f.masked[unwrap_pos]);
        let after_pos = (0..f.sig.len()).find(|&k| f.text(k) == "after").unwrap();
        assert!(!f.masked[after_pos]);
    }

    #[test]
    fn masks_bare_test_attr_fn() {
        let src = "#[test]\nfn t() { a.unwrap(); }\nfn live() { b.keep(); }";
        let f = ScanFile::new(src);
        let unwrap_pos = (0..f.sig.len()).find(|&k| f.text(k) == "unwrap").unwrap();
        assert!(f.masked[unwrap_pos]);
        let keep_pos = (0..f.sig.len()).find(|&k| f.text(k) == "keep").unwrap();
        assert!(!f.masked[keep_pos]);
    }

    #[test]
    fn cfg_not_test_stays_live() {
        let src = "#[cfg(not(test))]\nfn live() { x.unwrap(); }";
        let f = ScanFile::new(src);
        let unwrap_pos = (0..f.sig.len()).find(|&k| f.text(k) == "unwrap").unwrap();
        assert!(!f.masked[unwrap_pos]);
    }

    #[test]
    fn cfg_all_test_masks() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nmod t { fn f() { y.unwrap(); } }";
        let f = ScanFile::new(src);
        let unwrap_pos = (0..f.sig.len()).find(|&k| f.text(k) == "unwrap").unwrap();
        assert!(f.masked[unwrap_pos]);
    }

    #[test]
    fn suppression_roundtrip() {
        let src = "// shredder-lint: allow(R4, R5) — sorted on the next line\nfoo();";
        let f = ScanFile::new(src);
        assert_eq!(f.suppressions.len(), 1);
        let s = &f.suppressions[0];
        assert_eq!(s.rules, ["R4", "R5"]);
        assert_eq!(s.reason, "sorted on the next line");
        assert!(f.allowed("R4", 2).is_some());
        assert!(f.allowed("R4", 1).is_some());
        assert!(f.allowed("R4", 3).is_none());
        assert!(f.allowed("R1", 2).is_none());
    }

    #[test]
    fn reason_separators() {
        for sep in ["—", "-", ":", "–"] {
            let src = format!("// shredder-lint: allow(R1) {sep} why not\nx();");
            let f = ScanFile::new(&src);
            assert_eq!(f.suppressions[0].reason, "why not", "sep {sep:?}");
        }
    }

    #[test]
    fn reasonless_suppression_does_not_allow() {
        let src = "// shredder-lint: allow(R4)\nfoo();";
        let f = ScanFile::new(src);
        assert_eq!(f.suppressions.len(), 1);
        assert!(!f.suppressions[0].has_reason());
        assert!(f.allowed("R4", 2).is_none());
    }

    #[test]
    fn malformed_marker_reported() {
        for bad in [
            "// shredder-lint: allow R4 — no parens",
            "// shredder-lint: allow(Q7) — unknown rule",
            "// shredder-lint: allow() — empty",
            "// shredder-lint: disable(R4) — wrong verb",
        ] {
            let f = ScanFile::new(bad);
            assert_eq!(f.malformed, vec![1], "case {bad:?}");
        }
    }

    #[test]
    fn block_comment_suppression() {
        let src = "/* shredder-lint: allow(R3) — worker pool is join-ordered */\nspawn();";
        let f = ScanFile::new(src);
        assert!(f.allowed("R3", 2).is_some());
        assert_eq!(f.suppressions[0].reason, "worker pool is join-ordered");
    }
}
