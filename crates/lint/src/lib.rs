//! `shredder-lint` — the workspace's determinism & invariant
//! static-analysis pass.
//!
//! Every headline result of this reproduction (bit-identical
//! parallel ≡ sequential chunking, replayable `ServiceReport`s, the CI
//! bench gate) rests on the discrete-event simulation being
//! deterministic. This crate machine-checks that contract instead of
//! trusting convention: a dependency-free lexer ([`lexer`]) and a
//! brace/attribute-aware scanner ([`scanner`]) walk every workspace
//! `src/` tree and enforce the rule set in [`rules`]:
//!
//! * **R1** — no wall clock (`Instant::now`, `SystemTime`) in sim crates
//! * **R2** — no unseeded randomness (`thread_rng`, `from_entropy`, `OsRng`)
//! * **R3** — no OS threads (`std::thread`) in the single-threaded DES
//! * **R4** — no order-dependent `HashMap`/`HashSet` iteration
//! * **R5** — no `unwrap`/`expect`/`panic!` in hot-path library files
//! * **R6** — no wall clock at all (`SystemTime`, `Instant::now`, any
//!   `std::time` path — imports included) in telemetry paths:
//!   telemetry records sim time only
//! * **A0** — suppression hygiene (every `allow` carries a reason)
//!
//! Test code is exempt: items behind `#[cfg(test)]`/`#[test]` are
//! masked, and `tests/`, `benches/`, `examples/` and `vendor/` trees
//! are never walked. Intentional exceptions are annotated inline:
//!
//! ```text
//! // shredder-lint: allow(R4) — collected into a Vec and sorted below
//! ```
//!
//! Run it with `cargo run -p shredder-lint` (add `--json` for machine
//! output); the process exits non-zero when any unsuppressed finding
//! remains.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod output;
pub mod rules;
pub mod scanner;

use std::path::{Path, PathBuf};

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (`"R1"`…`"R6"`, or `"A0"` for suppression hygiene).
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human explanation.
    pub message: String,
    /// True when an inline `allow` with a reason covers this finding.
    pub suppressed: bool,
    /// The covering suppression's reason, when suppressed.
    pub suppress_reason: Option<String>,
}

impl Finding {
    /// Creates an unsuppressed finding.
    pub fn new(rule: &'static str, file: &str, line: u32, message: &str) -> Self {
        Finding {
            rule,
            file: file.to_string(),
            line,
            message: message.to_string(),
            suppressed: false,
            suppress_reason: None,
        }
    }
}

/// What the lint enforces where.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Directory prefixes (workspace-relative) exempt from R1 — code
    /// that legitimately measures wall-clock time (the bench harness)
    /// and the lint itself.
    pub wallclock_exempt_dirs: Vec<String>,
    /// Path suffixes of the hot-path library files R5 covers: the
    /// engine, the pipeline, the sink stages and the store commit path.
    pub hot_path_files: Vec<String>,
    /// Directory prefixes (workspace-relative) where R6 forbids *any*
    /// wall clock (`SystemTime`, `Instant::now`, any `std::time` path,
    /// imports included) — the telemetry subsystem, whose determinism
    /// contract requires every timestamp to be sim time handed in by
    /// the simulation.
    pub telemetry_dirs: Vec<String>,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            wallclock_exempt_dirs: vec!["crates/bench".into(), "crates/lint".into()],
            hot_path_files: [
                "crates/core/src/engine.rs",
                "crates/core/src/pipeline.rs",
                "crates/core/src/sink.rs",
                "crates/core/src/host_chunker.rs",
                "crates/core/src/frontend.rs",
                "crates/core/src/service.rs",
                "crates/core/src/bufpool.rs",
                "crates/store/src/store.rs",
                "crates/store/src/segment.rs",
            ]
            .into_iter()
            .map(String::from)
            .collect(),
            telemetry_dirs: vec!["crates/telemetry".into()],
        }
    }
}

/// Lints one source text under its workspace-relative path. Returns
/// every finding, suppressed ones included (check
/// [`Finding::suppressed`]).
pub fn lint_source(rel_path: &str, src: &str, config: &LintConfig) -> Vec<Finding> {
    let scan = scanner::ScanFile::new(src);
    rules::check_file(rel_path, &scan, config)
}

/// Collects every lintable `.rs` file under `root`: the root `src/`
/// tree plus each `crates/*/src` tree, skipping `target`, `vendor`,
/// `tests`, `benches`, `examples` and `fixtures` directories. The list
/// is sorted so output and JSON are byte-stable across platforms.
pub fn workspace_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut roots = vec![root.join("src")];
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for e in entries.flatten() {
            roots.push(e.path().join("src"));
        }
    }
    for r in roots {
        collect_rs(&r, &mut files);
    }
    files.sort();
    files
}

const SKIP_DIRS: &[&str] = &[
    "target", "vendor", "tests", "benches", "examples", "fixtures",
];

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for e in entries.flatten() {
        let path = e.path();
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if !SKIP_DIRS.contains(&name) {
                collect_rs(&path, out);
            }
        } else if path.extension().and_then(|x| x.to_str()) == Some("rs") {
            out.push(path);
        }
    }
}

/// Result of linting a whole workspace.
#[derive(Debug, Clone, Default)]
pub struct LintRun {
    /// Every finding across every file, suppressed included.
    pub findings: Vec<Finding>,
    /// How many files were scanned.
    pub files_scanned: usize,
}

impl LintRun {
    /// Findings not covered by a reasoned suppression.
    pub fn unsuppressed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.suppressed)
    }

    /// Count of unsuppressed findings (the CI-gating number).
    pub fn unsuppressed_count(&self) -> usize {
        self.unsuppressed().count()
    }

    /// Count of suppressed findings.
    pub fn suppressed_count(&self) -> usize {
        self.findings.iter().filter(|f| f.suppressed).count()
    }
}

/// Lints every workspace file under `root`.
pub fn lint_workspace(root: &Path, config: &LintConfig) -> LintRun {
    let files = workspace_files(root);
    let mut run = LintRun {
        files_scanned: files.len(),
        ..LintRun::default()
    };
    for path in &files {
        let Ok(bytes) = std::fs::read(path) else {
            continue;
        };
        let src = String::from_utf8_lossy(&bytes);
        let rel = rel_path(root, path);
        run.findings.extend(lint_source(&rel, &src, config));
    }
    run
}

/// `path` relative to `root`, `/`-separated.
fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
