//! A minimal, *total* Rust lexer.
//!
//! Just enough fidelity to tell identifiers apart from the insides of
//! string literals, char literals, lifetimes and comments — the
//! difference between flagging `thread_rng()` and flagging the word
//! `"thread_rng"` in a doc string. It is not a parser: it produces a
//! flat token stream with byte spans and line numbers, handles nested
//! block comments, raw/byte/C strings with arbitrary `#` fences, raw
//! identifiers and lifetime-vs-char-literal disambiguation, and is
//! total: any byte sequence (lossily decoded) lexes to a token list
//! without panicking, with every span inside the source and strictly
//! advancing.

/// What a token is, at the granularity the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`foo`, `fn`, `HashMap`).
    Ident,
    /// Raw identifier (`r#fn`).
    RawIdent,
    /// Lifetime (`'a`, `'_`).
    Lifetime,
    /// Numeric literal (loosely lexed; suffixes included).
    Number,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`, `c"…"`).
    Str,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// Any single punctuation character.
    Punct,
    /// `// …` comment (doc comments included).
    LineComment,
    /// `/* … */` comment, nesting respected.
    BlockComment,
}

/// One token: kind plus byte span and the 1-based line it starts on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based source line of `start`.
    pub line: u32,
}

impl Tok {
    /// The token's text within `src`.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

/// Lexes `src` into tokens. Total: never panics, always terminates,
/// and every returned span lies within `src` on char boundaries.
pub fn lex(src: &str) -> Vec<Tok> {
    let cs: Vec<(usize, char)> = src.char_indices().collect();
    let n = cs.len();
    let off = |i: usize| -> usize {
        if i < n {
            cs[i].0
        } else {
            src.len()
        }
    };
    let mut toks = Vec::new();
    let mut line = 1u32;
    let mut i = 0usize;
    while i < n {
        let (start, c) = cs[i];
        let start_line = line;
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < n {
            match cs[i + 1].1 {
                '/' => {
                    let mut j = i + 2;
                    while j < n && cs[j].1 != '\n' {
                        j += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::LineComment,
                        start,
                        end: off(j),
                        line: start_line,
                    });
                    i = j;
                    continue;
                }
                '*' => {
                    let mut j = i + 2;
                    let mut depth = 1u32;
                    while j < n && depth > 0 {
                        match cs[j].1 {
                            '\n' => {
                                line += 1;
                                j += 1;
                            }
                            '*' if j + 1 < n && cs[j + 1].1 == '/' => {
                                depth -= 1;
                                j += 2;
                            }
                            '/' if j + 1 < n && cs[j + 1].1 == '*' => {
                                depth += 1;
                                j += 2;
                            }
                            _ => j += 1,
                        }
                    }
                    toks.push(Tok {
                        kind: TokKind::BlockComment,
                        start,
                        end: off(j),
                        line: start_line,
                    });
                    i = j;
                    continue;
                }
                _ => {}
            }
        }
        // Identifiers, keywords, and string-literal prefixes.
        if c == '_' || c.is_alphabetic() {
            let mut j = i + 1;
            while j < n && (cs[j].1 == '_' || cs[j].1.is_alphanumeric()) {
                j += 1;
            }
            let text = &src[start..off(j)];
            let is_prefix = matches!(text, "r" | "b" | "br" | "c" | "cr");
            if is_prefix && j < n && cs[j].1 == '"' {
                // Cooked (b"…", c"…") or raw (r"…", br"…", cr"…") string.
                let raw = text != "b" && text != "c";
                let (end_idx, nl) = if raw {
                    scan_raw_string(&cs, j + 1, 0)
                } else {
                    scan_cooked_string(&cs, j + 1)
                };
                line += nl;
                toks.push(Tok {
                    kind: TokKind::Str,
                    start,
                    end: off(end_idx),
                    line: start_line,
                });
                i = end_idx;
                continue;
            }
            if is_prefix && j < n && cs[j].1 == '#' {
                let mut h = j;
                while h < n && cs[h].1 == '#' {
                    h += 1;
                }
                if h < n && cs[h].1 == '"' {
                    // Raw string with a `#` fence: r#"…"#, br##"…"##.
                    let (end_idx, nl) = scan_raw_string(&cs, h + 1, h - j);
                    line += nl;
                    toks.push(Tok {
                        kind: TokKind::Str,
                        start,
                        end: off(end_idx),
                        line: start_line,
                    });
                    i = end_idx;
                    continue;
                }
                if text == "r" && h == j + 1 && h < n && (cs[h].1 == '_' || cs[h].1.is_alphabetic())
                {
                    // Raw identifier r#foo.
                    let mut k = h + 1;
                    while k < n && (cs[k].1 == '_' || cs[k].1.is_alphanumeric()) {
                        k += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::RawIdent,
                        start,
                        end: off(k),
                        line: start_line,
                    });
                    i = k;
                    continue;
                }
                // Fall through: plain ident, `#` lexes separately.
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                start,
                end: off(j),
                line: start_line,
            });
            i = j;
            continue;
        }
        // Plain string literal.
        if c == '"' {
            let (end_idx, nl) = scan_cooked_string(&cs, i + 1);
            line += nl;
            toks.push(Tok {
                kind: TokKind::Str,
                start,
                end: off(end_idx),
                line: start_line,
            });
            i = end_idx;
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let j = i + 1;
            if j >= n {
                toks.push(Tok {
                    kind: TokKind::Punct,
                    start,
                    end: off(j),
                    line: start_line,
                });
                i = j;
                continue;
            }
            if cs[j].1 == '\\' {
                // Escaped char literal: scan to the closing quote,
                // bounded so a stray `'\` cannot eat the file.
                let mut k = j + 1;
                let mut steps = 0;
                while k < n && cs[k].1 != '\'' && cs[k].1 != '\n' && steps < 12 {
                    k += 1;
                    steps += 1;
                }
                if k < n && cs[k].1 == '\'' {
                    k += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Char,
                    start,
                    end: off(k),
                    line: start_line,
                });
                i = k;
                continue;
            }
            if j + 1 < n && cs[j].1 != '\'' && cs[j + 1].1 == '\'' {
                // 'x'
                toks.push(Tok {
                    kind: TokKind::Char,
                    start,
                    end: off(j + 2),
                    line: start_line,
                });
                i = j + 2;
                continue;
            }
            if cs[j].1 == '_' || cs[j].1.is_alphabetic() {
                // Lifetime.
                let mut k = j + 1;
                while k < n && (cs[k].1 == '_' || cs[k].1.is_alphanumeric()) {
                    k += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Lifetime,
                    start,
                    end: off(k),
                    line: start_line,
                });
                i = k;
                continue;
            }
            // Stray quote (e.g. `''`): single punct, keep advancing.
            toks.push(Tok {
                kind: TokKind::Punct,
                start,
                end: off(j),
                line: start_line,
            });
            i = j;
            continue;
        }
        // Numbers (loose: hex/suffixes lex as one token; `0..9` keeps
        // the range dots out of the number).
        if c.is_ascii_digit() {
            let mut j = i + 1;
            while j < n && (cs[j].1 == '_' || cs[j].1.is_alphanumeric()) {
                j += 1;
            }
            if j + 1 < n && cs[j].1 == '.' && cs[j + 1].1.is_ascii_digit() {
                j += 1;
                while j < n && (cs[j].1 == '_' || cs[j].1.is_alphanumeric()) {
                    j += 1;
                }
            }
            toks.push(Tok {
                kind: TokKind::Number,
                start,
                end: off(j),
                line: start_line,
            });
            i = j;
            continue;
        }
        // Everything else: one punctuation char.
        toks.push(Tok {
            kind: TokKind::Punct,
            start,
            end: off(i + 1),
            line: start_line,
        });
        i += 1;
    }
    toks
}

/// Scans a cooked string body from `from` (past the opening quote).
/// Returns (index past the closing quote or EOF, newlines crossed).
fn scan_cooked_string(cs: &[(usize, char)], from: usize) -> (usize, u32) {
    let n = cs.len();
    let mut j = from;
    let mut nl = 0u32;
    while j < n {
        match cs[j].1 {
            '\\' => {
                if j + 1 < n && cs[j + 1].1 == '\n' {
                    nl += 1;
                }
                j += 2;
            }
            '"' => return (j + 1, nl),
            '\n' => {
                nl += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    (n, nl)
}

/// Scans a raw string body from `from` (past the opening quote) closed
/// by `"` followed by `hashes` `#`s. Returns (index past the close or
/// EOF, newlines crossed).
fn scan_raw_string(cs: &[(usize, char)], from: usize, hashes: usize) -> (usize, u32) {
    let n = cs.len();
    let mut j = from;
    let mut nl = 0u32;
    while j < n {
        if cs[j].1 == '\n' {
            nl += 1;
            j += 1;
            continue;
        }
        if cs[j].1 == '"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while k < n && seen < hashes && cs[k].1 == '#' {
                k += 1;
                seen += 1;
            }
            if seen == hashes {
                return (k, nl);
            }
        }
        j += 1;
    }
    (n, nl)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let ks = kinds("let x = y.iter();");
        let texts: Vec<&str> = ks.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(texts, ["let", "x", "=", "y", ".", "iter", "(", ")", ";"]);
    }

    #[test]
    fn strings_hide_identifiers() {
        let ks = kinds(r#"let s = "thread_rng HashMap";"#);
        assert!(ks
            .iter()
            .all(|(k, t)| *k != TokKind::Ident || (t != "thread_rng" && t != "HashMap")));
        assert_eq!(ks.iter().filter(|(k, _)| *k == TokKind::Str).count(), 1);
    }

    #[test]
    fn raw_strings_with_fences() {
        let src = r####"let s = r##"quote " and "# inside"## ;"####;
        let ks = kinds(src);
        let strs: Vec<&str> = ks
            .iter()
            .filter(|(k, _)| *k == TokKind::Str)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(strs, [r####"r##"quote " and "# inside"##"####]);
    }

    #[test]
    fn byte_and_c_strings() {
        let ks = kinds(r##"let a = b"bytes"; let b = c"cstr"; let c = br#"raw"#;"##);
        assert_eq!(ks.iter().filter(|(k, _)| *k == TokKind::Str).count(), 3);
    }

    #[test]
    fn comments_hide_identifiers() {
        let ks = kinds("// thread_rng\n/* HashMap /* nested */ still */ fn f() {}");
        let idents: Vec<&str> = ks
            .iter()
            .filter(|(k, _)| *k == TokKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, ["fn", "f"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let ks = kinds("fn f<'a>(x: &'a u8) { let c = 'x'; let nl = '\\n'; }");
        let lifetimes = ks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count();
        let chars = ks.iter().filter(|(k, _)| *k == TokKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn raw_identifiers() {
        let ks = kinds("let r#fn = 1;");
        assert!(ks
            .iter()
            .any(|(k, t)| *k == TokKind::RawIdent && t == "r#fn"));
    }

    #[test]
    fn line_numbers_track_all_multiline_forms() {
        let src = "a\n\"two\nlines\"\n/* b\nc */\nend";
        let toks = lex(src);
        let end = toks.last().unwrap();
        assert_eq!(end.text(src), "end");
        assert_eq!(end.line, 6);
    }

    #[test]
    fn unterminated_forms_do_not_hang() {
        for src in ["\"unterminated", "r#\"open", "/* open", "'\\", "b\"x"] {
            let toks = lex(src);
            for t in &toks {
                assert!(t.end <= src.len());
                assert!(t.start < t.end);
            }
        }
    }

    #[test]
    fn spans_are_ordered_and_in_bounds() {
        let src = "fn main() { println!(\"hi\"); }";
        let toks = lex(src);
        let mut prev_end = 0;
        for t in &toks {
            assert!(t.start >= prev_end);
            assert!(t.end <= src.len());
            prev_end = t.end;
        }
    }
}
