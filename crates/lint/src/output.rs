//! Rendering: human-readable findings and machine-readable JSON.

use crate::{Finding, LintRun};

/// Renders the run in the human format, one finding per line plus a
/// summary, e.g.:
///
/// ```text
/// crates/hdfs/src/fs.rs:128 R4 order-dependent iteration (…)
/// 1 finding (3 suppressed) across 58 files
/// ```
pub fn human(run: &LintRun) -> String {
    let mut out = String::new();
    for f in run.unsuppressed() {
        out.push_str(&format!("{}:{} {} {}\n", f.file, f.line, f.rule, f.message));
    }
    let n = run.unsuppressed_count();
    out.push_str(&format!(
        "{n} finding{} ({} suppressed) across {} files\n",
        if n == 1 { "" } else { "s" },
        run.suppressed_count(),
        run.files_scanned,
    ));
    out
}

/// Renders the run as JSON (hand-rolled: the lint is dependency-free).
/// Shape:
///
/// ```json
/// {
///   "files_scanned": 58,
///   "unsuppressed": 1,
///   "suppressed": 3,
///   "findings": [
///     {"rule": "R4", "file": "…", "line": 128, "message": "…",
///      "suppressed": false}
///   ]
/// }
/// ```
pub fn json(run: &LintRun) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"files_scanned\": {},\n", run.files_scanned));
    out.push_str(&format!(
        "  \"unsuppressed\": {},\n",
        run.unsuppressed_count()
    ));
    out.push_str(&format!("  \"suppressed\": {},\n", run.suppressed_count()));
    out.push_str("  \"findings\": [");
    for (i, f) in run.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        out.push_str(&finding_json(f));
    }
    if !run.findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

fn finding_json(f: &Finding) -> String {
    let mut obj = format!(
        "{{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}, \"suppressed\": {}",
        escape(f.rule),
        escape(&f.file),
        f.line,
        escape(&f.message),
        f.suppressed,
    );
    if let Some(r) = &f.suppress_reason {
        obj.push_str(&format!(", \"reason\": {}", escape(r)));
    }
    obj.push('}');
    obj
}

/// Escapes a string for JSON.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_run() -> LintRun {
        let mut bad = Finding::new("R4", "a.rs", 3, "iteration \"quoted\"");
        bad.suppressed = false;
        let mut ok = Finding::new("R5", "b.rs", 9, "unwrap");
        ok.suppressed = true;
        ok.suppress_reason = Some("proven unreachable".into());
        LintRun {
            findings: vec![bad, ok],
            files_scanned: 2,
        }
    }

    #[test]
    fn human_lists_only_unsuppressed() {
        let h = human(&sample_run());
        assert!(h.contains("a.rs:3 R4"));
        assert!(!h.contains("b.rs:9"));
        assert!(h.contains("1 finding (1 suppressed) across 2 files"));
    }

    #[test]
    fn json_escapes_and_counts() {
        let j = json(&sample_run());
        assert!(j.contains("\"unsuppressed\": 1"));
        assert!(j.contains("\"suppressed\": 1"));
        assert!(j.contains("iteration \\\"quoted\\\""));
        assert!(j.contains("\"reason\": \"proven unreachable\""));
    }

    #[test]
    fn empty_run_is_valid_json_shape() {
        let j = json(&LintRun::default());
        assert!(j.contains("\"findings\": []"));
    }
}
