//! The determinism rule set (R1–R5) over a scanned file.
//!
//! Every rule pattern-matches the significant-token stream; the lexer
//! already removed comments and string/char literal interiors, and the
//! scanner masked test-gated items, so an identifier hit here is real
//! non-test code.
//!
//! | Rule | Invariant |
//! |------|-----------|
//! | R1 | No wall clock (`Instant::now`, `SystemTime`) in sim crates |
//! | R2 | No unseeded randomness (`thread_rng`, `from_entropy`, `OsRng`) |
//! | R3 | No OS threads (`std::thread`, `thread::spawn/scope/…`) |
//! | R4 | No order-dependent `HashMap`/`HashSet` iteration |
//! | R5 | No `unwrap`/`expect`/`panic!` in hot-path library files |
//! | R6 | No wall clock at all (`SystemTime`, `Instant::now`, any `std::time` path) in telemetry paths |
//! | A0 | Suppression hygiene (reasonless or malformed `allow`) |

use crate::lexer::TokKind;
use crate::scanner::ScanFile;
use crate::{Finding, LintConfig};

/// Iteration methods whose visiting order leaks the hasher state.
const ORDER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
    "extract_if",
];

/// Unseeded randomness sources (R2).
const RNG_IDENTS: &[&str] = &["thread_rng", "from_entropy", "OsRng"];

/// `std::thread` members that create or schedule real threads (R3).
const THREAD_MEMBERS: &[&str] = &[
    "spawn",
    "scope",
    "sleep",
    "park",
    "yield_now",
    "Builder",
    "JoinHandle",
    "available_parallelism",
];

/// `.unwrap()`-family methods (R5).
const PANICKY_METHODS: &[&str] = &["unwrap", "expect"];

/// Panicking macros (R5).
const PANICKY_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Identifier keywords at which the backwards `name: Hash…` walk gives
/// up — crossing one means the `HashMap` is not a binding's type.
const DECL_WALK_BAIL: &[&str] = &[
    "impl", "for", "fn", "where", "let", "pub", "use", "struct", "enum", "trait", "return",
    "match", "if", "else", "in", "as", "move", "static", "const", "type", "crate", "self", "super",
    "mod",
];

/// Runs every applicable rule on one scanned file. `rel_path` uses `/`
/// separators and is relative to the workspace root.
pub fn check_file(rel_path: &str, scan: &ScanFile<'_>, config: &LintConfig) -> Vec<Finding> {
    let mut findings = Vec::new();

    let r1_applies = !config
        .wallclock_exempt_dirs
        .iter()
        .any(|d| rel_path.starts_with(d.as_str()));
    let r5_applies = config
        .hot_path_files
        .iter()
        .any(|f| rel_path.ends_with(f.as_str()));
    let r6_applies = config
        .telemetry_dirs
        .iter()
        .any(|d| rel_path.starts_with(d.as_str()));

    let hashed_names = collect_hashed_bindings(scan);

    let n = scan.sig.len();
    let txt = |k: usize| scan.text(k);
    let is_ident = |k: usize| scan.kind(k) == TokKind::Ident;
    // `::` is two adjacent `:` puncts.
    let path_sep = |k: usize| {
        k + 1 < n && txt(k) == ":" && txt(k + 1) == ":" && scan.sig[k + 1].start == scan.sig[k].end
    };

    for k in 0..n {
        if scan.masked[k] || !is_ident(k) {
            continue;
        }
        let t = txt(k);
        let line = scan.line(k);

        // R1 — wall clock.
        if r1_applies {
            if t == "Instant" && path_sep(k + 1) && k + 3 < n && txt(k + 3) == "now" {
                findings.push(Finding::new(
                    "R1",
                    rel_path,
                    line,
                    "wall-clock read (`Instant::now`) in simulation code; use the DES clock",
                ));
            }
            if t == "SystemTime" {
                findings.push(Finding::new(
                    "R1",
                    rel_path,
                    line,
                    "wall-clock type (`SystemTime`) in simulation code; use the DES clock",
                ));
            }
        }

        // R6 — wall clock anywhere in telemetry paths. Stricter than
        // R1: telemetry stamps every record with sim time handed in by
        // the simulation, so beyond the `::now()` reads R1 catches,
        // any `SystemTime` mention and any `std::time` path — imports
        // included, the gateway for a later bare `Instant` — is a
        // finding. (A bare `Instant` ident alone is not matched: the
        // crate's own `TraceRecord::Instant` variant shares the name.)
        if r6_applies {
            if t == "SystemTime"
                || (t == "Instant" && path_sep(k + 1) && k + 3 < n && txt(k + 3) == "now")
            {
                findings.push(Finding::new(
                    "R6",
                    rel_path,
                    line,
                    &format!(
                        "wall-clock use (`{t}`) in a telemetry path; telemetry records sim time only"
                    ),
                ));
            }
            if t == "std" && path_sep(k + 1) && k + 3 < n && txt(k + 3) == "time" {
                findings.push(Finding::new(
                    "R6",
                    rel_path,
                    line,
                    "`std::time` in a telemetry path; telemetry records sim time only",
                ));
            }
        }

        // R2 — unseeded randomness.
        if RNG_IDENTS.contains(&t) {
            findings.push(Finding::new(
                "R2",
                rel_path,
                line,
                &format!("unseeded randomness (`{t}`); derive every RNG from an explicit seed"),
            ));
        }

        // R3 — OS threads.
        if t == "std" && path_sep(k + 1) && k + 3 < n && txt(k + 3) == "thread" {
            findings.push(Finding::new(
                "R3",
                rel_path,
                line,
                "OS threads (`std::thread`) in the single-threaded DES",
            ));
        } else if t == "thread"
            && path_sep(k + 1)
            && k + 3 < n
            && THREAD_MEMBERS.contains(&txt(k + 3))
        {
            findings.push(Finding::new(
                "R3",
                rel_path,
                line,
                &format!(
                    "OS threads (`thread::{}`) in the single-threaded DES",
                    txt(k + 3)
                ),
            ));
        }

        // R4 — order-dependent iteration.
        if (t == "HashMap" || t == "HashSet")
            && path_sep(k + 1)
            && k + 3 < n
            && ORDER_METHODS.contains(&txt(k + 3))
        {
            findings.push(Finding::new(
                "R4",
                rel_path,
                line,
                &format!(
                    "order-dependent iteration (`{t}::{}`); use a BTree collection or sort",
                    txt(k + 3)
                ),
            ));
        }
        if hashed_names.contains(&t)
            && k + 2 < n
            && txt(k + 1) == "."
            && ORDER_METHODS.contains(&txt(k + 2))
            && !scan.masked[k + 2]
        {
            findings.push(Finding::new(
                "R4",
                rel_path,
                scan.line(k + 2),
                &format!(
                    "order-dependent iteration (`{t}.{}()` where `{t}` is a HashMap/HashSet); \
                     use a BTree collection or sort the result",
                    txt(k + 2)
                ),
            ));
        }
        // `for x in &name { … }` over a hashed binding.
        if t == "for" {
            if let Some(f) = check_for_loop(scan, k, &hashed_names, rel_path) {
                findings.push(f);
            }
        }

        // R5 — panics in hot paths.
        if r5_applies {
            if PANICKY_METHODS.contains(&t) && k > 0 && txt(k - 1) == "." {
                findings.push(Finding::new(
                    "R5",
                    rel_path,
                    line,
                    &format!("`.{t}()` in a hot-path file; return a typed error or justify with an allow"),
                ));
            }
            if PANICKY_MACROS.contains(&t) && k + 1 < n && txt(k + 1) == "!" {
                findings.push(Finding::new(
                    "R5",
                    rel_path,
                    line,
                    &format!(
                        "`{t}!` in a hot-path file; return a typed error or justify with an allow"
                    ),
                ));
            }
        }
    }

    // A0 — suppression hygiene.
    for s in &scan.suppressions {
        if !s.has_reason() {
            findings.push(Finding::new(
                "A0",
                rel_path,
                s.line,
                "suppression without a reason; write `shredder-lint: allow(<rule>) — <why>`",
            ));
        }
    }
    for &line in &scan.malformed {
        findings.push(Finding::new(
            "A0",
            rel_path,
            line,
            "malformed `shredder-lint:` marker; expected `allow(R<n>[, R<n>…]) — <why>`",
        ));
    }

    // Dedup (rule, line) — `std::thread::spawn` should not double-fire —
    // then apply suppressions.
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings.dedup_by(|a, b| a.rule == b.rule && a.line == b.line);
    for f in &mut findings {
        if f.rule == "A0" {
            continue;
        }
        if let Some(s) = scan.allowed(f.rule, f.line) {
            f.suppressed = true;
            f.suppress_reason = Some(s.reason.clone());
        }
    }
    findings
}

/// Collects the names of bindings (fields, params, lets) declared with
/// a `HashMap`/`HashSet` type in non-test code.
fn collect_hashed_bindings<'a>(scan: &ScanFile<'a>) -> Vec<&'a str> {
    let n = scan.sig.len();
    let mut names: Vec<&str> = Vec::new();
    for k in 0..n {
        if scan.masked[k] || scan.kind(k) != TokKind::Ident {
            continue;
        }
        let t = scan.text(k);
        // `name: …HashMap<…>` — walk back through the type path to the
        // single colon that binds it to a name.
        if t == "HashMap" || t == "HashSet" {
            if let Some(name) = binding_name_before(scan, k) {
                if !names.contains(&name) {
                    names.push(name);
                }
            }
        }
        // `let [mut] name = HashMap::new()` — type inferred, no colon.
        if t == "let" {
            let mut m = k + 1;
            if m < n && scan.text(m) == "mut" {
                m += 1;
            }
            if m < n && scan.kind(m) == TokKind::Ident {
                let name = scan.text(m);
                let mut j = m + 1;
                let mut steps = 0;
                while j < n && steps < 300 {
                    let tj = scan.text(j);
                    if tj == ";" {
                        break;
                    }
                    if (tj == "HashMap" || tj == "HashSet") && !names.contains(&name) {
                        names.push(name);
                        break;
                    }
                    j += 1;
                    steps += 1;
                }
            }
        }
    }
    names
}

/// From the `HashMap`/`HashSet` ident at `k`, walks backwards through
/// the type expression looking for the `name :` that declares it.
fn binding_name_before<'a>(scan: &ScanFile<'a>, k: usize) -> Option<&'a str> {
    let mut j = k;
    while j > 0 {
        j -= 1;
        let t = scan.text(j);
        match t {
            ":" => {
                if j > 0 && scan.text(j - 1) == ":" {
                    // `::` path separator — keep walking past it.
                    if j == 0 {
                        return None;
                    }
                    j -= 1;
                    continue;
                }
                // Single colon: the ident before it is the binding.
                if j > 0 && scan.kind(j - 1) == TokKind::Ident {
                    let name = scan.text(j - 1);
                    if DECL_WALK_BAIL.contains(&name) {
                        return None;
                    }
                    return Some(name);
                }
                return None;
            }
            "<" | ">" | "&" => continue,
            _ if scan.kind(j) == TokKind::Lifetime => continue,
            _ if scan.kind(j) == TokKind::Ident => {
                if DECL_WALK_BAIL.contains(&t) {
                    return None;
                }
                continue;
            }
            _ => return None,
        }
    }
    None
}

/// Checks a `for … in EXPR {` loop for iteration over a hashed binding.
fn check_for_loop(
    scan: &ScanFile<'_>,
    k: usize,
    hashed_names: &[&str],
    rel_path: &str,
) -> Option<Finding> {
    let n = scan.sig.len();
    // Find `in` before the loop body opens (bail on `impl … for …`,
    // which hits `{` or `::` first without an `in`).
    let mut j = k + 1;
    let mut steps = 0;
    while j < n && steps < 60 {
        let t = scan.text(j);
        if t == "{" || t == ";" {
            return None;
        }
        if t == "in" && scan.kind(j) == TokKind::Ident {
            break;
        }
        j += 1;
        steps += 1;
    }
    if j >= n || steps >= 60 {
        return None;
    }
    // Scan the iterable expression up to the body `{`.
    let mut m = j + 1;
    steps = 0;
    while m < n && steps < 100 {
        let t = scan.text(m);
        if t == "{" {
            return None;
        }
        if scan.kind(m) == TokKind::Ident && hashed_names.contains(&t) && !scan.masked[m] {
            return Some(Finding::new(
                "R4",
                rel_path,
                scan.line(m),
                &format!(
                    "order-dependent iteration (`for … in` over `{t}`, a HashMap/HashSet); \
                     use a BTree collection or iterate a sorted copy"
                ),
            ));
        }
        m += 1;
        steps += 1;
    }
    None
}
