//! CLI for `shredder-lint`.
//!
//! ```text
//! cargo run -p shredder-lint              # human output, exit 1 on findings
//! cargo run -p shredder-lint -- --json    # machine output
//! cargo run -p shredder-lint -- --root /path/to/workspace
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use shredder_lint::{lint_workspace, output, LintConfig};

fn main() -> ExitCode {
    let mut json = false;
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("--root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "shredder-lint: determinism & invariant static analysis (R1-R5)\n\
                     usage: shredder-lint [--json] [--root <workspace>]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }

    let run = lint_workspace(&root, &LintConfig::default());
    if json {
        print!("{}", output::json(&run));
    } else {
        print!("{}", output::human(&run));
    }
    if run.files_scanned == 0 {
        eprintln!("no files found under {} — wrong --root?", root.display());
        return ExitCode::from(2);
    }
    if run.unsuppressed_count() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
