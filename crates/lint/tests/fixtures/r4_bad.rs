//! Fixture: order-dependent hash iteration (R4 three ways).

use std::collections::{HashMap, HashSet};

pub struct Report {
    counts: HashMap<String, u64>,
}

impl Report {
    /// Method call on a tracked field binding.
    pub fn lines(&self) -> Vec<String> {
        self.counts.iter().map(|(k, v)| format!("{k}={v}")).collect()
    }
}

/// `for` loop over a tracked `let` binding.
pub fn sum_wrong(input: &[u64]) -> Vec<u64> {
    let mut seen: HashSet<u64> = HashSet::new();
    seen.extend(input.iter().copied());
    let mut out = Vec::new();
    for v in &seen {
        out.push(*v);
    }
    out
}

/// Direct associated-path iteration.
pub fn keys_wrong(m: &HashMap<u32, u32>) -> usize {
    HashMap::iter(m).count()
}
