//! Fixture: suppression-hygiene violations (A0): reasonless allows and
//! markers that do not parse. None of these suppress anything.

pub fn reasonless(slots: &[Option<u32>]) -> u32 {
    // shredder-lint: allow(R5)
    slots.first().unwrap().unwrap_or(0)
}

pub fn no_parens() {
    // shredder-lint: allow R3 — forgot the parens
    std::thread::spawn(|| {});
}

pub fn unknown_rule() {
    // shredder-lint: allow(Q9) — not a rule name
}

pub fn wrong_verb() {
    // shredder-lint: disable(R1) — wrong verb
}
