//! Fixture: clean code the lint must stay silent on — BTree iteration,
//! seeded RNG, DES clocks, violations hidden in strings, and real
//! violations gated behind test attributes (masked).

use std::collections::BTreeMap;

pub fn report(counts: &BTreeMap<String, u64>) -> Vec<String> {
    counts.iter().map(|(k, v)| format!("{k}={v}")).collect()
}

pub fn seeded(seed: u64) -> u64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    rng.gen()
}

/// Mentions of banned names inside strings are not code.
pub fn doc_strings() -> &'static str {
    "call Instant::now or std::thread::spawn or x.unwrap() at your peril"
}

pub fn membership_only(seen: &std::collections::HashSet<u64>, v: u64) -> bool {
    // contains() is order-independent; only iteration escaping is R4.
    seen.contains(&v)
}

#[cfg(test)]
mod tests {
    #[test]
    fn wall_clock_in_tests_is_fine() {
        let t0 = std::time::Instant::now();
        let mut rng = rand::thread_rng();
        std::thread::spawn(|| {});
        let m: std::collections::HashMap<u32, u32> = Default::default();
        for _ in m.iter() {}
        assert!(t0.elapsed().as_nanos() < u128::MAX && rng.gen::<bool>() || true);
    }
}

#[test]
fn bare_test_attr_masks_too() {
    Instant::now();
}
