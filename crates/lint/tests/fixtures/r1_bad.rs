//! Fixture: wall-clock reads in simulation code (R1 twice).

use std::time::{Instant, SystemTime};

pub fn elapsed_wrong() -> u128 {
    let start = Instant::now();
    start.elapsed().as_nanos()
}

pub fn stamp_wrong() -> SystemTime {
    SystemTime::now()
}
