//! Fixture: wall-clock types in telemetry code (R6).

use std::time::SystemTime;

pub fn stamp_wrong() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}

pub fn wall() -> SystemTime {
    SystemTime::now()
}
