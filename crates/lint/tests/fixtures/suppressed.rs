//! Fixture: one violation per rule, each carrying a reasoned allow —
//! everything here must come out suppressed.

pub fn timed_replay() -> u128 {
    // shredder-lint: allow(R1) — replay harness correlates sim time with wall time on purpose
    let t0 = Instant::now();
    t0.elapsed().as_nanos()
}

pub fn jittered_seed() -> u64 {
    // shredder-lint: allow(R2) — one-time seed capture at process start, recorded in the report
    rand::thread_rng().gen()
}

pub fn parallel_scan(data: &[u8]) -> usize {
    // shredder-lint: allow(R3) — regions are owner-disjoint and merged in region order
    std::thread::scope(|s| {
        s.spawn(|| data.len());
        data.len()
    })
}

pub fn histogram(m: &std::collections::HashMap<u32, u32>) -> Vec<(u32, u32)> {
    let mut pairs: Vec<(u32, u32)> =
        // shredder-lint: allow(R4) — collected into a Vec and sorted on the next line
        HashMap::iter(m).map(|(k, v)| (*k, *v)).collect();
    pairs.sort_unstable();
    pairs
}

pub fn commit(slots: &[Option<u32>]) -> u32 {
    slots
        .first()
        // shredder-lint: allow(R5) — caller guarantees at least one slot; checked by the admission gate
        .unwrap()
        .unwrap_or(0)
}
