//! Fixture: panicking calls in a hot-path file (R5 three ways).

pub fn commit_wrong(slots: &[Option<u32>]) -> u32 {
    let first = slots.first().unwrap();
    let value = first.expect("slot filled");
    if value == 0 {
        panic!("zero value");
    }
    value
}
