//! Fixture: unseeded randomness (R2 twice).

pub fn roll_wrong() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

pub fn seed_wrong() -> SmallRng {
    SmallRng::from_entropy()
}
