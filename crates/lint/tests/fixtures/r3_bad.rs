//! Fixture: OS threads in the single-threaded DES (R3 twice).

pub fn spawn_wrong() {
    std::thread::spawn(|| {});
}

pub fn scope_wrong(data: &[u8]) {
    thread::scope(|s| {
        s.spawn(|| data.len());
    });
}
