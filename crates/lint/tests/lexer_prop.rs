//! Property tests: the hand-rolled lexer is total. Arbitrary bytes —
//! including unterminated strings, stray quotes, nested comment
//! openers and non-UTF-8 sequences run through lossy conversion — must
//! never panic, never produce out-of-bounds or overlapping spans, and
//! the full pipeline (scan + rules) must stay total on top of it.

use proptest::prelude::*;
use shredder_lint::{lint_source, LintConfig};

/// Spans are in bounds, on char boundaries, ordered and non-overlapping.
fn well_formed(src: &str) -> Result<(), String> {
    let toks = shredder_lint::lexer::lex(src);
    let mut prev_end = 0usize;
    for t in &toks {
        if t.start >= t.end {
            return Err(format!("empty span {}..{}", t.start, t.end));
        }
        if t.end > src.len() {
            return Err(format!("span {}..{} past {}", t.start, t.end, src.len()));
        }
        if !src.is_char_boundary(t.start) || !src.is_char_boundary(t.end) {
            return Err(format!("span {}..{} off char boundary", t.start, t.end));
        }
        if t.start < prev_end {
            return Err(format!("span {}..{} overlaps previous", t.start, t.end));
        }
        prev_end = t.end;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Totally arbitrary bytes (lossily decoded, as `lint_workspace`
    /// reads files) lex without panicking into well-formed spans.
    #[test]
    fn lexer_total_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let src = String::from_utf8_lossy(&bytes);
        prop_assert!(well_formed(&src).is_ok(), "{:?}", well_formed(&src));
    }

    /// Sequences drawn from the lexer's trickiest alphabet — quote and
    /// fence characters — hit the string/comment/lifetime paths hard.
    #[test]
    fn lexer_total_on_quote_soup(parts in proptest::collection::vec(
        prop_oneof![
            Just("\""), Just("'"), Just("#"), Just("r"), Just("b"), Just("c"),
            Just("r#"), Just("\\"), Just("/*"), Just("*/"), Just("//"),
            Just("\n"), Just("x"), Just("'a"), Just("b'"), Just("r##\""),
        ],
        0..64,
    )) {
        let src: String = parts.concat();
        prop_assert!(well_formed(&src).is_ok(), "{:?} on {src:?}", well_formed(&src));
    }

    /// The whole pipeline (lex + scan + every rule) is total too, even
    /// with the file treated as an R5 hot path.
    #[test]
    fn full_lint_total_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let src = String::from_utf8_lossy(&bytes);
        let cfg = LintConfig {
            wallclock_exempt_dirs: vec![],
            hot_path_files: vec!["fuzz.rs".into()],
            telemetry_dirs: vec!["fuzz.rs".into()],
        };
        for f in lint_source("fuzz.rs", &src, &cfg) {
            prop_assert!(f.line >= 1, "line numbers are 1-based: {f:?}");
        }
    }
}
