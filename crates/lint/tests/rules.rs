//! Fixture-corpus tests: each rule R1–R6 must fire on its seeded
//! violation file, stay silent on the known-good file, respect reasoned
//! `allow` suppressions, and report suppression-hygiene breaks (A0).

use shredder_lint::{lint_source, Finding, LintConfig};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// Config under which fixtures are "simulation code": nothing is
/// wall-clock exempt, and the named files are R5 hot paths.
fn config(hot: &[&str]) -> LintConfig {
    LintConfig {
        wallclock_exempt_dirs: vec![],
        hot_path_files: hot.iter().map(|s| s.to_string()).collect(),
        telemetry_dirs: vec!["crates/telemetry".into()],
    }
}

fn lint(name: &str, hot: &[&str]) -> Vec<Finding> {
    lint_source(name, &fixture(name), &config(hot))
}

fn unsuppressed<'a>(findings: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
    findings
        .iter()
        .filter(|f| f.rule == rule && !f.suppressed)
        .collect()
}

#[test]
fn r1_fires_on_wall_clock() {
    let findings = lint("r1_bad.rs", &[]);
    assert!(findings.iter().all(|f| f.rule == "R1"), "{findings:?}");
    let lines: Vec<u32> = unsuppressed(&findings, "R1")
        .iter()
        .map(|f| f.line)
        .collect();
    assert!(lines.contains(&6), "Instant::now missed: {lines:?}");
    assert!(lines.contains(&11), "SystemTime::now missed: {lines:?}");
}

#[test]
fn r1_respects_wallclock_exempt_dirs() {
    let src = fixture("r1_bad.rs");
    let mut cfg = config(&[]);
    cfg.wallclock_exempt_dirs = vec!["crates/bench".into()];
    let findings = lint_source("crates/bench/src/harness.rs", &src, &cfg);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn r2_fires_on_unseeded_rng() {
    let findings = lint("r2_bad.rs", &[]);
    let lines: Vec<u32> = unsuppressed(&findings, "R2")
        .iter()
        .map(|f| f.line)
        .collect();
    assert_eq!(lines, vec![4, 9], "thread_rng + from_entropy");
}

#[test]
fn r3_fires_on_os_threads() {
    let findings = lint("r3_bad.rs", &[]);
    let lines: Vec<u32> = unsuppressed(&findings, "R3")
        .iter()
        .map(|f| f.line)
        .collect();
    assert_eq!(lines, vec![4, 8], "std::thread::spawn + thread::scope");
}

#[test]
fn r4_fires_on_hash_iteration() {
    let findings = lint("r4_bad.rs", &[]);
    let lines: Vec<u32> = unsuppressed(&findings, "R4")
        .iter()
        .map(|f| f.line)
        .collect();
    assert!(lines.contains(&12), "field method call missed: {lines:?}");
    assert!(
        lines.contains(&21),
        "for loop over binding missed: {lines:?}"
    );
    assert!(lines.contains(&29), "HashMap::iter path missed: {lines:?}");
}

#[test]
fn r5_fires_only_in_hot_path_files() {
    let hot = lint("r5_bad.rs", &["r5_bad.rs"]);
    let lines: Vec<u32> = unsuppressed(&hot, "R5").iter().map(|f| f.line).collect();
    assert_eq!(lines, vec![4, 5, 7], "unwrap + expect + panic!");

    let cold = lint("r5_bad.rs", &[]);
    assert!(cold.is_empty(), "R5 must not apply off hot paths: {cold:?}");
}

#[test]
fn r6_fires_on_wall_clock_in_telemetry_paths() {
    let src = fixture("r6_bad.rs");
    let findings = lint_source("crates/telemetry/src/recorder.rs", &src, &config(&[]));
    let lines: Vec<u32> = unsuppressed(&findings, "R6")
        .iter()
        .map(|f| f.line)
        .collect();
    assert!(lines.contains(&3), "std::time import missed: {lines:?}");
    assert!(lines.contains(&6), "Instant missed: {lines:?}");
    assert!(lines.contains(&11), "SystemTime::now missed: {lines:?}");
}

#[test]
fn r6_stays_quiet_off_telemetry_paths() {
    let src = fixture("r6_bad.rs");
    // In an ordinary sim crate only R1 applies (wall-clock *reads*);
    // the blanket type ban is telemetry-specific.
    let findings = lint_source("crates/core/src/engine.rs", &src, &config(&[]));
    assert!(unsuppressed(&findings, "R6").is_empty(), "{findings:?}");
    assert!(!unsuppressed(&findings, "R1").is_empty(), "{findings:?}");
}

#[test]
fn reasoned_allows_suppress_every_rule() {
    let findings = lint("suppressed.rs", &["suppressed.rs"]);
    assert!(!findings.is_empty(), "violations should still be recorded");
    for f in &findings {
        assert!(f.suppressed, "should be suppressed: {f:?}");
        assert!(f.suppress_reason.is_some(), "reason must carry over: {f:?}");
    }
    let rules: std::collections::BTreeSet<&str> = findings.iter().map(|f| f.rule).collect();
    assert_eq!(
        rules.into_iter().collect::<Vec<_>>(),
        vec!["R1", "R2", "R3", "R4", "R5"],
        "one suppressed finding per rule"
    );
}

#[test]
fn hygiene_breaks_report_a0_and_do_not_suppress() {
    let findings = lint("malformed.rs", &[]);
    let a0: Vec<u32> = unsuppressed(&findings, "A0")
        .iter()
        .map(|f| f.line)
        .collect();
    assert_eq!(
        a0,
        vec![5, 10, 15, 19],
        "reasonless, no-parens, unknown-rule, wrong-verb"
    );
    // The unparsed allow above the spawn does not shield it.
    let r3 = unsuppressed(&findings, "R3");
    assert_eq!(r3.len(), 1, "{findings:?}");
    assert_eq!(r3[0].line, 11);
}

#[test]
fn good_file_is_silent_even_as_hot_path() {
    let findings = lint("good.rs", &["good.rs"]);
    assert!(findings.is_empty(), "{findings:?}");
}
