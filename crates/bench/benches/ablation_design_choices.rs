//! Ablations of Shredder's design choices (beyond the paper's figures).
//!
//! Each section isolates one knob the design fixes and shows what it
//! buys: device twin buffers (double buffering), pipeline depth /
//! pinned-ring size, kernel launch occupancy, expected chunk size vs
//! dedup, and the future-work min/max skip optimization (§7.3, §9).

use shredder_bench::{check, header, result_line, table};
use shredder_core::{ChunkingService, Shredder, ShredderConfig};
use shredder_gpu::kernel::{ChunkKernel, KernelVariant};
use shredder_gpu::DeviceConfig;
use shredder_rabin::{chunk_all, chunk_all_skipping, ChunkParams};
use shredder_workloads::{mutate, MutationSpec};

fn throughput(cfg: ShredderConfig, data: &[u8]) -> f64 {
    let out = Shredder::new(cfg)
        .chunk_stream(data)
        .expect("chunking failed");
    out.report.bytes() as f64 / out.report.makespan().as_secs_f64()
}

fn main() {
    header(
        "Ablations",
        "What each Shredder design choice buys (not a paper figure)",
    );
    let data = shredder_workloads::random_bytes(64 << 20, 0xab1);
    let buffer = 8 << 20;

    // --- Twin buffers: 1 (serialized) vs 2 (double) vs 3 ---------------
    println!("\n-- device twin buffers (copy/compute overlap, §4.1.1) --");
    let mut twin_tp = Vec::new();
    for twins in [1usize, 2, 3] {
        let cfg = ShredderConfig {
            twin_buffers: twins,
            ..ShredderConfig::gpu_streams().with_buffer_size(buffer)
        };
        let tp = throughput(cfg, &data);
        twin_tp.push(tp);
        result_line(
            &format!("{twins} device buffer(s)"),
            shredder_bench::gbps(tp),
        );
    }
    check(
        "double buffering beats a single buffer",
        twin_tp[1] > twin_tp[0],
    );
    check(
        "a third buffer adds little (<5%): two suffice, as the paper chose",
        twin_tp[2] / twin_tp[1] < 1.05,
    );

    // --- Pipeline depth / ring slots ------------------------------------
    println!("\n-- pipeline depth == pinned ring slots (§4.1.2/§4.2) --");
    let mut depth_tp = Vec::new();
    for depth in [1usize, 2, 3, 4, 6, 8] {
        let cfg = ShredderConfig::gpu_streams_memory()
            .with_buffer_size(buffer)
            .with_pipeline_depth(depth);
        let tp = throughput(cfg, &data);
        depth_tp.push((depth, tp));
        result_line(&format!("depth {depth}"), shredder_bench::gbps(tp));
    }
    check(
        "throughput saturates by depth 4 (deeper rings only pin more memory)",
        {
            let at4 = depth_tp.iter().find(|(d, _)| *d == 4).unwrap().1;
            let at8 = depth_tp.iter().find(|(d, _)| *d == 8).unwrap().1;
            at8 / at4 < 1.05
        },
    );

    // --- Pinned ring vs pageable per-iteration buffers -------------------
    println!("\n-- host buffer strategy --");
    let pageable = throughput(
        ShredderConfig {
            pinned_ring: false,
            ..ShredderConfig::gpu_streams_memory().with_buffer_size(buffer)
        },
        &data,
    );
    let pinned = throughput(
        ShredderConfig::gpu_streams_memory().with_buffer_size(buffer),
        &data,
    );
    result_line(
        "pageable, allocated per buffer",
        shredder_bench::gbps(pageable),
    );
    result_line("pinned ring, reused", shredder_bench::gbps(pinned));
    check(
        "the pinned ring outperforms per-iteration pageable buffers",
        pinned > pageable,
    );

    // --- Kernel occupancy (blocks per SM) --------------------------------
    println!("\n-- kernel launch occupancy (blocks per SM) --");
    let cfg = DeviceConfig::tesla_c2050();
    let sample = &data[..16 << 20];
    let mut occ = Vec::new();
    for blocks in [1u32, 2, 4, 8] {
        let out = ChunkKernel::new(ChunkParams::paper(), KernelVariant::Coalesced)
            .with_blocks_per_sm(blocks)
            .run(&cfg, sample)
            .expect("kernel");
        occ.push(out.stats.duration);
        result_line(
            &format!("{blocks} block(s)/SM ({} threads)", out.stats.threads),
            format!("{:.2} ms", out.stats.duration.as_millis_f64()),
        );
    }
    check(
        "low occupancy exposes memory latency (1 block/SM slower than 8)",
        occ[0] > occ[3],
    );

    // --- Expected chunk size vs dedup efficiency -------------------------
    println!("\n-- expected chunk size vs dedup under 5% localized change --");
    let base = shredder_workloads::compressible_bytes(16 << 20, 4096, 0xab2);
    let edited = mutate(
        &base,
        &MutationSpec {
            span_bytes: 256 << 10,
            ..MutationSpec::replace(0.05, 0xab3)
        },
    );
    let mut rows = Vec::new();
    let mut dedup_by_size = Vec::new();
    for bits in [11u32, 12, 13, 14, 16] {
        let params = ChunkParams {
            mask_bits: bits,
            ..ChunkParams::paper()
        };
        let before: std::collections::HashSet<shredder_hash::Digest> = chunk_all(&base, &params)
            .iter()
            .map(|c| shredder_hash::sha256(c.slice(&base)))
            .collect();
        let after = chunk_all(&edited, &params);
        let reused_bytes: usize = after
            .iter()
            .filter(|c| before.contains(&shredder_hash::sha256(c.slice(&edited))))
            .map(|c| c.len)
            .sum();
        let dedup = reused_bytes as f64 / edited.len() as f64;
        dedup_by_size.push(dedup);
        rows.push((
            format!("{} B expected", 1usize << bits),
            vec![
                format!("{} chunks", after.len()),
                format!("{:.1}% reused", dedup * 100.0),
            ],
        ));
    }
    table(&["metadata", "dedup"], &rows);
    check(
        "smaller chunks dedup better under localized change (first >= last)",
        dedup_by_size[0] >= dedup_by_size[4],
    );

    // --- Min/max skip optimization (future work, §9) ----------------------
    println!("\n-- min/max skipping scan (future work [31,33]) --");
    let params = ChunkParams::backup();
    let scan = chunk_all_skipping(&data[..16 << 20], &params);
    assert_eq!(scan.chunks, chunk_all(&data[..16 << 20], &params));
    result_line(
        "bytes never fingerprinted",
        format!("{:.1}%", scan.skip_fraction() * 100.0),
    );
    let kernel = ChunkKernel::new(params.clone(), KernelVariant::Coalesced)
        .run(&cfg, &data[..16 << 20])
        .expect("kernel");
    let saved = kernel.stats.duration.as_secs_f64() * scan.skip_fraction();
    result_line(
        "kernel time a skipping GPU kernel would save (est.)",
        format!(
            "{:.2} ms of {:.2} ms",
            saved * 1e3,
            kernel.stats.duration.as_millis_f64()
        ),
    );
    check(
        "skipping saves a double-digit share of the scan with backup min/max",
        scan.skip_fraction() > 0.10,
    );
}
