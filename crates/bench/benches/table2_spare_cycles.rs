//! Table 2: host spare cycles per core due to asynchronous data transfer
//! and kernel launch.
//!
//! For each buffer size: the device execution time (async copy + basic
//! chunking kernel, overlapped), the host's cost to *launch* that work,
//! the total, and the resulting idle RDTSC ticks at the host's 2.67 GHz
//! — the cycles the streaming pipeline of §4.2 goes on to harvest.

use shredder_bench::{check, header, paper_buffer_sizes, table};
use shredder_gpu::dma::Direction;
use shredder_gpu::kernel::{ChunkKernel, KernelVariant};
use shredder_gpu::{calibration, DeviceConfig, DmaModel, HostMemKind};
use shredder_rabin::ChunkParams;

fn main() {
    header(
        "Table 2",
        "Host spare cycles per core during async transfer + kernel execution",
    );

    let cfg = DeviceConfig::tesla_c2050();
    let dma = DmaModel::new();
    let sample = shredder_workloads::random_bytes(32 << 20, 0x7ab);
    let out = ChunkKernel::new(ChunkParams::paper(), KernelVariant::Basic)
        .run(&cfg, &sample)
        .expect("kernel run");
    let kernel_ns_per_byte = (out.stats.duration.as_nanos()
        - out.stats.simt.launch_overhead.as_nanos()) as f64
        / sample.len() as f64;

    let mut rows = Vec::new();
    let mut ticks = Vec::new();
    let mut launch_fractions = Vec::new();

    for &buffer in &paper_buffer_sizes() {
        let copy = dma.transfer_time(Direction::HostToDevice, HostMemKind::Pinned, buffer as u64);
        let kernel_body =
            shredder_des::Dur::from_nanos((buffer as f64 * kernel_ns_per_byte) as u64);
        // Async copy overlaps the previous kernel; the device is busy for
        // max(copy, kernel) in steady state — kernel dominates here.
        let device_exec = copy.max(kernel_body);
        let launch = shredder_des::Dur::from_nanos(calibration::KERNEL_LAUNCH_NS);
        let total = device_exec + launch;
        let spare = device_exec.as_secs_f64() * calibration::HOST_CLOCK_HZ;
        ticks.push(spare);
        launch_fractions.push(launch.as_secs_f64() / total.as_secs_f64());

        rows.push((
            format!("{}M", buffer >> 20),
            vec![
                format!("{:.2} ms", device_exec.as_millis_f64()),
                format!("{:.2} ms", launch.as_millis_f64()),
                format!("{:.2} ms", total.as_millis_f64()),
                format!("{spare:.1e}"),
            ],
        ));
    }

    table(
        &["Device exec", "Host launch", "Total", "RDTSC ticks"],
        &rows,
    );
    println!("  (paper row for 16M: 11.39 ms exec, 0.03 ms launch, 3.0e7 ticks @ 2.67 GHz)");

    println!();
    check(
        "kernel launch cost is negligible (<1% of total at every size)",
        launch_fractions.iter().all(|&f| f < 0.01),
    );
    check(
        "spare ticks scale ~linearly with buffer size (16x from 16M to 256M within 20%)",
        {
            let ratio = ticks.last().unwrap() / ticks.first().unwrap();
            (12.8..19.2).contains(&ratio)
        },
    );
    check(
        "16M spare ticks within 2x of the paper's 3.0e7",
        (1.5e7..6.0e7).contains(&ticks[0]),
    );
    check(
        "host is idle for millions of cycles even at the smallest buffer",
        ticks[0] > 1e7,
    );
}
