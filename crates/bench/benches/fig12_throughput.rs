//! Figure 12: throughput comparison of content-based chunking between
//! CPU and GPU versions.
//!
//! The five systems of the figure, end to end on the same stream:
//!
//! * CPU w/o Hoard — 12 pthreads, serializing `malloc`;
//! * CPU w/  Hoard — 12 pthreads, scalable allocator (§5.1);
//! * GPU Basic — the §3.1 design (pageable buffers, serialized
//!   copy/exec, unoptimized kernel);
//! * GPU Streams — + double buffering, pinned ring, 4-stage pipeline;
//! * GPU Streams + Memory — + the coalesced kernel (§4.3).
//!
//! All five chunk the stream for real; every engine must produce
//! identical boundaries or the harness fails.

use shredder_bench::{check, dump_bench_json, gbps, header, result_line};
use shredder_core::{ChunkingService, HostChunker, HostChunkerConfig, Shredder, ShredderConfig};
use shredder_gpu::kernel::KernelVariant;

fn main() {
    header(
        "Figure 12",
        "Chunking throughput: CPU vs GPU versions (same 4 KB-expected-chunk stream)",
    );

    let data = shredder_workloads::random_bytes(shredder_bench::experiment_bytes(), 0xf12);
    let buffer = 32 << 20;

    let engines: Vec<(&str, Box<dyn ChunkingService>)> = vec![
        (
            "CPU w/o Hoard",
            Box::new(HostChunker::new(HostChunkerConfig::unoptimized())),
        ),
        (
            "CPU w/ Hoard",
            Box::new(HostChunker::new(HostChunkerConfig::optimized())),
        ),
        (
            "GPU Basic",
            Box::new(Shredder::new(
                ShredderConfig::gpu_basic().with_buffer_size(buffer),
            )),
        ),
        (
            "GPU Streams",
            Box::new(Shredder::new(
                ShredderConfig::gpu_streams().with_buffer_size(buffer),
            )),
        ),
        (
            "GPU Streams + Memory",
            Box::new(Shredder::new(
                ShredderConfig::gpu_streams_memory().with_buffer_size(buffer),
            )),
        ),
    ];

    let mut throughputs = Vec::new();
    let mut boundaries: Option<Vec<shredder_rabin::Chunk>> = None;
    for (name, engine) in &engines {
        let outcome = engine.chunk_stream(&data).expect("chunking failed");
        let bps = outcome.report.bytes() as f64 / outcome.report.makespan().as_secs_f64();
        result_line(name, gbps(bps));
        throughputs.push(bps);
        match &boundaries {
            None => boundaries = Some(outcome.chunks),
            Some(expected) => assert_eq!(
                &outcome.chunks, expected,
                "{name} produced different chunk boundaries"
            ),
        }
    }
    println!("  (all five engines produced identical chunk boundaries)");

    // Sixth system, beyond the figure: the fully optimized pipeline
    // with the Gear/FastCDC kernel (chunk_kernel = GearCoalesced).
    // Boundaries are content-defined but differ from Rabin's (it is a
    // different hash), so it stays outside the equality assert above.
    let gear_engine = Shredder::new(
        ShredderConfig::gpu_streams_memory()
            .with_buffer_size(buffer)
            .with_chunk_kernel(KernelVariant::GearCoalesced),
    );
    let gear_outcome = gear_engine.chunk_stream(&data).expect("chunking failed");
    let gear = gear_outcome.report.bytes() as f64 / gear_outcome.report.makespan().as_secs_f64();
    result_line("GPU Streams + Memory (Gear)", gbps(gear));

    let cpu_malloc = throughputs[0];
    let cpu_hoard = throughputs[1];
    let gpu_basic = throughputs[2];
    let gpu_streams = throughputs[3];
    let gpu_full = throughputs[4];

    println!();
    check(
        "Hoard improves the CPU baseline (§5.1)",
        cpu_hoard > cpu_malloc,
    );
    let basic_x = gpu_basic / cpu_hoard;
    check(
        &format!("naive GPU ~2x over optimized host (paper: 2x; measured {basic_x:.1}x)"),
        (1.5..3.0).contains(&basic_x),
    );
    check(
        "each optimization tier improves throughput (basic < streams < streams+memory)",
        gpu_basic < gpu_streams && gpu_streams < gpu_full,
    );
    let full_x = gpu_full / cpu_hoard;
    check(
        &format!("full Shredder over 5x the optimized host (paper: >5x; measured {full_x:.1}x)"),
        full_x > 4.5,
    );
    check(
        "full Shredder is bounded by the 2 GB/s reader I/O (Table 1), not the kernel",
        (1.5e9..2.05e9).contains(&gpu_full),
    );
    check(
        &format!(
            "Gear kernel beats Rabin end to end ({:.3} vs {:.3} GB/s)",
            gear / 1e9,
            gpu_full / 1e9
        ),
        gear > gpu_full,
    );

    // Perf-trajectory dump for the CI bench gate: `aggregate_gbps` is
    // the headline series (the fully optimized system), the rest gives
    // the gate context when it trips.
    let json = format!(
        "{{\n  \"aggregate_gbps\": {:.6},\n  \"cpu_malloc_gbps\": {:.6},\n  \"cpu_hoard_gbps\": {:.6},\n  \"gpu_basic_gbps\": {:.6},\n  \"gpu_streams_gbps\": {:.6},\n  \"gear_gbps\": {:.6},\n  \"speedup_over_host\": {:.6}\n}}\n",
        gpu_full / 1e9,
        cpu_malloc / 1e9,
        cpu_hoard / 1e9,
        gpu_basic / 1e9,
        gpu_streams / 1e9,
        gear / 1e9,
        full_x,
    );
    dump_bench_json(&json);
}
