//! Online service under open-loop load: offered req/s vs. achieved
//! throughput and request latency.
//!
//! "GPUs as Storage System Accelerators" evaluates GPU-backed storage
//! services exactly this way: sweep the offered load, watch the latency
//! curve, find the knee. This harness drives the [`ShredderService`]
//! frontend with Poisson arrivals at increasing fractions of the
//! measured batch capacity, prints the latency curve (p50/p99, achieved
//! rate, queue depth), locates the knee, and then bisects
//! ([`capacity_search`]) for the highest sustained rate meeting a p99
//! SLO under delay-bounded admission.
//!
//! Set `SHREDDER_BENCH_JSON=<path>` to dump the headline numbers; the
//! CI gate (`bench_gate`) tracks `sustained_rps` — the sustained req/s
//! at SLO — release over release. Set `SHREDDER_TRACE_JSON=<path>` to
//! additionally run one telemetry-on sweep point and dump its Chrome
//! trace (load it at <https://ui.perfetto.dev>); the headline numbers
//! always come from telemetry-off runs.

use shredder_bench::{check, dump_bench_json, header, result_line, table};
use shredder_core::{
    capacity_search, AdmissionControl, ChunkRequest, MemorySource, ServiceReport, ShredderConfig,
    ShredderService, TelemetryConfig, Workload,
};
use shredder_des::Dur;
use shredder_gpu::kernel::KernelVariant;

const REQUESTS: usize = 24;
const REQ_BYTES: usize = 1 << 20;

fn config(kernel: KernelVariant) -> ShredderConfig {
    ShredderConfig::gpu_streams_memory()
        .with_buffer_size(256 << 10)
        .with_chunk_kernel(kernel)
}

fn service<'a>(control: AdmissionControl, kernel: KernelVariant) -> ShredderService<'a> {
    let mut service = ShredderService::new(config(kernel)).with_admission(control);
    for t in 0..REQUESTS as u64 {
        service.submit(ChunkRequest::new(MemorySource::pseudo_random(REQ_BYTES, t)));
    }
    service
}

fn run_poisson(
    rate: f64,
    control: AdmissionControl,
    seed: u64,
    kernel: KernelVariant,
) -> ServiceReport {
    let out = service(control, kernel)
        .run(&Workload::poisson(rate, seed))
        .expect("service run failed");
    out.service().clone()
}

fn main() {
    header(
        "Service load sweep",
        "open-loop Poisson arrivals: offered load vs. latency, knee and sustained rate at SLO",
    );

    // Capacity estimate: a closed batch through the same admission
    // slots — the completion rate with the queue never empty.
    let batch = service(AdmissionControl::fifo(4), KernelVariant::Coalesced)
        .run(&Workload::Batch)
        .expect("batch run failed");
    let mu = batch.service().achieved_rps;
    result_line("batch capacity estimate", format!("{mu:.0} req/s"));
    result_line(
        "batch aggregate",
        format!("{:.2} GB/s", batch.service().achieved_gbps),
    );
    println!();

    // The latency curve: offered load from 30% to 150% of capacity.
    let fractions = [0.3, 0.5, 0.7, 0.85, 1.0, 1.2, 1.5];
    let mut sweep: Vec<(f64, ServiceReport)> = Vec::new();
    for (i, f) in fractions.iter().enumerate() {
        let rate = f * mu;
        let report = run_poisson(
            rate,
            AdmissionControl::fifo(4),
            0xbeef + i as u64,
            KernelVariant::Coalesced,
        );
        sweep.push((rate, report));
    }

    let rows: Vec<(String, Vec<String>)> = fractions
        .iter()
        .zip(&sweep)
        .map(|(f, (rate, r))| {
            (
                format!("{:.0}% ({rate:.0} rps)", f * 100.0),
                vec![
                    format!("{:.0} rps", r.achieved_rps),
                    format!("{:.2} ms", r.p50().as_millis_f64()),
                    format!("{:.2} ms", r.p99().as_millis_f64()),
                    format!("{}", r.max_queue_depth),
                ],
            )
        })
        .collect();
    table(&["achieved", "p50", "p99", "max queue"], &rows);

    // The SLO: 3x the p50 at the lightest load — comfortably met at low
    // rates, busted past the knee.
    let base_p50 = sweep[0].1.p50();
    let slo = Dur::from_secs_f64(base_p50.as_secs_f64() * 3.0);
    let knee = fractions
        .iter()
        .zip(&sweep)
        .filter(|(_, (_, r))| r.shed == 0 && r.p99() <= slo)
        .map(|(f, (rate, _))| (*f, *rate))
        .next_back();
    println!();
    result_line(
        "p99 SLO (3x light-load p50)",
        format!("{:.2} ms", slo.as_millis_f64()),
    );
    match knee {
        Some((f, rate)) => result_line(
            "knee (highest swept load within SLO)",
            format!("{:.0}% of capacity ({rate:.0} rps)", f * 100.0),
        ),
        None => result_line("knee", "below the lightest swept load"),
    }

    // Bisect for the sustained rate at SLO under delay-bounded
    // admission (the production posture: queue delay capped, overload
    // sheds instead of queueing without bound).
    let control = AdmissionControl::fifo(4).with_max_queue_delay(slo);
    let search = capacity_search(slo, 0.1 * mu, 2.0 * mu, 7, |rate| {
        Ok(run_poisson(rate, control, 0xcafe, KernelVariant::Coalesced))
    })
    .expect("capacity search failed");
    let sustained = search.sustained_rps;
    let sustained_gbps = sustained * REQ_BYTES as f64 / 1e9;
    println!();
    result_line("sustained rate at SLO", format!("{sustained:.0} req/s"));
    result_line(
        "sustained ingest at SLO",
        format!("{sustained_gbps:.2} GB/s"),
    );
    if let Some(p99) = search.p99_at_sustained {
        result_line(
            "p99 at sustained rate",
            format!("{:.2} ms", p99.as_millis_f64()),
        );
    }

    // The same bisection with the Gear/FastCDC kernel, against the same
    // SLO: lighter per-byte kernel cost raises the sustained rate.
    let gear_search = capacity_search(slo, 0.1 * mu, 2.0 * mu, 7, |rate| {
        Ok(run_poisson(
            rate,
            control,
            0xcafe,
            KernelVariant::GearCoalesced,
        ))
    })
    .expect("gear capacity search failed");
    let gear_sustained = gear_search.sustained_rps;
    result_line(
        "sustained rate at SLO (Gear)",
        format!("{gear_sustained:.0} req/s"),
    );

    println!();
    let light = &sweep[0].1;
    let heavy = &sweep[sweep.len() - 1].1;
    check(
        "latency rises with offered load (p99 at 150% > p99 at 30%)",
        heavy.p99() > light.p99(),
    );
    check(
        "below capacity nothing sheds and everything completes",
        sweep[..3]
            .iter()
            .all(|(_, r)| r.shed == 0 && r.completed == REQUESTS),
    );
    check(
        "achieved rate saturates: at 150% offered, achieved < offered",
        heavy.achieved_rps < heavy.offered_rps,
    );
    check("a knee exists within the sweep", knee.is_some());
    check(
        "capacity search found a positive sustained rate at SLO",
        sustained > 0.0,
    );
    check(
        "sustained rate is below the overloaded end of the sweep",
        sustained < 1.5 * mu,
    );
    check(
        &format!(
            "Gear kernel sustains at least the Rabin rate at SLO ({gear_sustained:.0} vs {sustained:.0} rps)"
        ),
        gear_sustained >= sustained,
    );

    // Chrome-trace export: when SHREDDER_TRACE_JSON names a path, rerun
    // one sweep point (85% of capacity — loaded but within SLO) with
    // telemetry on and dump the trace. Kept out of the headline runs so
    // the gated numbers always measure the telemetry-off path.
    if std::env::var("SHREDDER_TRACE_JSON").is_ok_and(|p| !p.is_empty()) {
        let mut svc = ShredderService::new(
            config(KernelVariant::Coalesced).with_telemetry(TelemetryConfig::enabled()),
        )
        .with_admission(AdmissionControl::fifo(4));
        for t in 0..REQUESTS as u64 {
            svc.submit(ChunkRequest::new(MemorySource::pseudo_random(REQ_BYTES, t)));
        }
        let out = svc
            .run(&Workload::poisson(0.85 * mu, 0xbeef + 3))
            .expect("trace run failed");
        let telemetry = out
            .report
            .telemetry
            .as_ref()
            .expect("telemetry-on run carries a report");
        if let Some(path) =
            shredder_telemetry::dump_json("SHREDDER_TRACE_JSON", &telemetry.to_chrome_json())
        {
            result_line("chrome trace written to", path);
        }
    }

    // Perf-trajectory dump: bench_gate tracks sustained_rps.
    let sweep_json: Vec<String> = sweep
        .iter()
        .map(|(rate, r)| {
            format!(
                "    {{\"offered_rps\": {:.3}, \"achieved_rps\": {:.3}, \"p50_ms\": {:.4}, \"p99_ms\": {:.4}, \"shed\": {}, \"max_queue_depth\": {}}}",
                rate,
                r.achieved_rps,
                r.p50().as_millis_f64(),
                r.p99().as_millis_f64(),
                r.shed,
                r.max_queue_depth
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"sustained_rps\": {:.6},\n  \"sustained_rps_gear\": {:.6},\n  \"sustained_gbps\": {:.6},\n  \"capacity_estimate_rps\": {:.6},\n  \"slo_ms\": {:.6},\n  \"request_bytes\": {},\n  \"requests\": {},\n  \"sweep\": [\n{}\n  ]\n}}\n",
        sustained,
        gear_sustained,
        sustained_gbps,
        mu,
        slo.as_millis_f64(),
        REQ_BYTES,
        REQUESTS,
        sweep_json.join(",\n")
    );
    dump_bench_json(&json);
}
