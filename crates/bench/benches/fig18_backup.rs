//! Figure 18: backup bandwidth improvement due to Shredder with varying
//! image similarity ratios.
//!
//! The §7.3 emulation: a master VM image in memory, snapshot images
//! derived through a similarity table (probability of each segment being
//! replaced), a 10 Gbps image source, min/max chunk sizes enabled. Each
//! snapshot is backed up through the pthreads-CPU engine and through the
//! fully-optimized Shredder-GPU engine; restored images are verified
//! byte-identical.

use shredder_backup::{BackupConfig, BackupServer};
use shredder_bench::{check, dump_bench_json, header, table};
use shredder_core::{HostChunker, HostChunkerConfig, Shredder, ShredderConfig};
use shredder_rabin::ChunkParams;
use shredder_workloads::{MasterImage, SimilarityTable};

const CHANGE_PROBS: [f64; 5] = [0.05, 0.10, 0.15, 0.20, 0.25];

fn main() {
    header(
        "Figure 18",
        "Backup bandwidth vs probability of segment changes (10 Gbps source)",
    );

    let mb = std::env::var("SHREDDER_FIG18_MB")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(128);
    let master = MasterImage::synthesize(mb << 20, 256 << 10, 0xf18);

    let cpu = HostChunker::new(HostChunkerConfig {
        params: ChunkParams::backup(),
        ..HostChunkerConfig::optimized()
    });
    // The §7.2 server reuses Shredder's streaming pipeline as a stage of
    // its own: one shared buffer size end to end. The sink stages batch
    // their work per pipeline buffer, so the buffer size sets the
    // hash/lookup/ship pipelining grain — 4 MiB keeps the downstream
    // stages overlapped with chunking (Figure 3 shows DMA is already
    // near peak bandwidth at this size).
    let gpu = Shredder::new(
        ShredderConfig::gpu_streams_memory()
            .with_params(ChunkParams::backup())
            .with_buffer_size(4 << 20),
    );

    let mut rows = Vec::new();
    let mut cpu_curve = Vec::new();
    let mut gpu_curve = Vec::new();

    for &p in &CHANGE_PROBS {
        let table_p = SimilarityTable::uniform(master.segments(), p);
        let snapshot = master.derive(&table_p, (p * 1000.0) as u64);

        let run = |service: &dyn shredder_core::ChunkingService| {
            // 4 MiB pipeline buffers so the image streams through enough
            // admissions to reach steady state (the paper's servers
            // stream far more data than fits one pipeline fill).
            let mut server = BackupServer::new(BackupConfig {
                buffer_size: 4 << 20,
                ..BackupConfig::paper()
            });
            server
                .backup_image(master.data(), service)
                .expect("backup failed"); // seed the site
            let report = server
                .backup_image(&snapshot, service)
                .expect("backup failed");
            let restored = server
                .site()
                .restore(report.image_id)
                .expect("restore must succeed");
            assert_eq!(restored, snapshot, "restored image differs");
            report.bandwidth_gbps()
        };

        let cpu_bw = run(&cpu);
        let gpu_bw = run(&gpu);
        cpu_curve.push(cpu_bw);
        gpu_curve.push(gpu_bw);
        rows.push((
            format!("p = {p:.2}"),
            vec![format!("{cpu_bw:.2} Gbps"), format!("{gpu_bw:.2} Gbps")],
        ));
    }

    table(&["Pthreads-CPU", "Shredder-GPU"], &rows);
    println!("  (every backed-up snapshot restored byte-identical at the backup site)");

    println!();
    let speedup: Vec<f64> = cpu_curve
        .iter()
        .zip(&gpu_curve)
        .map(|(c, g)| g / c)
        .collect();
    let mean_speedup = speedup.iter().sum::<f64>() / speedup.len() as f64;
    check(
        &format!("Shredder ~2.5x the pthreads backup bandwidth (paper: 2.5x; measured {mean_speedup:.1}x)"),
        (1.8..3.5).contains(&mean_speedup),
    );
    check(
        "Shredder keeps backup bandwidth near the 10 Gbps target at high similarity",
        gpu_curve[0] > 6.0,
    );
    check(
        "GPU bandwidth declines as similarity decreases (unoptimized index/network)",
        gpu_curve[0] > gpu_curve[4],
    );
    check(
        "CPU stays chunking-bound and roughly flat (within 25% across the sweep)",
        {
            let max = cpu_curve.iter().cloned().fold(f64::MIN, f64::max);
            let min = cpu_curve.iter().cloned().fold(f64::MAX, f64::min);
            (max - min) / max < 0.25
        },
    );

    // ----- Multi-site consolidation: the session engine (§7.2). -----
    // The same nightly snapshots from four remote sites, backed up as
    // ONE batch: every site is a session on one shared chunking
    // pipeline instead of a serial backup_image loop.
    println!();
    header(
        "Figure 18 (extended)",
        "Consolidated multi-site backup through the session engine",
    );
    let table_sites = SimilarityTable::uniform(master.segments(), 0.10);
    let snapshots: Vec<Vec<u8>> = (1..=4u64)
        .map(|site| master.derive(&table_sites, 100 + site))
        .collect();
    let images: Vec<&[u8]> = snapshots.iter().map(|s| s.as_slice()).collect();

    let mut batch_server = BackupServer::new(BackupConfig {
        buffer_size: 4 << 20,
        ..BackupConfig::paper()
    });
    batch_server
        .backup_image(master.data(), &gpu)
        .expect("seed backup failed");
    let batch = batch_server
        .backup_batch(&images, &gpu)
        .expect("batch backup failed");

    for (report, snapshot) in batch.reports.iter().zip(&snapshots) {
        let restored = batch_server
            .site()
            .restore(report.image_id)
            .expect("restore must succeed");
        assert_eq!(&restored, snapshot, "batched site restored differently");
    }
    println!("  (all 4 batched site snapshots restored byte-identical)");
    for (i, r) in batch.engine.sessions.iter().enumerate() {
        println!(
            "  site-{i}: makespan {:>7.2} ms (sink demand {:>7.2} ms), queueing {:>7.2} ms, dedup {:>5.1}%",
            r.makespan.as_millis_f64(),
            r.sink_service.as_millis_f64(),
            r.queue_wait.as_millis_f64(),
            batch.reports[i].dedup_fraction() * 100.0,
        );
    }
    // Per-stage accounting of the full graph, all from the ONE shared
    // simulation: the chunking pipeline plus the hash → dedup → ship
    // sink stages the sites contend on.
    println!();
    println!(
        "  chunk pipeline busy: read {:>7.2} ms, transfer {:>7.2} ms, kernel {:>7.2} ms, store {:>7.2} ms",
        batch.engine.stage_busy.read.as_millis_f64(),
        batch.engine.stage_busy.transfer.as_millis_f64(),
        batch.engine.stage_busy.kernel.as_millis_f64(),
        batch.engine.stage_busy.store.as_millis_f64(),
    );
    for stage in &batch.engine.sink_stages {
        println!(
            "  sink stage {:<12} busy {:>7.2} ms, queue wait {:>7.2} ms, {:>3} batches",
            stage.name,
            stage.busy.as_millis_f64(),
            stage.queue_wait.as_millis_f64(),
            stage.jobs,
        );
    }
    check(
        "batched sites share one engine (every site session reported)",
        batch.engine.sessions.len() == 4,
    );
    let best_single_site = batch
        .engine
        .sessions
        .iter()
        .map(|r| r.throughput_gbps())
        .fold(f64::MIN, f64::max);
    check(
        "consolidated chunking aggregate exceeds any single site's own rate (overlap)",
        batch.engine.aggregate_gbps() > best_single_site,
    );
    let busy_sum = batch.engine.stage_busy.read
        + batch.engine.stage_busy.transfer
        + batch.engine.stage_busy.kernel
        + batch.engine.stage_busy.store
        + batch
            .engine
            .sink_stages
            .iter()
            .map(|s| s.busy)
            .sum::<shredder_des::Dur>();
    check(
        "hashing overlaps chunking (end-to-end makespan < sum of stage busy times)",
        batch.engine.makespan < busy_sum,
    );
    check(
        "batch backup bandwidth is reported and finite",
        batch.aggregate_bandwidth_gbps() > 0.0 && batch.aggregate_bandwidth_gbps().is_finite(),
    );
    check(
        "dedup-index counters are surfaced (hit rate within (0, 1))",
        batch.index_hit_rate() > 0.0 && batch.index_hit_rate() < 1.0,
    );

    // Perf-trajectory dump so the backup-bandwidth figure is tracked
    // release over release (uploaded by the CI bench job).
    dump_bench_json(&format!(
        concat!(
            "{{\n",
            "  \"name\": \"fig18_backup\",\n",
            "  \"cpu_gbps_p05\": {:.6},\n",
            "  \"gpu_gbps_p05\": {:.6},\n",
            "  \"cpu_gbps_p25\": {:.6},\n",
            "  \"gpu_gbps_p25\": {:.6},\n",
            "  \"mean_speedup\": {:.6},\n",
            "  \"batch_aggregate_gbps\": {:.6},\n",
            "  \"index_hit_rate\": {:.6}\n",
            "}}\n"
        ),
        cpu_curve[0],
        gpu_curve[0],
        cpu_curve[4],
        gpu_curve[4],
        mean_speedup,
        batch.aggregate_bandwidth_gbps(),
        batch.index_hit_rate(),
    ));
}
