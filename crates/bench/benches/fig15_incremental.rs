//! Figure 15: speedup of incremental computation w.r.t. Hadoop, for
//! varying percentages of input change.
//!
//! For each application (Word-Count, Co-occurrence Matrix, K-means) and
//! each change fraction: upload v1 to Inc-HDFS with content-based
//! chunking, run the job to prime the memo table, mutate the input,
//! upload v2 (deduplicating unchanged splits), then compare an
//! incremental run against a from-scratch run ("Hadoop") on v2. Outputs
//! of both runs must be identical — speedup without correctness is
//! meaningless.

use shredder_bench::{check, dump_bench_json, header, table};
use shredder_core::{HostChunker, HostChunkerConfig};
use shredder_hdfs::{IncHdfs, TextInputFormat};
use shredder_mapreduce::apps::{Cooccurrence, KMeans, KMeansDriver, WordCount};
use shredder_mapreduce::runner::IncrementalRunner;
use shredder_mapreduce::{ClusterConfig, MapReduceJob};
use shredder_rabin::ChunkParams;
use shredder_workloads::{mutate, MutationSpec};

const CHANGE_PERCENTS: [usize; 6] = [0, 2, 5, 10, 15, 25];

fn chunking_service() -> HostChunker {
    HostChunker::new(HostChunkerConfig {
        params: ChunkParams {
            // Map-task-sized splits, bounded like Hadoop InputSplits:
            // without a max size the exponential chunk-size tail creates
            // straggler map tasks that dominate incremental makespans.
            min_size: 32 << 10,
            max_size: 128 << 10,
            ..ChunkParams::paper().with_expected_size(64 << 10)
        },
        ..HostChunkerConfig::optimized()
    })
}

/// Runs one (app, change%) cell for a stateless job; returns speedup.
/// Localized edits much larger than the split size, so an x% change
/// dirties ~x% of splits (Incoop's workloads change contiguous regions,
/// not confetti).
fn change_spec(pct: usize, seed: u64) -> MutationSpec {
    MutationSpec {
        span_bytes: 2 << 20,
        ..MutationSpec::replace(pct as f64 / 100.0, seed)
    }
}

fn stateless_speedup<J>(make_job: impl Fn() -> J, data: &[u8], pct: usize) -> f64
where
    J: MapReduceJob,
    J::Key: std::fmt::Debug,
{
    let svc = chunking_service();
    let changed = mutate(data, &change_spec(pct, 1500 + pct as u64));

    let mut fs = IncHdfs::new(20);
    fs.copy_from_local_gpu("/input", data, &svc, &TextInputFormat)
        .unwrap();

    let mut runner = IncrementalRunner::new(make_job(), ClusterConfig::paper());
    runner.run(&fs.splits("/input").expect("splits"));

    fs.copy_from_local_gpu("/input", &changed, &svc, &TextInputFormat)
        .unwrap();
    let splits = fs.splits("/input").expect("splits v2");

    let incremental = runner.run(&splits);
    let mut fresh = IncrementalRunner::new(make_job(), ClusterConfig::paper());
    let full = fresh.run(&splits);

    assert_eq!(
        incremental.output, full.output,
        "incremental output diverged from from-scratch output"
    );
    full.stats.timing.total.as_secs_f64() / incremental.stats.timing.total.as_secs_f64()
}

/// K-means: iterative driver, memo keyed on (chunk digest, centroids).
fn kmeans_speedup(data: &[u8], pct: usize) -> f64 {
    let svc = chunking_service();
    let changed = mutate(data, &change_spec(pct, 2500 + pct as u64));
    let driver = KMeansDriver {
        max_iterations: 3,
        tolerance: 0.01,
    };

    let mut fs = IncHdfs::new(20);
    fs.copy_from_local_gpu("/points", data, &svc, &TextInputFormat)
        .unwrap();
    let mut runner = IncrementalRunner::new(KMeans::new(4), ClusterConfig::paper());
    driver.run(&mut runner, &fs.splits("/points").expect("splits"));

    fs.copy_from_local_gpu("/points", &changed, &svc, &TextInputFormat)
        .unwrap();
    let splits = fs.splits("/points").expect("splits v2");

    // Incremental: same memo, fresh deterministic initial centroids.
    runner
        .job_mut()
        .set_centroids(KMeans::new(4).centroids().to_vec());
    let incremental = driver.run(&mut runner, &splits);

    let mut fresh = IncrementalRunner::new(KMeans::new(4), ClusterConfig::paper());
    let full = driver.run(&mut fresh, &splits);
    assert_eq!(incremental.centroids, full.centroids, "k-means diverged");

    full.total_time.as_secs_f64() / incremental.total_time.as_secs_f64()
}

fn main() {
    header(
        "Figure 15",
        "Incremental MapReduce speedup vs Hadoop (20-node cluster model)",
    );

    let mb = std::env::var("SHREDDER_FIG15_MB")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(48);
    let text = shredder_workloads::words_corpus(mb << 20, 2000, 0xf15);
    let points = shredder_workloads::points_to_records(&shredder_workloads::kmeans_points(
        (mb << 20) / 16,
        4,
        0xf15,
    ));

    let mut rows = Vec::new();
    let mut wc_curve = Vec::new();
    let mut co_curve = Vec::new();
    let mut km_curve = Vec::new();

    for &pct in &CHANGE_PERCENTS {
        let wc = stateless_speedup(|| WordCount, &text, pct);
        let co = stateless_speedup(Cooccurrence::default, &text, pct);
        let km = kmeans_speedup(&points, pct);
        wc_curve.push(wc);
        co_curve.push(co);
        km_curve.push(km);
        rows.push((
            format!("{pct}% changes"),
            vec![
                format!("{wc:.1}x"),
                format!("{co:.1}x"),
                format!("{km:.1}x"),
            ],
        ));
    }

    table(&["Word-Count", "Co-occurrence", "K-means"], &rows);
    println!("  (incremental and from-scratch outputs verified identical in every cell)");

    println!();
    check(
        "speedups are significant at small changes (>5x for Word-Count at <=2%)",
        wc_curve[0] > 5.0 && wc_curve[1] > 5.0,
    );
    check(
        "effectiveness degrades as the change percentage grows (Word-Count monotone trend)",
        wc_curve[1] > wc_curve[5] && wc_curve[2] > wc_curve[5],
    );
    check(
        "all three applications still improve at 25% changes",
        wc_curve[5] > 1.0 && co_curve[5] > 1.0 && km_curve[5] > 1.0,
    );
    check(
        "K-means benefits least (iterative state limits reuse, as in the paper's figure)",
        km_curve[1] < wc_curve[1] && km_curve[1] < co_curve[1],
    );

    // Perf-trajectory dump so the incremental-computation figure is
    // tracked release over release (uploaded by the CI bench job).
    dump_bench_json(&format!(
        concat!(
            "{{\n",
            "  \"name\": \"fig15_incremental\",\n",
            "  \"wordcount_speedup_2pct\": {:.6},\n",
            "  \"cooccurrence_speedup_2pct\": {:.6},\n",
            "  \"kmeans_speedup_2pct\": {:.6},\n",
            "  \"wordcount_speedup_25pct\": {:.6},\n",
            "  \"cooccurrence_speedup_25pct\": {:.6},\n",
            "  \"kmeans_speedup_25pct\": {:.6}\n",
            "}}\n"
        ),
        wc_curve[1], co_curve[1], km_curve[1], wc_curve[5], co_curve[5], km_curve[5],
    ));
}
