//! Figure 3: bandwidth test between host and device.
//!
//! Sweeps buffer sizes 4 KB – 64 MB for both directions and both host
//! memory kinds, printing effective throughput in MB/s (the paper's
//! y-axis). Shape checks: small transfers are slow; pinned beats
//! pageable; pinned saturates by 256 KB; the gap narrows at large sizes.

use shredder_bench::{check, header, table};
use shredder_gpu::dma::Direction;
use shredder_gpu::{DmaModel, HostMemKind};

fn main() {
    header("Figure 3", "Bandwidth test between host and device");

    let dma = DmaModel::new();
    let sizes: Vec<(&str, u64)> = vec![
        ("4K", 4 << 10),
        ("16K", 16 << 10),
        ("32K", 32 << 10),
        ("64K", 64 << 10),
        ("256K", 256 << 10),
        ("1M", 1 << 20),
        ("4M", 4 << 20),
        ("16M", 16 << 20),
        ("32M", 32 << 20),
        ("64M", 64 << 20),
    ];

    let series = [
        (
            "H2D-Pageable",
            Direction::HostToDevice,
            HostMemKind::Pageable,
        ),
        ("H2D-Pinned", Direction::HostToDevice, HostMemKind::Pinned),
        (
            "D2H-Pageable",
            Direction::DeviceToHost,
            HostMemKind::Pageable,
        ),
        ("D2H-Pinned", Direction::DeviceToHost, HostMemKind::Pinned),
    ];

    let rows: Vec<(String, Vec<String>)> = sizes
        .iter()
        .map(|&(label, bytes)| {
            let values = series
                .iter()
                .map(|&(_, dir, kind)| {
                    format!(
                        "{:.0} MB/s",
                        dma.effective_bandwidth(dir, kind, bytes) / 1e6
                    )
                })
                .collect();
            (label.to_string(), values)
        })
        .collect();
    table(&series.iter().map(|s| s.0).collect::<Vec<_>>(), &rows);

    println!();
    let bw = |dir, kind, bytes| dma.effective_bandwidth(dir, kind, bytes);
    let h2d = Direction::HostToDevice;

    check(
        "(i) small transfers are much slower than large ones (pinned 4K < 20% of 64M)",
        bw(h2d, HostMemKind::Pinned, 4 << 10) < 0.2 * bw(h2d, HostMemKind::Pinned, 64 << 20),
    );
    check(
        "(ii) pinned saturates by 256 KB (>80% of asymptote)",
        bw(h2d, HostMemKind::Pinned, 256 << 10) > 0.8 * bw(h2d, HostMemKind::Pinned, 1 << 30),
    );
    check(
        "(ii) pageable has NOT saturated at 256 KB",
        bw(h2d, HostMemKind::Pageable, 256 << 10) < 0.8 * bw(h2d, HostMemKind::Pageable, 1 << 30),
    );
    check(
        "(iii) pageable/pinned gap narrows at large sizes (<2x at 64M, >2x at 4K)",
        bw(h2d, HostMemKind::Pinned, 64 << 20) / bw(h2d, HostMemKind::Pageable, 64 << 20) < 2.0
            && bw(h2d, HostMemKind::Pinned, 4 << 10) / bw(h2d, HostMemKind::Pageable, 4 << 10)
                > 2.0,
    );
    check(
        "(iv) saturated PCIe bandwidth on the order of 5 GB/s",
        bw(h2d, HostMemKind::Pinned, 1 << 30) > 5.0e9,
    );
}
