//! Figure 6: comparison of allocation overhead of pageable with pinned
//! memory regions.
//!
//! Sweeps 16–256 MB and prints the three series of the figure: pinned
//! allocation, pageable allocation (with the forcing `bzero` touch), and
//! the pageable→pinned memcpy that the ring-buffer scheme pays instead.
//! Shape checks: pinned ≈ an order of magnitude above pageable; the ring
//! steady state (memcpy only) ≈ an order of magnitude below per-
//! iteration pinned allocation.

use shredder_bench::{check, header, ms, paper_buffer_sizes, table};
use shredder_gpu::{HostAllocModel, HostMemKind, PinnedRing};

fn main() {
    header(
        "Figure 6",
        "Allocation overhead: pageable vs pinned memory regions",
    );

    let model = HostAllocModel::new();
    let rows: Vec<(String, Vec<String>)> = paper_buffer_sizes()
        .iter()
        .map(|&bytes| {
            let pinned = model.alloc_time(HostMemKind::Pinned, bytes);
            let pageable = model.alloc_time(HostMemKind::Pageable, bytes);
            let memcpy = model.memcpy_to_pinned_time(bytes);
            (
                format!("{}M", bytes >> 20),
                vec![ms(pinned), ms(pageable), ms(memcpy)],
            )
        })
        .collect();
    table(&["Pinned Alloc", "Pageable Alloc", "Memcpy P->P"], &rows);

    println!();
    for &bytes in &paper_buffer_sizes() {
        let pinned = model.alloc_time(HostMemKind::Pinned, bytes).as_secs_f64();
        let pageable = model.alloc_time(HostMemKind::Pageable, bytes).as_secs_f64();
        let ratio = pinned / pageable;
        check(
            &format!(
                "{}M: pinned allocation ~10x pageable (measured {ratio:.1}x)",
                bytes >> 20
            ),
            (4.0..20.0).contains(&ratio),
        );
    }

    // The §4.1.2 conclusion: reusing the pinned ring is an order of
    // magnitude faster than allocating pinned buffers per iteration.
    let ring = PinnedRing::new(4, 64 << 20);
    let with_ring = ring.per_buffer_time().as_secs_f64();
    let without = ring.per_buffer_time_without_ring().as_secs_f64();
    let speedup = without / with_ring;
    println!();
    println!(
        "  ring steady state {:.2} ms vs per-iteration pinned alloc {:.2} ms",
        with_ring * 1e3,
        without * 1e3
    );
    check(
        &format!("ring buffer reuse is an order of magnitude faster ({speedup:.0}x)"),
        speedup >= 10.0,
    );
}
