//! Figure 5: normalized overlap of communication with computation,
//! varied buffer sizes, 1 GB of data.
//!
//! Compares the serialized copy→execute chain of the basic design
//! against the double-buffered concurrent schedule of §4.1.1 (Figure 4),
//! per buffer size. As in the paper, per-buffer kernel time uses the
//! *unoptimized* (basic) chunking kernel, and totals are normalized to
//! 1 GB.

use shredder_bench::{check, header, ms, paper_buffer_sizes, table};
use shredder_des::{Dur, Simulation};
use shredder_gpu::kernel::{ChunkKernel, KernelVariant};
use shredder_gpu::{DeviceConfig, GpuExecutor, HostMemKind};
use shredder_rabin::ChunkParams;

/// Measures basic-kernel duration per byte once on real data.
fn kernel_ns_per_byte(cfg: &DeviceConfig) -> f64 {
    let sample = shredder_workloads::random_bytes(32 << 20, 0x515);
    let out = ChunkKernel::new(ChunkParams::paper(), KernelVariant::Basic)
        .run(cfg, &sample)
        .expect("kernel run");
    (out.stats.duration.as_nanos() - out.stats.simt.launch_overhead.as_nanos()) as f64
        / sample.len() as f64
}

fn main() {
    header(
        "Figure 5",
        "Overlap of communication with computation (serialized vs concurrent), 1 GB",
    );

    let cfg = DeviceConfig::tesla_c2050();
    let ns_per_byte = kernel_ns_per_byte(&cfg);
    let total: u64 = 1 << 30;

    let mut rows = Vec::new();
    let mut reductions = Vec::new();
    let mut concurrent_vs_compute = Vec::new();

    for &buffer in &paper_buffer_sizes() {
        let n = (total / buffer as u64).max(1) as u32;
        let kernel = Dur::from_nanos((buffer as f64 * ns_per_byte) as u64)
            + Dur::from_nanos(shredder_gpu::calibration::KERNEL_LAUNCH_NS);
        let transfer = shredder_gpu::DmaModel::new().transfer_time(
            shredder_gpu::dma::Direction::HostToDevice,
            HostMemKind::Pinned,
            buffer as u64,
        );

        // Serialized: each buffer's copy waits for the previous kernel.
        let mut sim = Simulation::new();
        let gpu = GpuExecutor::new(&cfg);
        fn chain(sim: &mut Simulation, gpu: GpuExecutor, left: u32, bytes: u64, kernel: Dur) {
            if left == 0 {
                return;
            }
            let g2 = gpu.clone();
            gpu.copy_h2d(sim, bytes, HostMemKind::Pinned, move |sim| {
                let g3 = g2.clone();
                g2.run_kernel(sim, kernel, move |sim| {
                    chain(sim, g3, left - 1, bytes, kernel)
                });
            });
        }
        chain(&mut sim, gpu, n, buffer as u64, kernel);
        let serialized = sim.run().saturating_since(shredder_des::SimTime::ZERO);

        // Concurrent: all buffers enqueued; the H2D engine copies buffer
        // i+1 while the compute engine chunks buffer i.
        let mut sim = Simulation::new();
        let gpu = GpuExecutor::new(&cfg);
        for _ in 0..n {
            let g2 = gpu.clone();
            gpu.copy_h2d(&mut sim, buffer as u64, HostMemKind::Pinned, move |sim| {
                g2.run_kernel(sim, kernel, |_| {});
            });
        }
        let concurrent = sim.run().saturating_since(shredder_des::SimTime::ZERO);

        let reduction = 1.0 - concurrent.as_secs_f64() / serialized.as_secs_f64();
        reductions.push(reduction);
        // "the total time is now dictated solely by the compute time":
        let compute_only = kernel * n as u64;
        concurrent_vs_compute.push(concurrent.as_secs_f64() / compute_only.as_secs_f64());

        rows.push((
            format!("{}M", buffer >> 20),
            vec![
                ms(transfer * n as u64),
                ms(kernel * n as u64),
                ms(serialized),
                ms(concurrent),
                format!("{:.1}%", reduction * 100.0),
            ],
        ));
    }

    table(
        &["Transfer", "Kernel", "Serialized", "Concurrent", "Saved"],
        &rows,
    );

    println!();
    check(
        "concurrent beats serialized at every buffer size",
        reductions.iter().all(|&r| r > 0.0),
    );
    let mean_reduction = reductions.iter().sum::<f64>() / reductions.len() as f64;
    check(
        &format!(
            "total time reduced ~15% by overlap (paper: 15%; measured {:.0}%)",
            mean_reduction * 100.0
        ),
        (0.08..0.25).contains(&mean_reduction),
    );
    check(
        "concurrent total is dictated by compute time (within 10%)",
        concurrent_vs_compute.iter().all(|&f| f < 1.10),
    );
}
