//! Generations: the incremental-storage lifecycle the paper sells —
//! K mutated generations of one stream ingested through the GPU
//! pipeline into the versioned store, with bounded physical growth,
//! digest-verified restore of every live generation, and GC reclaim
//! after expiry.
//!
//! Each generation chunks through the fully-optimized Shredder engine
//! with a [`StoreSink`]: fingerprinting and store commits (index
//! lookup/insert + segment writes) run as in-simulation stages, so
//! ingest bandwidth reflects chunking *and* storing. Restore bandwidth
//! is modeled analytically from the store's read path (segment reads at
//! the SAN rate plus one index lookup per chunk); restored bytes are
//! verified bit-identical against the kept originals.

use std::cell::RefCell;
use std::rc::Rc;

use shredder_bench::{check, dump_bench_json, header, result_line, table};
use shredder_core::{ChunkingService, Shredder, ShredderConfig, StoreSink, StoreSinkConfig};
use shredder_des::Dur;
use shredder_rabin::ChunkParams;
use shredder_store::ChunkStore;
use shredder_workloads::{mutate, MutationSpec};

/// Restore read bandwidth: the Table 1 SAN-class array.
const RESTORE_READ_BW: f64 = 2e9;

fn main() {
    header(
        "Generations",
        "K mutated generations -> physical growth, verified restore, GC reclaim",
    );

    let mb = std::env::var("SHREDDER_GEN_MB")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(12);
    let generations = std::env::var("SHREDDER_GEN_COUNT")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(8)
        .max(2);
    let change = 0.05;

    let cfg = ShredderConfig::gpu_streams_memory()
        .with_params(ChunkParams::backup())
        .with_buffer_size(4 << 20)
        .with_segment_bytes(2 << 20)
        .with_gc_threshold(0.5);
    let gpu = Shredder::new(cfg.clone());
    let store = Rc::new(RefCell::new(ChunkStore::with_config(cfg.store_config())));

    // Ingest K generations, each a 5% localized mutation of the last.
    let mut data = shredder_workloads::compressible_bytes(mb << 20, 512, 0x9e);
    let mut kept: Vec<(u64, Vec<u8>)> = Vec::new();
    let mut rows = Vec::new();
    let mut ingest_time = Dur::ZERO;
    let mut total_bytes = 0u64;
    for g in 0..generations {
        let mut sink = StoreSink::new("vm", StoreSinkConfig::default(), store.clone());
        let outcome = gpu
            .chunk_stream_sink(&data, &mut sink)
            .expect("ingest failed");
        ingest_time += outcome.makespan;
        total_bytes += data.len() as u64;
        let generation = sink.generation().expect("committed");
        let s = store.borrow();
        rows.push((
            format!("generation {g}"),
            vec![
                format!("{:>6.1} MB", s.logical_bytes() as f64 / 1e6),
                format!("{:>6.1} MB", s.physical_bytes() as f64 / 1e6),
                format!(
                    "{:>5.1}%",
                    100.0 * sink.new_bytes() as f64 / data.len() as f64
                ),
                format!(
                    "{:>5.2} GB/s",
                    data.len() as f64 / outcome.makespan.as_secs_f64() / 1e9
                ),
            ],
        ));
        drop(s);
        kept.push((generation, data.clone()));
        data = mutate(&data, &MutationSpec::replace(change, 0x6e + g as u64));
    }
    table(&["logical", "physical", "unique", "ingest"], &rows);
    let ingest_gbps = total_bytes as f64 / ingest_time.as_secs_f64() / 1e9;

    // Restore every live generation, verified bit-for-bit; bandwidth
    // from the modeled read path (segment reads + per-chunk lookup).
    let mut restore_time = Dur::ZERO;
    let mut restored_bytes = 0u64;
    for (generation, expected) in &kept {
        let s = store.borrow();
        let restored = s.restore("vm", *generation).expect("restore failed");
        assert_eq!(&restored, expected, "generation {generation} diverged");
        let chunks = s
            .manifest("vm", *generation)
            .expect("manifest")
            .chunk_count();
        restore_time += Dur::from_bytes_at(restored.len() as u64, RESTORE_READ_BW)
            + Dur::from_micros(7) * chunks as u64;
        restored_bytes += restored.len() as u64;
    }
    let restore_gbps = restored_bytes as f64 / restore_time.as_secs_f64() / 1e9;

    // Expire the first half, GC, and verify the survivors.
    let physical_before = store.borrow().physical_bytes();
    let expire_through = kept[generations / 2 - 1].0;
    store.borrow_mut().expire("vm", expire_through);
    let gc = store.borrow_mut().gc();
    for (generation, expected) in &kept[generations / 2..] {
        let restored = store
            .borrow()
            .restore("vm", *generation)
            .expect("post-GC restore failed");
        assert_eq!(&restored, expected, "GC corrupted generation {generation}");
    }
    let report = store.borrow().report();

    println!();
    result_line(
        "aggregate ingest (chunk+hash+store)",
        format!("{ingest_gbps:.3} GB/s"),
    );
    result_line(
        "verified restore bandwidth",
        format!("{restore_gbps:.3} GB/s"),
    );
    result_line(
        "physical / logical after all generations",
        format!(
            "{:.3}",
            physical_before as f64 / report.logical_bytes as f64
        ),
    );
    result_line(
        "GC reclaim",
        format!(
            "{:.1} MB ({:.1}% of footprint, {} chunks, {} segments compacted)",
            gc.reclaimed_bytes() as f64 / 1e6,
            gc.reclaim_fraction() * 100.0,
            gc.freed_chunks,
            gc.compacted_segments,
        ),
    );

    println!();
    check(
        "physical growth is bounded (footprint < 50% of logical after K generations)",
        physical_before < report.logical_bytes / 2,
    );
    check(
        "every live generation restored bit-identical with all digests verified",
        true, // asserted above; a failure panics before reaching here
    );
    check(
        "expiring the first half reclaims the bytes unique to it (> 0)",
        gc.reclaimed_bytes() > 0 && gc.freed_chunks > 0,
    );
    check(
        "GC left no dead bytes above the compaction threshold",
        store.borrow().physical_bytes() as f64
            <= store.borrow().live_bytes() as f64 / cfg.gc_threshold.max(0.01),
    );

    dump_bench_json(&format!(
        concat!(
            "{{\n",
            "  \"name\": \"generations\",\n",
            "  \"generations\": {},\n",
            "  \"aggregate_gbps\": {:.6},\n",
            "  \"restore_gbps\": {:.6},\n",
            "  \"physical_over_logical\": {:.6},\n",
            "  \"reclaim_fraction\": {:.6},\n",
            "  \"freed_chunks\": {}\n",
            "}}\n"
        ),
        generations,
        ingest_gbps,
        restore_gbps,
        physical_before as f64 / report.logical_bytes as f64,
        gc.reclaim_fraction(),
        gc.freed_chunks,
    ));
}
