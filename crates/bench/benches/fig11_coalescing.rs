//! Figure 11: normalized chunking-kernel time, plain device-memory
//! access vs memory coalescing, for 1 GB of data.
//!
//! Runs both kernel variants over real data per buffer size and reports
//! kernel-only time normalized to 1 GB. Shape checks: ~8× improvement
//! from coalescing, consistent across buffer sizes (the coalescing
//! granularity is the 48 KB shared-memory tile, not the buffer).

use shredder_bench::{check, header, ms, paper_buffer_sizes, per_gb, table};
use shredder_gpu::kernel::{ChunkKernel, KernelVariant};
use shredder_gpu::DeviceConfig;
use shredder_rabin::ChunkParams;

fn main() {
    header(
        "Figure 11",
        "Chunking kernel time: device memory vs memory coalescing (per GB)",
    );

    let cfg = DeviceConfig::tesla_c2050();
    let params = ChunkParams::paper();
    let data = shredder_workloads::random_bytes(shredder_bench::experiment_bytes(), 0xf11);

    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    let mut coalesced_per_gb = Vec::new();

    for &buffer in &paper_buffer_sizes() {
        let slice = &data[..buffer.min(data.len())];
        let basic = ChunkKernel::new(params.clone(), KernelVariant::Basic)
            .run(&cfg, slice)
            .expect("basic kernel");
        let coal = ChunkKernel::new(params.clone(), KernelVariant::Coalesced)
            .run(&cfg, slice)
            .expect("coalesced kernel");

        // Kernel time for the full 1 GB processed in `buffer`-sized
        // launches.
        let launches = (1u64 << 30).div_ceil(slice.len() as u64);
        let basic_gb = per_gb(
            basic.stats.duration * launches,
            (slice.len() as u64 * launches) as usize,
        );
        let coal_gb = per_gb(
            coal.stats.duration * launches,
            (slice.len() as u64 * launches) as usize,
        );

        let speedup = basic_gb.as_secs_f64() / coal_gb.as_secs_f64();
        speedups.push(speedup);
        coalesced_per_gb.push(coal_gb);
        rows.push((
            format!("{}M", buffer >> 20),
            vec![ms(basic_gb), ms(coal_gb), format!("{speedup:.1}x")],
        ));
    }

    table(&["Device Memory", "Memory Coalescing", "Speedup"], &rows);

    println!();
    let mean_speedup = speedups.iter().sum::<f64>() / speedups.len() as f64;
    check(
        &format!("coalescing improves the kernel ~8x (paper: 8; measured {mean_speedup:.1}x)"),
        (5.0..12.0).contains(&mean_speedup),
    );
    check(
        "benefit is consistent across buffer sizes (max/min speedup < 1.3)",
        {
            let max = speedups.iter().cloned().fold(f64::MIN, f64::max);
            let min = speedups.iter().cloned().fold(f64::MAX, f64::min);
            max / min < 1.3
        },
    );
    check(
        "coalesced kernel processes 1 GB in ~100ms (paper figure scale)",
        coalesced_per_gb
            .iter()
            .all(|d| (60.0..180.0).contains(&d.as_millis_f64())),
    );
}
