//! Fleet scaling sweep: aggregate service rate vs. node count.
//!
//! The paper's single-node Shredder saturates one host's device budget;
//! a backup farm shards tenants across a fleet. This harness offers the
//! same Poisson tenant mix to 1-, 2- and 4-node fleets (consistent-hash
//! routing, `R = 2` replicated segment writes where the fleet has a
//! peer to hold them) and reports per-N aggregate completion rate,
//! latency tails, replication amplification, and the cross-node
//! duplicate fraction the sharding leaves behind.
//!
//! Set `SHREDDER_BENCH_JSON=<path>` to dump the headline numbers; the
//! CI gate (`bench_gate`) tracks `fleet_rps_n4` and the
//! `speedup_n4_over_n1` scaling ratio — the latter's baseline sits well
//! above 1, so the gate enforces the "4 nodes sustain more than 1"
//! acceptance claim release over release.

use shredder_bench::{check, dump_bench_json, header, result_line, table};
use shredder_cluster::{FleetConfig, FleetReport, FleetRequest, ShredderFleet};
use shredder_core::{AdmissionControl, MemorySource, ShredderConfig, TenantClass, Workload};

const TENANTS: usize = 32;
const REQ_BYTES: usize = 256 << 10;
const RATE_RPS: f64 = 6_000.0;
const SEED: u64 = 0xf1ee7;

fn node_config() -> ShredderConfig {
    ShredderConfig::gpu_streams_memory().with_buffer_size(128 << 10)
}

/// Runs the shared tenant mix — two weighted classes, one stream per
/// tenant — against an `nodes`-wide fleet and returns its report.
fn run_fleet(nodes: usize) -> FleetReport {
    let mut fleet = ShredderFleet::new(
        FleetConfig::new(nodes, node_config())
            .with_admission(AdmissionControl::fifo(4))
            .with_replication(2.min(nodes))
            .with_class(TenantClass::new("vm").with_weight(2))
            .with_class(TenantClass::new("db")),
    );
    for t in 0..TENANTS {
        let class = if t % 3 == 0 { "db" } else { "vm" };
        fleet.submit(
            FleetRequest::new(
                format!("{class}-{t}"),
                MemorySource::pseudo_random(REQ_BYTES, 0xacc0 + t as u64),
            )
            .named(format!("{class}-{t}"))
            .with_class(class),
        );
    }
    fleet
        .run(&Workload::poisson(RATE_RPS, SEED))
        .expect("fleet run failed")
        .report
}

fn main() {
    header(
        "Cluster fleet scaling sweep",
        "one Poisson tenant mix offered to 1-, 2- and 4-node fleets; routing, replication and tails",
    );
    result_line(
        "tenant mix",
        format!(
            "{TENANTS} streams x {} KiB at {RATE_RPS:.0} req/s offered",
            REQ_BYTES >> 10
        ),
    );
    println!();

    let sweep: Vec<(usize, FleetReport)> =
        [1usize, 2, 4].iter().map(|&n| (n, run_fleet(n))).collect();

    let rows: Vec<(String, Vec<String>)> = sweep
        .iter()
        .map(|(n, r)| {
            (
                format!("N={n} (R={})", r.replication.factor),
                vec![
                    format!("{:.0} rps", r.achieved_rps),
                    format!("{:.2} ms", r.p50.as_millis_f64()),
                    format!("{:.2} ms", r.p99.as_millis_f64()),
                    format!("{:.3}x", r.replication_amplification()),
                    format!("{:.1}%", r.cross_node_dup_fraction() * 100.0),
                ],
            )
        })
        .collect();
    table(&["achieved", "p50", "p99", "repl amp", "x-node dup"], &rows);
    println!();

    let (n1, n2, n4) = (&sweep[0].1, &sweep[1].1, &sweep[2].1);
    let speedup = n4.achieved_rps / n1.achieved_rps;
    result_line(
        "aggregate rate N=1",
        format!("{:.0} req/s", n1.achieved_rps),
    );
    result_line(
        "aggregate rate N=4",
        format!("{:.0} req/s", n4.achieved_rps),
    );
    result_line("speedup N=4 over N=1", format!("{speedup:.2}x"));
    result_line(
        "replication traffic N=4",
        format!(
            "{} shipments, {:.2} MB physical / {:.2} MB logical",
            n4.replication.shipments,
            n4.replication.physical_bytes as f64 / 1e6,
            n4.replication.logical_bytes as f64 / 1e6,
        ),
    );
    println!();

    check(
        "every fleet size completes the whole mix",
        sweep
            .iter()
            .all(|(_, r)| r.completed == TENANTS && r.shed == 0 && r.lost == 0),
    );
    check(
        &format!(
            "4 nodes sustain a higher aggregate rate than 1 ({:.0} vs {:.0} rps)",
            n4.achieved_rps, n1.achieved_rps
        ),
        n4.achieved_rps > n1.achieved_rps,
    );
    check(
        "scaling is monotone across the sweep (N=1 < N=2 < N=4)",
        n1.achieved_rps < n2.achieved_rps && n2.achieved_rps < n4.achieved_rps,
    );
    check("p99 improves with nodes (N=4 below N=1)", n4.p99 < n1.p99);
    check(
        "replication amplification stays within factor R",
        sweep
            .iter()
            .all(|(_, r)| r.replication_amplification() <= r.replication.factor as f64 + 1e-9),
    );
    check(
        "a single node needs no replication and moves no cluster bytes",
        n1.replication.shipments == 0 && n1.rebalance.bytes_moved == 0,
    );

    let json = format!(
        concat!(
            "{{\"fleet_rps_n1\":{:.6},\"fleet_rps_n2\":{:.6},\"fleet_rps_n4\":{:.6},",
            "\"speedup_n4_over_n1\":{:.6},\"p99_ms_n1\":{:.6},\"p99_ms_n4\":{:.6},",
            "\"replication_amplification_n4\":{:.6},\"cross_node_dup_fraction_n4\":{:.6},",
            "\"replication_physical_bytes_n4\":{}}}"
        ),
        n1.achieved_rps,
        n2.achieved_rps,
        n4.achieved_rps,
        speedup,
        n1.p99.as_millis_f64(),
        n4.p99.as_millis_f64(),
        n4.replication_amplification(),
        n4.cross_node_dup_fraction(),
        n4.replication.physical_bytes,
    );
    dump_bench_json(&json);
}
