//! Real wall-clock micro-benchmarks of the functional primitives
//! (Criterion).
//!
//! These are *not* paper figures — the paper's timing is reproduced by
//! the simulated experiments — but they measure the actual Rust
//! implementations: Rabin table fingerprinting, sequential vs parallel
//! CDC, fixed-size chunking, and SHA-256.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use shredder_hash::sha256;
use shredder_rabin::{
    chunk_all, chunk_fixed, ChunkParams, GearKernel, ParallelChunker, RabinTables,
};

fn test_data(len: usize) -> Vec<u8> {
    let mut state = 0x1234_5678_9abc_def0u64;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 32) as u8
        })
        .collect()
}

fn bench_rabin_tables(c: &mut Criterion) {
    let tables = RabinTables::paper();
    let data = test_data(1 << 20);
    let mut group = c.benchmark_group("rabin_fingerprint");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("sliding_window_1MiB", |b| {
        b.iter(|| {
            let mut fp = 0u64;
            for &byte in &data {
                fp = tables.push(fp, byte);
            }
            fp
        })
    });
    group.finish();
}

fn bench_gear_hash(c: &mut Criterion) {
    // The Gear inner loop against the Rabin one above: one table
    // lookup, a shift and an add per byte, vs the two-table polynomial
    // push. This is the per-byte cost ratio the GPU cost model encodes
    // (26 vs 52 cycles/byte).
    let kernel = GearKernel::matched(&ChunkParams::paper());
    let data = test_data(1 << 20);
    let mut group = c.benchmark_group("gear_hash");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("shift_add_1MiB", |b| {
        b.iter(|| {
            let mut h = 0u64;
            for &byte in &data {
                h = kernel.step(h, byte);
            }
            h
        })
    });
    group.finish();
}

fn bench_chunking(c: &mut Criterion) {
    let params = ChunkParams::paper();
    let data = test_data(8 << 20);
    let mut group = c.benchmark_group("chunking_8MiB");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.sample_size(20);

    group.bench_function("sequential_cdc", |b| b.iter(|| chunk_all(&data, &params)));
    for threads in [2usize, 4, 8] {
        let chunker = ParallelChunker::new(&params, threads);
        group.bench_with_input(
            BenchmarkId::new("parallel_cdc", threads),
            &threads,
            |b, _| b.iter(|| chunker.chunk(&data)),
        );
    }
    group.bench_function("fixed_size", |b| b.iter(|| chunk_fixed(&data, 8192)));
    let gear = GearKernel::matched(&params);
    group.bench_function("gear_cdc", |b| {
        use shredder_rabin::BoundaryKernel;
        b.iter(|| gear.chunks(&data))
    });
    group.finish();
}

fn bench_sha256(c: &mut Criterion) {
    let data = test_data(1 << 20);
    let mut group = c.benchmark_group("sha256");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("digest_1MiB", |b| b.iter(|| sha256(&data)));
    group.finish();
}

criterion_group!(
    benches,
    bench_rabin_tables,
    bench_gear_hash,
    bench_chunking,
    bench_sha256
);
criterion_main!(benches);
