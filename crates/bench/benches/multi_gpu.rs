//! Multi-GPU device pool: aggregate chunking throughput vs pool size.
//!
//! The ROADMAP's scaling direction beyond one device: N identical
//! C2050s, each with its own DMA engines, twin buffers and pinned
//! staging ring, fed by a provisioned SAN fabric (32 GB/s — with the
//! paper's 2 GB/s link a single device already keeps up and a pool
//! gains nothing, which `tests/multi_gpu.rs` pins separately). The
//! harness checks:
//!
//! * **correctness** — every tenant's chunks are bit-identical across
//!   pool sizes (placement cannot change boundaries);
//! * **scaling** — 2 devices beat 1 by ≥1.3×, and 4 beat 2, until the
//!   shared host stages (reader, store thread) cap the curve;
//! * **overlap** — each busy device hides a substantial fraction of its
//!   DMA time behind kernel execution (the §4.1.1 optimization,
//!   measured per device by the pool).
//!
//! Set `SHREDDER_BENCH_JSON=<path>` to dump the headline numbers for
//! the CI regression gate (see `src/bin/bench_gate.rs`).

use shredder_bench::{check, dump_bench_json, gbps, header, result_line, table};
use shredder_core::{EngineOutcome, ShredderConfig, ShredderEngine, SliceSource};
use shredder_gpu::kernel::KernelVariant;
use shredder_rabin::{chunk_all, BoundaryKernel, ChunkParams, GearKernel};

fn run_pool(streams: &[Vec<u8>], gpus: usize, kernel: KernelVariant) -> EngineOutcome {
    let cfg = ShredderConfig::gpu_streams_memory()
        .with_buffer_size(1 << 20)
        .with_reader_bandwidth(32e9)
        .with_gpus(gpus)
        .with_pipeline_depth(4 * gpus)
        .with_chunk_kernel(kernel);
    let mut engine = ShredderEngine::new(cfg);
    for (t, data) in streams.iter().enumerate() {
        engine.open_named_session(format!("tenant-{t}"), 1, SliceSource::new(data));
    }
    engine.run().expect("engine run failed")
}

fn main() {
    header(
        "Multi-GPU pool",
        "aggregate throughput and copy-compute overlap vs device count",
    );

    let tenants = 8usize;
    let per_stream = 4 << 20;
    let streams: Vec<Vec<u8>> = (0..tenants)
        .map(|t| shredder_workloads::random_bytes(per_stream, 0x6e0 + t as u64))
        .collect();
    let params = ChunkParams::paper();
    let reference: Vec<_> = streams.iter().map(|s| chunk_all(s, &params)).collect();

    let pool_sizes = [1usize, 2, 4];
    let mut outcomes = Vec::new();
    for &gpus in &pool_sizes {
        let out = run_pool(&streams, gpus, KernelVariant::Coalesced);
        for (session, expected) in out.sessions.iter().zip(&reference) {
            assert_eq!(
                &session.chunks, expected,
                "{} diverged on a {gpus}-device pool",
                session.name
            );
        }
        outcomes.push((gpus, out));
    }
    println!("  (all {tenants} tenants produced identical chunks on every pool size)");
    println!();

    // The same pools with the Gear/FastCDC kernel. Boundaries differ
    // from Rabin's, so each tenant is checked against the sequential
    // Gear reference instead of `chunk_all`.
    let gear_kernel = GearKernel::matched(&params);
    let gear_reference: Vec<_> = streams.iter().map(|s| gear_kernel.chunks(s)).collect();
    let mut gear_outcomes = Vec::new();
    for &gpus in &pool_sizes {
        let out = run_pool(&streams, gpus, KernelVariant::GearCoalesced);
        for (session, expected) in out.sessions.iter().zip(&gear_reference) {
            assert_eq!(
                &session.chunks, expected,
                "{} (gear) diverged on a {gpus}-device pool",
                session.name
            );
        }
        gear_outcomes.push((gpus, out));
    }
    println!("  (gear pools matched the sequential Gear reference on every pool size)");
    println!();

    let base = outcomes[0].1.report.aggregate_gbps();
    let rows: Vec<(String, Vec<String>)> = outcomes
        .iter()
        .map(|(gpus, out)| {
            let r = &out.report;
            let util =
                r.devices.iter().map(|d| d.utilization).sum::<f64>() / r.devices.len() as f64;
            let overlap = {
                let busy: Vec<_> = r.devices.iter().filter(|d| d.buffers > 0).collect();
                busy.iter().map(|d| d.overlap).sum::<f64>() / busy.len().max(1) as f64
            };
            (
                format!("{gpus} device(s)"),
                vec![
                    format!("{:.2} GB/s", r.aggregate_gbps()),
                    format!("{:.2}x", r.aggregate_gbps() / base),
                    format!("{util:.2}"),
                    format!("{overlap:.2}"),
                    format!("{:.2} ms", r.makespan.as_millis_f64()),
                ],
            )
        })
        .collect();
    table(
        &["aggregate", "speedup", "mean util", "overlap", "makespan"],
        &rows,
    );

    let g = |i: usize| outcomes[i].1.report.aggregate_gbps();
    let gg = |i: usize| gear_outcomes[i].1.report.aggregate_gbps();
    println!();
    result_line("1-device aggregate", gbps(g(0) * 1e9));
    result_line("2-device aggregate", gbps(g(1) * 1e9));
    result_line("4-device aggregate", gbps(g(2) * 1e9));
    result_line("2-device aggregate (Gear)", gbps(gg(1) * 1e9));

    println!();
    check(
        "2 devices scale aggregate throughput >= 1.3x over 1",
        g(1) > g(0) * 1.3,
    );
    check(
        "4 devices beat 2 (host stages cap, but never invert)",
        g(2) > g(1),
    );
    check(
        "every busy device overlaps >40% of its DMA behind the kernel at 2 devices",
        outcomes[1]
            .1
            .report
            .devices
            .iter()
            .all(|d| d.buffers == 0 || d.overlap > 0.4),
    );
    check(
        "placement shards sessions across all devices at every pool size",
        outcomes.iter().all(|(gpus, out)| {
            out.report.devices.iter().filter(|d| d.sessions > 0).count() == *gpus
        }),
    );
    check(
        &format!(
            "Gear kernel beats Rabin on the 2-device aggregate ({:.3} vs {:.3} GB/s)",
            gg(1),
            g(1)
        ),
        gg(1) > g(1),
    );

    // Perf-trajectory dump for the CI bench gate.
    let json = format!(
        "{{\n  \"aggregate_gbps\": {:.6},\n  \"single_device_gbps\": {:.6},\n  \"four_device_gbps\": {:.6},\n  \"gear_gbps\": {:.6},\n  \"speedup_2x\": {:.6},\n  \"mean_overlap_2dev\": {:.6}\n}}\n",
        g(1),
        g(0),
        g(2),
        gg(1),
        g(1) / g(0),
        outcomes[1].1.report.devices.iter().map(|d| d.overlap).sum::<f64>()
            / outcomes[1].1.report.devices.len() as f64,
    );
    dump_bench_json(&json);
}
