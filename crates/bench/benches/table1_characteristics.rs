//! Table 1: performance characteristics of the GPU (NVidia Tesla C2050).
//!
//! Regenerates the paper's device-characteristics table from the
//! simulator configuration and measures the two derived quantities
//! (host↔device bandwidth at saturation) through the DMA model.

use shredder_bench::{check, header, result_line};
use shredder_gpu::dma::Direction;
use shredder_gpu::{calibration, DeviceConfig, DmaModel, HostMemKind};

fn main() {
    header(
        "Table 1",
        "Performance characteristics of the GPU (NVidia Tesla C2050)",
    );

    let cfg = DeviceConfig::tesla_c2050();
    let dma = DmaModel::new();

    // GFLOPS: 448 cores × 1.15 GHz × 2 (FMA) ≈ 1030 GFlops as published.
    let gflops = cfg.total_cores() as f64 * cfg.clock_hz * 2.0 / 1e9;
    result_line(
        "GPU Processing Capacity (paper: 1030 GFlops)",
        format!("{gflops:.0} GFlops"),
    );
    result_line(
        "Reader (I/O) Bandwidth (paper: 2 GBps)",
        format!("{:.1} GBps", calibration::READER_IO_BW / 1e9),
    );

    let h2d = dma.effective_bandwidth(Direction::HostToDevice, HostMemKind::Pinned, 1 << 30);
    let d2h = dma.effective_bandwidth(Direction::DeviceToHost, HostMemKind::Pinned, 1 << 30);
    result_line(
        "Host-to-Device Bandwidth (paper: 5.406 GBps)",
        format!("{:.3} GBps", h2d / 1e9),
    );
    result_line(
        "Device-to-Host Bandwidth (paper: 5.129 GBps)",
        format!("{:.3} GBps", d2h / 1e9),
    );
    result_line(
        "Device Memory Latency (paper: 400-600 cycles)",
        format!("{} cycles", cfg.mem_latency_cycles),
    );
    result_line(
        "Device Memory Bandwidth (paper: 144 GBps)",
        format!("{:.0} GBps", cfg.mem_bandwidth / 1e9),
    );
    result_line(
        "Shared Memory Latency (paper: L1, a few cycles)",
        "L1-equivalent (modelled as compute cost)",
    );

    println!();
    check(
        "processing capacity within 5% of 1030 GFlops",
        (gflops - 1030.4).abs() < 52.0,
    );
    check(
        "H2D saturated bandwidth within 2% of 5.406 GBps",
        (h2d / 1e9 - 5.406).abs() < 0.11,
    );
    check(
        "D2H saturated bandwidth within 2% of 5.129 GBps",
        (d2h / 1e9 - 5.129).abs() < 0.11,
    );
    check(
        "memory latency in published 400-600 cycle band",
        (400..=600).contains(&cfg.mem_latency_cycles),
    );
}
