//! Figure 9: speedup for streaming pipelined execution.
//!
//! Varies the number of pipeline stages executing simultaneously
//! (2/3/4, implemented exactly as the paper does — "by restricting the
//! number of buffers that are admitted to the pipeline") across buffer
//! sizes, and reports the speedup of each over fully sequential
//! execution of the same work.

use shredder_bench::{check, header, table};
use shredder_core::{Shredder, ShredderConfig};
use shredder_gpu::kernel::{ChunkKernel, KernelVariant};
use shredder_gpu::DeviceConfig;
use shredder_rabin::ChunkParams;

fn main() {
    header(
        "Figure 9",
        "Speedup of the multi-stage streaming pipeline over sequential execution",
    );

    let cfg = DeviceConfig::tesla_c2050();
    // Per-byte kernel time and cut density, measured once on real data
    // (the unoptimized kernel, as in the paper's pipeline experiments).
    let sample = shredder_workloads::random_bytes(32 << 20, 0x919);
    let out = ChunkKernel::new(ChunkParams::paper(), KernelVariant::Basic)
        .run(&cfg, &sample)
        .expect("kernel run");
    let ns_per_byte = out.stats.duration.as_nanos() as f64 / sample.len() as f64;
    let cuts_per_byte = out.raw_cuts.len() as f64 / sample.len() as f64;

    let total: usize = 1 << 30;
    let depths = [2usize, 3, 4];
    let mut rows = Vec::new();
    let mut speedups_at = vec![Vec::new(); depths.len()];

    for &buffer in &shredder_bench::paper_buffer_sizes() {
        let buffers = (total / buffer).max(2);
        let kernel_dur = shredder_des::Dur::from_nanos((buffer as f64 * ns_per_byte) as u64);
        let cuts = (buffer as f64 * cuts_per_byte) as usize;

        let time_at_depth = |depth: usize| {
            // The §4.2 experiment predates the §4.1.2 pinned ring and the
            // §4.3 coalescing: host buffers are pageable (allocated per
            // iteration in the Reader) and the kernel is unoptimized, so
            // the four stages have comparable cost — which is what makes
            // the *number* of overlapped stages matter.
            let config = ShredderConfig {
                pinned_ring: false,
                twin_buffers: 2,
                ..ShredderConfig::gpu_basic()
            }
            .with_buffer_size(buffer)
            .with_pipeline_depth(depth);
            Shredder::new(config)
                .simulate_synthetic(buffers, buffer, kernel_dur, cuts)
                .makespan
        };

        let sequential = time_at_depth(1);
        let mut cells = Vec::new();
        for (i, &d) in depths.iter().enumerate() {
            let s = sequential.as_secs_f64() / time_at_depth(d).as_secs_f64();
            speedups_at[i].push(s);
            cells.push(format!("{s:.2}x"));
        }
        rows.push((format!("{}M", buffer >> 20), cells));
    }

    table(&["2-Staged", "3-Staged", "4-Staged"], &rows);

    println!();
    let mean = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len() as f64;
    check(
        "more admitted buffers never slows the pipeline (2 <= 3 <= 4 stages, within noise)",
        speedups_at[0]
            .iter()
            .zip(&speedups_at[2])
            .all(|(s2, s4)| s4 >= s2),
    );
    let four = mean(&speedups_at[2]);
    check(
        &format!("full 4-stage pipeline achieves ~2x (paper: 2; measured {four:.2}x)"),
        (1.5..2.6).contains(&four),
    );
    check(
        "speedup stays below the theoretical 4x (stages have unequal cost, as the paper notes)",
        speedups_at[2].iter().all(|&s| s < 4.0),
    );
}
