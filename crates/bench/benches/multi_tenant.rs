//! Multi-tenant engine: N concurrent streams through one shared device
//! pipeline.
//!
//! The ROADMAP's "many clients, one GPU" direction (and §7.2's backup
//! server consolidating many remote sites): the session engine admits
//! buffers from every tenant into the same reader/DMA/kernel/store
//! pipeline, so one stream's fill/drain bubbles are covered by the
//! others' buffers. The harness checks the two load-bearing properties:
//!
//! * **correctness** — every tenant's chunks are bit-identical to a
//!   sequential CPU scan of its own stream, under contention;
//! * **throughput** — aggregate GB/s across ≥4 concurrent tenants
//!   exceeds the single-stream throughput of the same engine
//!   configuration (pipeline overlap across tenants).
//!
//! Set `SHREDDER_BENCH_JSON=<path>` to also dump the run's headline
//! numbers (aggregate GB/s, per-session makespans/queueing, stage busy
//! times) as JSON, so the perf trajectory can be recorded across PRs
//! (`BENCH_multi_tenant.json` by convention). The vendored `serde` is
//! derive-only, so the encoder here is hand-rolled over the report
//! fields.

use shredder_bench::{check, dump_bench_json, gbps, header, result_line, table};
use shredder_core::{
    AdmissionPolicy, ChunkingService, EngineReport, Shredder, ShredderConfig, ShredderEngine,
    SliceSource,
};
use shredder_rabin::{chunk_all, ChunkParams};

/// Hand-rolled JSON for the perf-trajectory dump (`EngineReport` and
/// friends derive `serde::Serialize`, but the offline stub emits
/// nothing).
fn report_to_json(report: &EngineReport, solo_mean_gbps: f64) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"aggregate_gbps\": {:.6},\n  \"solo_mean_gbps\": {:.6},\n",
        report.aggregate_gbps(),
        solo_mean_gbps
    ));
    out.push_str(&format!(
        "  \"bytes\": {},\n  \"buffers\": {},\n  \"pipeline_depth\": {},\n",
        report.bytes, report.buffers, report.pipeline_depth
    ));
    out.push_str(&format!(
        "  \"makespan_ns\": {},\n  \"queue_wait_ns\": {},\n",
        report.makespan.as_nanos(),
        report.queue_wait.as_nanos()
    ));
    out.push_str(&format!(
        "  \"stage_busy_ns\": {{\"read\": {}, \"transfer\": {}, \"kernel\": {}, \"store\": {}}},\n",
        report.stage_busy.read.as_nanos(),
        report.stage_busy.transfer.as_nanos(),
        report.stage_busy.kernel.as_nanos(),
        report.stage_busy.store.as_nanos()
    ));
    let sink_stages: Vec<String> = report
        .sink_stages
        .iter()
        .map(|s| {
            format!(
                "    {{\"name\": \"{}\", \"busy_ns\": {}, \"queue_wait_ns\": {}, \"jobs\": {}}}",
                s.name,
                s.busy.as_nanos(),
                s.queue_wait.as_nanos(),
                s.jobs
            )
        })
        .collect();
    out.push_str(&format!(
        "  \"sink_stages\": [\n{}\n  ],\n",
        sink_stages.join(",\n")
    ));
    let devices: Vec<String> = report
        .devices
        .iter()
        .map(|d| {
            format!(
                "    {{\"id\": {}, \"sessions\": {}, \"buffers\": {}, \"utilization\": {:.6}, \"overlap\": {:.6}}}",
                d.id, d.sessions, d.buffers, d.utilization, d.overlap
            )
        })
        .collect();
    out.push_str(&format!(
        "  \"devices\": [\n{}\n  ],\n",
        devices.join(",\n")
    ));
    let sessions: Vec<String> = report
        .sessions
        .iter()
        .map(|r| {
            format!(
                "    {{\"name\": \"{}\", \"device\": {}, \"bytes\": {}, \"makespan_ns\": {}, \"queue_wait_ns\": {}, \"gbps\": {:.6}}}",
                r.name,
                r.device,
                r.bytes,
                r.makespan.as_nanos(),
                r.queue_wait.as_nanos(),
                r.throughput_gbps()
            )
        })
        .collect();
    out.push_str(&format!(
        "  \"sessions\": [\n{}\n  ]\n}}\n",
        sessions.join(",\n")
    ));
    out
}

fn main() {
    header(
        "Multi-tenant engine",
        "4+ concurrent client streams through one shared chunking pipeline",
    );

    let tenants = 6usize;
    let per_stream = 4 << 20; // short streams: fill/drain matters
    let cfg = ShredderConfig::gpu_streams_memory().with_buffer_size(1 << 20);
    let streams: Vec<Vec<u8>> = (0..tenants)
        .map(|t| shredder_workloads::random_bytes(per_stream, 0x7e0 + t as u64))
        .collect();

    // Single-stream baseline: each tenant served alone, back to back.
    let solo = Shredder::new(cfg.clone());
    let mut solo_gbps = Vec::new();
    for data in &streams {
        let out = solo.chunk_stream(data).expect("chunking failed");
        solo_gbps.push(out.report.throughput_gbps());
    }
    let solo_mean = solo_gbps.iter().sum::<f64>() / solo_gbps.len() as f64;

    // All tenants concurrently through one engine.
    let mut engine = ShredderEngine::new(cfg.clone()).with_policy(AdmissionPolicy::RoundRobin);
    for (t, data) in streams.iter().enumerate() {
        engine.open_named_session(format!("tenant-{t}"), 1, SliceSource::new(data));
    }
    let outcome = engine.run().expect("engine run failed");

    // Correctness under contention: bit-identical per stream.
    let params = ChunkParams::paper();
    for (session, data) in outcome.sessions.iter().zip(&streams) {
        assert_eq!(
            session.chunks,
            chunk_all(data, &params),
            "{} diverged from the sequential scan",
            session.name
        );
    }
    println!("  (all {tenants} tenants produced chunks bit-identical to sequential CPU scans)");
    println!();

    let rows: Vec<(String, Vec<String>)> = outcome
        .report
        .sessions
        .iter()
        .map(|r| {
            (
                r.name.clone(),
                vec![
                    format!("{:.2} ms", r.makespan.as_millis_f64()),
                    format!("{:.2} ms", r.queue_wait.as_millis_f64()),
                    format!("{:.2} GB/s", r.throughput_gbps()),
                ],
            )
        })
        .collect();
    table(&["makespan", "queue wait", "own GB/s"], &rows);

    let aggregate = outcome.report.aggregate_gbps();
    println!();
    result_line("single-stream throughput (mean)", gbps(solo_mean * 1e9));
    result_line("multi-tenant aggregate", gbps(aggregate * 1e9));
    result_line(
        "total admission queueing (contention)",
        format!("{:.2} ms", outcome.report.queue_wait.as_millis_f64()),
    );

    println!();
    check(
        "aggregate throughput exceeds single-stream throughput (overlap across tenants)",
        aggregate > solo_mean,
    );
    check(
        "every tenant saw admission queueing (streams genuinely contend)",
        outcome
            .report
            .sessions
            .iter()
            .all(|r| !r.queue_wait.is_zero()),
    );
    check(
        "round-robin keeps per-tenant makespans within 25% of each other",
        {
            let spans: Vec<f64> = outcome
                .report
                .sessions
                .iter()
                .map(|r| r.makespan.as_secs_f64())
                .collect();
            let max = spans.iter().cloned().fold(f64::MIN, f64::max);
            let min = spans.iter().cloned().fold(f64::MAX, f64::min);
            (max - min) / max < 0.25
        },
    );

    // Weighted admission: a priority tenant finishes sooner.
    let mut weighted = ShredderEngine::new(cfg).with_policy(AdmissionPolicy::Weighted);
    for (t, data) in streams.iter().enumerate() {
        let weight = if t == 0 { 4 } else { 1 };
        weighted.open_named_session(format!("tenant-{t}"), weight, SliceSource::new(data));
    }
    let weighted_out = weighted.run().expect("engine run failed");
    let priority = &weighted_out.report.sessions[0];
    let rr_priority = &outcome.report.sessions[0];
    println!();
    result_line(
        "tenant-0 completion (even weights)",
        format!("{:.2} ms", rr_priority.completion.as_millis_f64()),
    );
    result_line(
        "tenant-0 completion (weight 4)",
        format!("{:.2} ms", priority.completion.as_millis_f64()),
    );
    check(
        "weighted admission finishes the priority tenant earlier",
        priority.completion < rr_priority.completion,
    );

    // Perf-trajectory dump (BENCH_*.json across PRs).
    dump_bench_json(&report_to_json(&outcome.report, solo_mean));
}
