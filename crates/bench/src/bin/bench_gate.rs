//! CI bench-regression gate.
//!
//! Compares the `aggregate_gbps` headline of freshly-dumped bench JSON
//! files (`SHREDDER_BENCH_JSON`) against the checked-in
//! `bench/baseline.json` and fails (exit 1) if any bench dropped by more
//! than the allowed percentage. The simulation is deterministic, so a
//! drop is a real model/pipeline regression, not machine noise.
//!
//! Usage:
//!
//! ```text
//! bench_gate --baseline bench/baseline.json [--max-drop-pct 20] \
//!     fig12_throughput=bench-out/fig12_throughput.json \
//!     multi_tenant=bench-out/multi_tenant.json \
//!     service_load:sustained_rps=bench-out/service_load.json
//! ```
//!
//! Each argument is `name[:key]=current.json`: the gated headline
//! defaults to `aggregate_gbps`, and a `name:key` prefix gates a
//! different numeric headline (e.g. the service-load bench's sustained
//! req/s at its latency SLO). The baseline maps each bench name to an
//! object holding the expected value under the same key; improvements
//! are reported (refresh the baseline to ratchet the gate) but never
//! fail. The vendored `serde` stub cannot deserialize, so the parser
//! here is a purpose-built scanner for the hand-rolled dumps — it only
//! understands `"key": number` fields.

use std::process::ExitCode;

/// Extracts the numeric value of `"key": <number>` from `json`,
/// starting at `from`. Returns the value and the index after the match.
fn extract_number_at(json: &str, key: &str, from: usize) -> Option<(f64, usize)> {
    let needle = format!("\"{key}\"");
    let rel = json.get(from..)?.find(&needle)?;
    let after_key = from + rel + needle.len();
    let rest = &json[after_key..];
    let colon = rest.find(':')?;
    let tail = rest[colon + 1..].trim_start();
    let end = tail
        .find(|c: char| {
            !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+')
        })
        .unwrap_or(tail.len());
    let value: f64 = tail[..end].parse().ok()?;
    let consumed = json.len() - tail.len() + end;
    Some((value, consumed))
}

/// Top-level `"key": number` lookup.
fn extract_number(json: &str, key: &str) -> Option<f64> {
    extract_number_at(json, key, 0).map(|(v, _)| v)
}

/// Looks up `key` inside the object that follows `"scope"` — good
/// enough for the flat two-level baseline file. The scope anchor must
/// read `"scope": {` (whitespace allowed), so a bench name quoted
/// inside a string value (e.g. the baseline's `_comment`) is skipped
/// rather than capturing the wrong object; and the search for `key` is
/// bounded by the scope object's closing brace, so a scope missing the
/// key reports `None` instead of reading the next scope's value.
fn extract_scoped(json: &str, scope: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{scope}\"");
    let mut from = 0;
    let open = loop {
        let at = from + json.get(from..)?.find(&needle)? + needle.len();
        let rest = json[at..].trim_start();
        if let Some(tail) = rest.strip_prefix(':') {
            if tail.trim_start().starts_with('{') {
                break at + (json[at..].len() - tail.trim_start().len());
            }
        }
        from = at;
    };
    let mut depth = 0usize;
    let mut close = None;
    for (i, c) in json[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    close = Some(open + i);
                    break;
                }
            }
            _ => {}
        }
    }
    let scope_body = &json[..close?];
    extract_number_at(scope_body, key, open).map(|(v, _)| v)
}

/// Splits a `name[:key]` bench spec; the gated key defaults to
/// `aggregate_gbps`.
fn parse_spec(spec: &str) -> (&str, &str) {
    match spec.split_once(':') {
        Some((name, key)) => (name, key),
        None => (spec, "aggregate_gbps"),
    }
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("bench_gate: {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline_path: Option<String> = None;
    let mut max_drop_pct = 20.0f64;
    // (bench name, gated key, current-dump path)
    let mut pairs: Vec<(String, String, String)> = Vec::new();

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--baseline" => match it.next() {
                Some(p) => baseline_path = Some(p),
                None => return fail("--baseline needs a path"),
            },
            "--max-drop-pct" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => max_drop_pct = v,
                None => return fail("--max-drop-pct needs a number"),
            },
            other => match other.split_once('=') {
                Some((spec, path)) => {
                    let (name, key) = parse_spec(spec);
                    pairs.push((name.to_string(), key.to_string(), path.to_string()));
                }
                None => return fail(&format!("unrecognized argument '{other}'")),
            },
        }
    }
    let Some(baseline_path) = baseline_path else {
        return fail("missing --baseline <path>");
    };
    if pairs.is_empty() {
        return fail("no benches given (expected name=current.json arguments)");
    }
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(s) => s,
        Err(e) => return fail(&format!("cannot read baseline {baseline_path}: {e}")),
    };

    let mut failed = false;
    for (name, key, path) in &pairs {
        let current = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("  [FAIL] {name}: cannot read {path}: {e}");
                failed = true;
                continue;
            }
        };
        let Some(expected) = extract_scoped(&baseline, name, key) else {
            eprintln!("  [FAIL] {name}: no {key} in baseline {baseline_path}");
            failed = true;
            continue;
        };
        let Some(measured) = extract_number(&current, key) else {
            eprintln!("  [FAIL] {name}: no {key} in {path}");
            failed = true;
            continue;
        };
        let delta_pct = (measured - expected) / expected * 100.0;
        if delta_pct < -max_drop_pct {
            eprintln!(
                "  [FAIL] {name}: {key} {measured:.3} vs baseline {expected:.3} ({delta_pct:+.1}%, limit -{max_drop_pct:.0}%)"
            );
            failed = true;
        } else {
            println!(
                "  [ ok ] {name}: {key} {measured:.3} vs baseline {expected:.3} ({delta_pct:+.1}%)"
            );
            if delta_pct > max_drop_pct {
                println!("         improvement — consider refreshing bench/baseline.json");
            }
        }
    }
    if failed {
        return fail("a gated bench headline regressed past the limit");
    }
    println!("bench_gate: all benches within -{max_drop_pct:.0}% of baseline");
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASELINE: &str = r#"{
  "fig12_throughput": { "aggregate_gbps": 1.98 },
  "multi_tenant": { "aggregate_gbps": 2.05 }
}"#;

    #[test]
    fn extracts_top_level_numbers() {
        let json = "{\n  \"aggregate_gbps\": 9.274513,\n  \"other\": 1\n}";
        assert_eq!(extract_number(json, "aggregate_gbps"), Some(9.274513));
        assert_eq!(extract_number(json, "missing"), None);
    }

    #[test]
    fn extracts_scoped_numbers() {
        assert_eq!(
            extract_scoped(BASELINE, "fig12_throughput", "aggregate_gbps"),
            Some(1.98)
        );
        assert_eq!(
            extract_scoped(BASELINE, "multi_tenant", "aggregate_gbps"),
            Some(2.05)
        );
        assert_eq!(extract_scoped(BASELINE, "nope", "aggregate_gbps"), None);
    }

    #[test]
    fn scoped_lookup_does_not_leak_backwards() {
        // The scope anchors the search: a key *before* the scope is not
        // picked up.
        let json = r#"{"a": {"x": 1.0}, "b": {"x": 2.0}}"#;
        assert_eq!(extract_scoped(json, "b", "x"), Some(2.0));
    }

    #[test]
    fn scoped_lookup_skips_scope_names_quoted_in_strings() {
        // A string *value* equal to a bench name (a _comment-style
        // field) must not anchor the scope and capture the next object.
        let json = r#"{
  "headline": "multi_tenant",
  "fig12_throughput": { "aggregate_gbps": 1.98 },
  "multi_tenant": { "aggregate_gbps": 2.05 }
}"#;
        assert_eq!(
            extract_scoped(json, "multi_tenant", "aggregate_gbps"),
            Some(2.05)
        );
        assert_eq!(
            extract_scoped(json, "fig12_throughput", "aggregate_gbps"),
            Some(1.98)
        );
    }

    #[test]
    fn scoped_lookup_does_not_leak_forwards() {
        // A scope missing the key must not pick it up from the next
        // scope's object.
        let json = r#"{"a": {}, "b": {"x": 2.0}}"#;
        assert_eq!(extract_scoped(json, "a", "x"), None);
        assert_eq!(extract_scoped(json, "b", "x"), Some(2.0));
    }

    #[test]
    fn spec_parsing_defaults_to_aggregate_gbps() {
        assert_eq!(
            parse_spec("multi_tenant"),
            ("multi_tenant", "aggregate_gbps")
        );
        assert_eq!(
            parse_spec("service_load:sustained_rps"),
            ("service_load", "sustained_rps")
        );
    }

    #[test]
    fn handles_scientific_and_negative_numbers() {
        let json = r#"{"v": -1.5e-3}"#;
        assert_eq!(extract_number(json, "v"), Some(-0.0015));
    }
}
