//! Shared utilities for the experiment harness.
//!
//! Every table and figure of the paper's evaluation has a `harness =
//! false` bench target in this crate (run them all with `cargo bench -p
//! shredder-bench`, or one with `--bench fig12_throughput`). Each target
//! prints the paper's rows/series next to the reproduction's measured
//! values and finishes with shape checks (who wins, by what factor).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;

/// Prints an experiment header.
pub fn header(experiment: &str, description: &str) {
    println!();
    println!("==================================================================");
    println!("{experiment}: {description}");
    println!("==================================================================");
}

/// Prints a table of rows: a label column plus value columns.
pub fn table<R: Display>(columns: &[&str], rows: &[(String, Vec<R>)]) {
    print!("{:<28}", "");
    for c in columns {
        print!("{c:>18}");
    }
    println!();
    for (label, values) in rows {
        print!("{label:<28}");
        for v in values {
            print!("{v:>18}");
        }
        println!();
    }
}

/// Prints a single `name = value` result line.
pub fn result_line(name: &str, value: impl Display) {
    println!("  {name:<46} {value}");
}

/// A shape check: prints PASS/FAIL and panics on failure so `cargo
/// bench` surfaces broken reproductions.
///
/// # Panics
///
/// Panics if `ok` is false.
pub fn check(description: &str, ok: bool) {
    println!("  [{}] {description}", if ok { "PASS" } else { "FAIL" });
    assert!(ok, "shape check failed: {description}");
}

/// Formats a throughput in GB/s with 2 decimals.
pub fn gbps(bytes_per_sec: f64) -> String {
    format!("{:.2} GB/s", bytes_per_sec / 1e9)
}

/// Formats a duration in milliseconds with 2 decimals.
pub fn ms(d: shredder_des::Dur) -> String {
    format!("{:.2} ms", d.as_millis_f64())
}

/// Dumps a bench's headline JSON to the path named by the
/// `SHREDDER_BENCH_JSON` env var (no-op when unset). One of the three
/// env-var dump channels (`SHREDDER_BENCH_JSON`, `SHREDDER_FAULT_JSON`,
/// `SHREDDER_TRACE_JSON`) that share
/// [`shredder_telemetry::dump_json`]'s hard-error-on-write-failure
/// semantics: the CI bench gate (`bench_gate`) reads these dumps, so
/// it is better to fail here than have the gate later report a
/// confusing "cannot read" failure.
///
/// # Panics
///
/// Panics if the env var is set but the file cannot be written.
pub fn dump_bench_json(json: &str) {
    if let Some(path) = shredder_telemetry::dump_json("SHREDDER_BENCH_JSON", json) {
        println!("\n  perf trajectory written to {path}");
    }
}

/// Buffer-size sweep used by Figures 5, 6, 9, 11 and Table 2:
/// 16 MB … 256 MB.
pub fn paper_buffer_sizes() -> Vec<usize> {
    vec![16 << 20, 32 << 20, 64 << 20, 128 << 20, 256 << 20]
}

/// Returns the experiment data size: the paper normalizes Figures 5/9/11
/// to 1 GB of data; we run a quarter of it (shapes and normalized values
/// are size-invariant — checked by tests) and report per-GB numbers.
pub fn experiment_bytes() -> usize {
    std::env::var("SHREDDER_EXPERIMENT_MB")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(256)
        << 20
}

/// Scales a measured duration on `actual` bytes to the per-GB value the
/// paper reports.
pub fn per_gb(d: shredder_des::Dur, actual_bytes: usize) -> shredder_des::Dur {
    let scale = (1u64 << 30) as f64 / actual_bytes as f64;
    shredder_des::Dur::from_secs_f64(d.as_secs_f64() * scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use shredder_des::Dur;

    #[test]
    fn formatting_helpers() {
        assert_eq!(gbps(2.5e9), "2.50 GB/s");
        assert_eq!(ms(Dur::from_micros(1500)), "1.50 ms");
    }

    #[test]
    fn buffer_sweep_matches_paper() {
        let sizes = paper_buffer_sizes();
        assert_eq!(sizes.first(), Some(&(16 << 20)));
        assert_eq!(sizes.last(), Some(&(256 << 20)));
        assert_eq!(sizes.len(), 5);
    }

    #[test]
    fn per_gb_scaling() {
        let d = per_gb(Dur::from_millis(250), 256 << 20);
        assert_eq!(d, Dur::from_millis(1000));
    }

    #[test]
    #[should_panic(expected = "shape check failed")]
    fn failed_check_panics() {
        check("impossible", false);
    }
}
