//! Property-based tests: the backup pipeline conserves bytes and always
//! restores exactly.

use proptest::prelude::*;
use shredder_backup::{BackupConfig, BackupServer};
use shredder_core::{HostChunker, HostChunkerConfig};
use shredder_rabin::ChunkParams;

fn service() -> HostChunker {
    HostChunker::new(HostChunkerConfig {
        params: ChunkParams {
            min_size: 256,
            max_size: 4096,
            ..ChunkParams::paper().with_expected_size(1024)
        },
        ..HostChunkerConfig::optimized()
    })
}

fn config() -> BackupConfig {
    BackupConfig {
        buffer_size: 64 << 10,
        ..BackupConfig::paper()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every backed-up image restores byte-identical, and the report's
    /// byte accounting is conserved: new + dedup == total.
    #[test]
    fn restore_and_conservation(images in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..65536), 1..4)) {
        let svc = service();
        let mut server = BackupServer::new(config());
        for image in &images {
            let report = server.backup_image(image, &svc).unwrap();
            prop_assert_eq!(report.new_bytes + report.dedup_bytes, report.image_bytes);
            let restored = server.site().restore(report.image_id);
            prop_assert_eq!(restored.as_deref(), Some(image.as_slice()));
        }
        // Physical storage never exceeds the logical total.
        prop_assert!(server.site().physical_bytes() <= images.iter().map(|i| i.len() as u64).sum());
    }

    /// Backing up the same image twice ships nothing the second time.
    #[test]
    fn idempotent_second_backup(image in proptest::collection::vec(any::<u8>(), 0..65536)) {
        let svc = service();
        let mut server = BackupServer::new(config());
        let first = server.backup_image(&image, &svc).unwrap();
        let second = server.backup_image(&image, &svc).unwrap();
        prop_assert_eq!(second.new_chunks, 0);
        prop_assert_eq!(second.new_bytes, 0);
        prop_assert_eq!(first.chunks, second.chunks);
        // The second pass is never slower than the first (nothing to ship).
        prop_assert!(second.makespan <= first.makespan);
    }

    /// Concatenating a prefix of an already-backed-up image dedups at
    /// least the shared chunk content.
    #[test]
    fn prefix_sharing_dedups(base in proptest::collection::vec(any::<u8>(), 8192..65536), extra in proptest::collection::vec(any::<u8>(), 0..8192)) {
        let svc = service();
        let mut server = BackupServer::new(config());
        server.backup_image(&base, &svc).unwrap();
        let mut extended = base.clone();
        extended.extend_from_slice(&extra);
        let report = server.backup_image(&extended, &svc).unwrap();
        // All but the tail chunks (perturbed near the old end) dedup.
        prop_assert!(
            report.dedup_bytes as usize + extra.len() + 2 * 4096 >= base.len(),
            "dedup {} of {} base bytes",
            report.dedup_bytes,
            base.len()
        );
    }
}
