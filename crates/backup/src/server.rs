//! The backup server pipeline (§7.2, Figure 17).
//!
//! Per image snapshot: Reader ingests at the 10 Gbps source rate →
//! Shredder forms chunks → the Store thread hashes each chunk → hashes
//! are batched into the index-lookup queue → the lookup thread decides
//! ship-vs-pointer → new chunks travel to the backup site. Each arrow is
//! a pipeline stage on the discrete-event simulator; the measured backup
//! bandwidth (Figure 18) is `image bytes / makespan`.
//!
//! The hash → lookup → ship tail is a [`DedupSink`] graph: its stages
//! execute *inside* the chunking service's simulation (the shared
//! engine simulation for [`Shredder`], a staged pipeline behind the
//! measured chunking rate otherwise), so fingerprinting genuinely
//! overlaps — and backpressures — chunking instead of being
//! post-processed with analytic formulas.

use std::cell::{Ref, RefCell};
use std::rc::Rc;

use serde::{Deserialize, Serialize};
use shredder_core::{
    AdmissionControl, ChunkError, ChunkRequest, ChunkVerdict, ChunkingService, DedupSink,
    DedupSinkConfig, EngineReport, ServiceReport, Shredder, ShredderEngine, ShredderService,
    SinkPipelineHints, SliceSource, TenantClass, Workload,
};
use shredder_des::Dur;

use crate::config::BackupConfig;
use crate::index::DedupIndex;
use crate::site::BackupSite;

/// Outcome of backing up one image.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackupReport {
    /// Image id at the backup site (for restore).
    pub image_id: usize,
    /// Image size in bytes.
    pub image_bytes: u64,
    /// Chunks formed.
    pub chunks: usize,
    /// Chunks not present at the site (shipped).
    pub new_chunks: usize,
    /// Bytes shipped (new chunk payloads).
    pub new_bytes: u64,
    /// Bytes deduplicated (pointers only).
    pub dedup_bytes: u64,
    /// Simulated end-to-end time for this image.
    pub makespan: Dur,
    /// The chunking engine's own sustained throughput, bytes/s.
    pub chunking_bw: f64,
}

impl BackupReport {
    /// Backup bandwidth in Gbps (the Figure 18 y-axis).
    pub fn bandwidth_gbps(&self) -> f64 {
        if self.makespan.is_zero() {
            return 0.0;
        }
        self.image_bytes as f64 * 8.0 / self.makespan.as_secs_f64() / 1e9
    }

    /// Fraction of image bytes that deduplicated.
    pub fn dedup_fraction(&self) -> f64 {
        if self.image_bytes == 0 {
            return 0.0;
        }
        self.dedup_bytes as f64 / self.image_bytes as f64
    }
}

/// Outcome of backing up several site streams in one engine batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchBackupReport {
    /// Per-image reports, in submission order.
    pub reports: Vec<BackupReport>,
    /// The shared chunking engine's aggregate report (per-site makespan,
    /// queueing, aggregate GB/s).
    pub engine: EngineReport,
    /// Cumulative dedup-index lookups on the server after this batch.
    pub index_lookups: u64,
    /// Cumulative dedup-index hits (duplicates found) after this batch.
    pub index_hits: u64,
}

/// Outcome of serving a stream of backup requests through the online
/// service frontend ([`BackupServer::backup_service`]).
#[derive(Debug)]
pub struct ServiceBackupReport {
    /// Per-image outcomes, in submission order. Shed requests carry
    /// [`ChunkError::Overloaded`]; nothing of theirs was hashed,
    /// deduplicated or stored.
    pub reports: Vec<Result<BackupReport, ChunkError>>,
    /// The shared engine report;
    /// [`EngineReport::service`] holds the offered/achieved load, the
    /// admission queue-depth timeline and per-class latency
    /// percentiles.
    pub engine: EngineReport,
    /// Cumulative dedup-index lookups on the server after this run.
    pub index_lookups: u64,
    /// Cumulative dedup-index hits after this run.
    pub index_hits: u64,
}

impl ServiceBackupReport {
    /// The service-level report (offered vs. achieved req/s and Gbps,
    /// queue depth, latency percentiles).
    pub fn service(&self) -> &ServiceReport {
        self.engine
            .service
            .as_ref()
            .expect("service runs always carry a ServiceReport")
    }

    /// Images that completed.
    pub fn completed(&self) -> usize {
        self.reports.iter().filter(|r| r.is_ok()).count()
    }

    /// Images shed by admission control.
    pub fn shed(&self) -> usize {
        self.reports.len() - self.completed()
    }
}

impl BatchBackupReport {
    /// Total image bytes across the batch.
    pub fn total_bytes(&self) -> u64 {
        self.reports.iter().map(|r| r.image_bytes).sum()
    }

    /// Aggregate backup bandwidth of the batch in Gbps: total bytes over
    /// the shared engine makespan. Every stage — chunking *and* the
    /// hash/dedup/ship sink graph — runs in the one shared simulation,
    /// so the sites' pipelines genuinely overlap and the batch finishes
    /// when the last sink stage drains.
    pub fn aggregate_bandwidth_gbps(&self) -> f64 {
        if self.engine.makespan.is_zero() {
            return 0.0;
        }
        self.total_bytes() as f64 * 8.0 / self.engine.makespan.as_secs_f64() / 1e9
    }

    /// Fraction of index lookups that found a duplicate, in `[0, 1]` —
    /// the server-side dedup effectiveness (cumulative over the
    /// server's lifetime, like the counters it summarizes).
    pub fn index_hit_rate(&self) -> f64 {
        if self.index_lookups == 0 {
            return 0.0;
        }
        self.index_hits as f64 / self.index_lookups as f64
    }
}

/// The backup server: index + connection to the backup site.
///
/// # Examples
///
/// ```
/// use shredder_backup::{BackupConfig, BackupServer};
/// use shredder_core::{HostChunker, HostChunkerConfig};
/// use shredder_rabin::ChunkParams;
///
/// let mut server = BackupServer::new(BackupConfig::paper());
/// let service = HostChunker::new(HostChunkerConfig {
///     params: ChunkParams::backup(),
///     ..HostChunkerConfig::optimized()
/// });
/// let image = shredder_workloads::compressible_bytes(512 << 10, 128, 3);
///
/// let first = server.backup_image(&image, &service).unwrap();
/// let second = server.backup_image(&image, &service).unwrap();
/// // An identical snapshot deduplicates (almost) entirely.
/// assert!(second.dedup_fraction() > 0.99);
/// assert!(second.new_bytes < first.new_bytes);
/// ```
#[derive(Debug)]
pub struct BackupServer {
    config: BackupConfig,
    /// Shared with the in-simulation dedup stage of every sink this
    /// server spawns (single-threaded simulation, hence `RefCell`).
    index: Rc<RefCell<DedupIndex>>,
    site: BackupSite,
}

impl BackupServer {
    /// Creates a server with an empty index and site.
    pub fn new(config: BackupConfig) -> Self {
        BackupServer::with_store_config(config, shredder_store::StoreConfig::default())
    }

    /// Creates a server whose site store uses the given configuration
    /// (segment size, GC compaction threshold, retention).
    pub fn with_store_config(config: BackupConfig, store: shredder_store::StoreConfig) -> Self {
        BackupServer {
            config,
            index: Rc::new(RefCell::new(DedupIndex::new())),
            site: BackupSite::with_store_config(store),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &BackupConfig {
        &self.config
    }

    /// The dedup index.
    pub fn index(&self) -> Ref<'_, DedupIndex> {
        self.index.borrow()
    }

    /// The backup site (restore + verification).
    pub fn site(&self) -> &BackupSite {
        &self.site
    }

    /// The server's consumer graph configuration: hash → dedup → ship at
    /// the §7.3 stage rates, batched at the server's buffer size.
    ///
    /// The per-site ingest cap is *not* part of the sink: the legacy
    /// single-image path ([`backup_image`](Self::backup_image)) passes
    /// it explicitly through
    /// [`chunk_stream_sink_capped`](ChunkingService::chunk_stream_sink_capped),
    /// and the request path ([`backup_service`](Self::backup_service))
    /// models it as a [`TenantClass`] bandwidth limit.
    fn sink_config(&self) -> DedupSinkConfig {
        DedupSinkConfig {
            hash_bw: self.config.hash_bw,
            index_lookup: self.config.index_lookup,
            index_insert: self.config.index_insert,
            ship_bw: self.config.ship_bw,
            pointer_bytes: self.config.pointer_bytes,
            ship_chunk_overhead: self.config.ship_chunk_overhead,
            hints: SinkPipelineHints {
                granularity: self.config.buffer_size,
                depth: self.config.pipeline_depth,
            },
        }
    }

    /// Backs up one image snapshot through the given chunking engine:
    /// the hash/dedup/ship tail runs as a [`DedupSink`] inside the
    /// service's simulation.
    ///
    /// # Errors
    ///
    /// [`ChunkError`] if the chunking service fails; nothing is stored
    /// in that case.
    pub fn backup_image(
        &mut self,
        image: &[u8],
        service: &dyn ChunkingService,
    ) -> Result<BackupReport, ChunkError> {
        let mut sink = DedupSink::new(self.sink_config(), self.index.clone());
        // The §7.3 image source feeds the chunker at the ingest rate.
        let outcome =
            service.chunk_stream_sink_capped(image, &mut sink, Some(self.config.ingest_bw))?;
        Ok(self.commit_image(
            image,
            &sink.into_verdicts(),
            outcome.report.makespan(),
            outcome.makespan,
        ))
    }

    /// Backs up several site streams in **one batch**: every image is a
    /// sink session on one shared multi-stream engine (§7.2's server
    /// handling many remote sites). Chunking, fingerprinting, index
    /// lookup and shipping for all sites contend for and overlap on the
    /// same simulated hardware; the returned [`EngineReport`] carries
    /// per-stage (chunk/hash/dedup/ship) busy and queue-wait times.
    ///
    /// # Errors
    ///
    /// [`ChunkError`] if the engine fails; no image is stored in that
    /// case.
    pub fn backup_batch(
        &mut self,
        images: &[&[u8]],
        shredder: &Shredder,
    ) -> Result<BatchBackupReport, ChunkError> {
        // The engine's reader models the image source here, so cap it at
        // the §7.3 ingest rate.
        let mut cfg = shredder.config().clone();
        cfg.reader_bandwidth = cfg.reader_bandwidth.min(self.config.ingest_bw);

        let mut sinks: Vec<DedupSink> = images
            .iter()
            .map(|_| DedupSink::new(self.sink_config(), self.index.clone()))
            .collect();
        let outcome = {
            let mut engine = ShredderEngine::new(cfg);
            for (i, (image, sink)) in images.iter().zip(sinks.iter_mut()).enumerate() {
                engine.open_sink_session(format!("site-{i}"), 1, SliceSource::new(image), sink);
            }
            engine.run()?
        };

        let mut reports = Vec::with_capacity(images.len());
        for ((image, sink), per) in images.iter().zip(sinks).zip(&outcome.report.sessions) {
            // Chunk-only duration of this session alone: first admission
            // to the last buffer leaving the Store thread (the sink
            // stages extend the session makespan beyond that).
            let chunking_time = per
                .timeline
                .last()
                .map(|t| t.store_end.saturating_since(per.first_admit))
                .unwrap_or(Dur::ZERO);
            reports.push(self.commit_image(
                image,
                &sink.into_verdicts(),
                chunking_time,
                per.makespan,
            ));
        }
        Ok(BatchBackupReport {
            reports,
            engine: outcome.report,
            index_lookups: self.index.borrow().lookups(),
            index_hits: self.index.borrow().hits(),
        })
    }

    /// Serves a stream of backup requests through the **online service
    /// frontend**: images arrive inside the simulation according to
    /// `workload` (Poisson open loop, closed loop, trace replay, or
    /// batch), pass through the bounded admission queue of `control`,
    /// and may be shed with [`ChunkError::Overloaded`] under overload.
    ///
    /// The per-site ingest cap (§7.3's 10 Gbps image source) is modeled
    /// as a [`TenantClass`] bandwidth limit on the `"site"` class — the
    /// first-class form of the explicit per-call cap the legacy paths
    /// ([`backup_image`](Self::backup_image),
    /// [`backup_batch`](Self::backup_batch)) thread through by hand.
    ///
    /// A shed request touches nothing: its image is not hashed, its
    /// fingerprints never enter the index, and the site stores no
    /// payloads for it — accepted images' chunk streams are
    /// bit-identical to a run without the shed traffic.
    ///
    /// # Errors
    ///
    /// [`ChunkError`] if the engine rejects the configuration or a
    /// kernel launch fails; no image is stored in that case. Per-image
    /// `Overloaded` rejections come back inside the report instead.
    pub fn backup_service(
        &mut self,
        images: &[&[u8]],
        shredder: &Shredder,
        workload: &Workload,
        control: AdmissionControl,
    ) -> Result<ServiceBackupReport, ChunkError> {
        let mut sinks: Vec<DedupSink> = images
            .iter()
            .map(|_| DedupSink::new(self.sink_config(), self.index.clone()))
            .collect();
        let outcome = {
            let mut service =
                ShredderService::new(shredder.config().clone()).with_admission(control);
            service.define_class(TenantClass::new("site").with_ingest_bw(self.config.ingest_bw));
            for (i, (image, sink)) in images.iter().zip(sinks.iter_mut()).enumerate() {
                service.submit(
                    ChunkRequest::new(SliceSource::new(image))
                        .named(format!("site-{i}"))
                        .with_class("site")
                        .with_sink(sink),
                );
            }
            service.run(workload)?
        };

        // Commit completed images in *dispatch* order — the order their
        // sinks deduplicated against the shared index — so a pointer
        // never precedes the chunk it references.
        let service_report = outcome
            .report
            .service
            .as_ref()
            .expect("service runs always carry a ServiceReport");
        let mut admitted: Vec<usize> = service_report
            .requests
            .iter()
            .filter(|r| r.done.is_some())
            .map(|r| r.id)
            .collect();
        admitted.sort_by_key(|&i| (service_report.requests[i].admit, i));

        let mut sinks: Vec<Option<DedupSink>> = sinks.into_iter().map(Some).collect();
        let mut reports: Vec<Result<BackupReport, ChunkError>> = outcome
            .requests
            .iter()
            .map(|r| match &r.outcome {
                Ok(_) => Err(ChunkError::InvalidConfig("pending commit".into())),
                Err(e) => Err(e.clone()),
            })
            .collect();
        for &i in &admitted {
            let sink = sinks[i].take().expect("each request commits once");
            let per = &outcome.report.sessions[i];
            let chunking_time = per
                .timeline
                .last()
                .map(|t| t.store_end.saturating_since(per.first_admit))
                .unwrap_or(Dur::ZERO);
            let latency = service_report.requests[i].latency().unwrap_or(per.makespan);
            reports[i] =
                Ok(self.commit_image(images[i], &sink.into_verdicts(), chunking_time, latency));
        }

        Ok(ServiceBackupReport {
            reports,
            engine: outcome.report,
            index_lookups: self.index.borrow().lookups(),
            index_hits: self.index.borrow().hits(),
        })
    }

    /// Expires every backed-up image up to and including `through` (the
    /// retention cut a nightly-backup deployment applies). The chunk
    /// payloads stay resident until
    /// [`collect_garbage`](Self::collect_garbage) reclaims them.
    /// Returns how many images expired.
    pub fn expire_images(&mut self, through: usize) -> usize {
        self.site.expire_images(through)
    }

    /// Garbage-collects the backup site: frees chunks no live image
    /// references, compacts mostly-dead segments, **and evicts the
    /// freed fingerprints from the dedup index** — without the
    /// eviction, a later backup of similar data would register pointers
    /// to chunks the site no longer holds.
    pub fn collect_garbage(&mut self) -> shredder_store::GcReport {
        let gc = self.site.gc();
        self.index.borrow_mut().evict(&gc.freed_digests);
        gc
    }

    /// Applies the sink's in-simulation decisions to the site: duplicate
    /// chunks register pointers, new chunks store payloads.
    fn commit_image(
        &mut self,
        image: &[u8],
        verdicts: &[ChunkVerdict],
        chunking_time: Dur,
        makespan: Dur,
    ) -> BackupReport {
        let chunking_bw = if chunking_time.is_zero() {
            f64::INFINITY
        } else {
            image.len() as f64 / chunking_time.as_secs_f64()
        };

        let image_id = self.site.begin_image();
        let mut new_chunks = 0usize;
        let mut new_bytes = 0u64;
        let mut dedup_bytes = 0u64;
        for v in verdicts {
            if v.duplicate {
                dedup_bytes += v.chunk.len as u64;
                self.site.receive_pointer(image_id, v.digest, v.chunk.len);
            } else {
                new_chunks += 1;
                new_bytes += v.chunk.len as u64;
                // Range-based commit: the chunk is an (offset, len) view
                // of the image; the only copy is into the segment log.
                self.site
                    .receive_chunk_slice(image_id, v.digest, v.chunk.slice(image));
            }
        }

        BackupReport {
            image_id,
            image_bytes: image.len() as u64,
            chunks: verdicts.len(),
            new_chunks,
            new_bytes,
            dedup_bytes,
            makespan,
            chunking_bw,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shredder_core::{HostChunker, HostChunkerConfig, ShredderConfig};
    use shredder_rabin::ChunkParams;
    use shredder_workloads::{MasterImage, SimilarityTable};

    fn cpu_service() -> HostChunker {
        HostChunker::new(HostChunkerConfig {
            params: ChunkParams::backup(),
            ..HostChunkerConfig::optimized()
        })
    }

    fn gpu_service() -> Shredder {
        Shredder::new(
            ShredderConfig::gpu_streams_memory()
                .with_params(ChunkParams::backup())
                .with_buffer_size(256 << 10),
        )
    }

    fn small_config() -> BackupConfig {
        BackupConfig {
            buffer_size: 256 << 10,
            ..BackupConfig::paper()
        }
    }

    #[test]
    fn roundtrip_restores_image() {
        let mut server = BackupServer::new(small_config());
        let image = shredder_workloads::random_bytes(1 << 20, 5);
        let report = server.backup_image(&image, &cpu_service()).unwrap();
        assert_eq!(server.site().restore(report.image_id).unwrap(), image);
        assert_eq!(report.image_bytes, 1 << 20);
        assert!(report.chunks > 10);
    }

    #[test]
    fn identical_snapshot_dedups_fully() {
        let mut server = BackupServer::new(small_config());
        let image = shredder_workloads::random_bytes(1 << 20, 6);
        let first = server.backup_image(&image, &cpu_service()).unwrap();
        let second = server.backup_image(&image, &cpu_service()).unwrap();
        assert_eq!(first.new_chunks, first.chunks);
        assert_eq!(second.new_chunks, 0);
        assert!((second.dedup_fraction() - 1.0).abs() < 1e-9);
        // Both restore correctly.
        assert_eq!(server.site().restore(0).unwrap(), image);
        assert_eq!(server.site().restore(1).unwrap(), image);
    }

    #[test]
    fn derived_snapshots_dedup_proportionally() {
        let mut server = BackupServer::new(small_config());
        let master = MasterImage::synthesize(2 << 20, 16 << 10, 7);
        let svc = cpu_service();
        server.backup_image(master.data(), &svc).unwrap();

        let table = SimilarityTable::uniform(master.segments(), 0.10);
        let snap = master.derive(&table, 3);
        let report = server.backup_image(&snap, &svc).unwrap();
        assert_eq!(server.site().restore(report.image_id).unwrap(), snap);
        assert!(
            report.dedup_fraction() > 0.75,
            "dedup {}",
            report.dedup_fraction()
        );
    }

    #[test]
    fn bandwidth_declines_with_dissimilarity() {
        // The Figure 18 monotone shape, at small scale.
        let master = MasterImage::synthesize(2 << 20, 16 << 10, 8);
        let svc = cpu_service();
        let mut bw = Vec::new();
        for p in [0.05, 0.25] {
            let mut server = BackupServer::new(small_config());
            server.backup_image(master.data(), &svc).unwrap();
            let table = SimilarityTable::uniform(master.segments(), p);
            let snap = master.derive(&table, 11);
            let report = server.backup_image(&snap, &svc).unwrap();
            bw.push(report.bandwidth_gbps());
        }
        assert!(bw[0] >= bw[1], "bandwidth rose with dissimilarity: {bw:?}");
    }

    #[test]
    fn empty_image() {
        let mut server = BackupServer::new(small_config());
        let report = server.backup_image(&[], &cpu_service()).unwrap();
        assert_eq!(report.chunks, 0);
        assert_eq!(report.bandwidth_gbps(), 0.0);
        assert_eq!(
            server.site().restore(report.image_id).unwrap(),
            Vec::<u8>::new()
        );
    }

    #[test]
    fn batch_backup_restores_and_matches_sequential_dedup() {
        let master = MasterImage::synthesize(2 << 20, 64 << 10, 21);
        let table = SimilarityTable::uniform(master.segments(), 0.2);
        let snaps: Vec<Vec<u8>> = (1..=3).map(|n| master.derive(&table, n)).collect();
        let images: Vec<&[u8]> = snaps.iter().map(|s| s.as_slice()).collect();
        let gpu = gpu_service();

        // One batch: all three site streams through one shared engine.
        let mut batch_server = BackupServer::new(small_config());
        let batch = batch_server.backup_batch(&images, &gpu).unwrap();
        assert_eq!(batch.reports.len(), 3);
        assert_eq!(batch.engine.sessions.len(), 3);
        for (report, snap) in batch.reports.iter().zip(&snaps) {
            assert_eq!(batch_server.site().restore(report.image_id).unwrap(), *snap);
        }

        // Same images sequentially: identical chunking -> identical
        // dedup decisions.
        let mut seq_server = BackupServer::new(small_config());
        for (report, snap) in batch.reports.iter().zip(&snaps) {
            let seq = seq_server.backup_image(snap, &gpu).unwrap();
            assert_eq!(report.chunks, seq.chunks);
            assert_eq!(report.new_chunks, seq.new_chunks);
            assert_eq!(report.new_bytes, seq.new_bytes);
        }
        assert_eq!(
            batch.total_bytes(),
            snaps.iter().map(|s| s.len() as u64).sum()
        );
        assert!(batch.aggregate_bandwidth_gbps() > 0.0);
    }

    #[test]
    fn empty_batch_is_fine() {
        let mut server = BackupServer::new(small_config());
        let batch = server.backup_batch(&[], &gpu_service()).unwrap();
        assert!(batch.reports.is_empty());
        assert_eq!(batch.aggregate_bandwidth_gbps(), 0.0);
        assert_eq!(batch.index_hit_rate(), 0.0);
    }

    #[test]
    fn batch_report_surfaces_index_counters() {
        let mut server = BackupServer::new(small_config());
        let image = shredder_workloads::random_bytes(1 << 20, 31);
        let first = server
            .backup_batch(&[image.as_slice()], &gpu_service())
            .unwrap();
        assert!(first.index_lookups > 0);
        assert_eq!(first.index_hits, 0, "fresh site holds nothing");
        // The same image again: every lookup hits.
        let second = server
            .backup_batch(&[image.as_slice()], &gpu_service())
            .unwrap();
        assert_eq!(second.index_lookups, 2 * first.index_lookups);
        assert_eq!(second.index_hits, first.index_lookups);
        assert!((second.index_hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn gc_after_expiry_reclaims_and_keeps_index_consistent() {
        // Small segments so compaction (not just the sweep) is exercised:
        // with multi-MB segments the dead bytes would stay resident in
        // the open segment until it seals.
        let mut server = BackupServer::with_store_config(
            small_config(),
            shredder_store::StoreConfig {
                segment_bytes: 64 << 10,
                gc_threshold: 0.5,
                retention: None,
            },
        );
        let svc = cpu_service();
        let master = MasterImage::synthesize(1 << 20, 16 << 10, 41);
        let table = SimilarityTable::uniform(master.segments(), 0.3);
        let old = master.derive(&table, 1);
        let new = master.derive(&table, 2);

        let old_report = server.backup_image(&old, &svc).unwrap();
        let new_report = server.backup_image(&new, &svc).unwrap();
        let physical_before = server.site().physical_bytes();

        assert_eq!(server.expire_images(old_report.image_id), 1);
        let gc = server.collect_garbage();
        assert!(gc.freed_chunks > 0, "old image had unique chunks");
        assert!(server.site().physical_bytes() < physical_before);
        // The live image is untouched and fully verified.
        assert_eq!(server.site().restore(new_report.image_id).unwrap(), new);
        // Freed fingerprints left the index: re-backing-up the expired
        // image ships its unique chunks again and restores correctly.
        let again = server.backup_image(&old, &svc).unwrap();
        assert!(again.new_chunks > 0, "GC'd chunks must re-ship");
        assert_eq!(server.site().restore(again.image_id).unwrap(), old);
    }

    #[test]
    fn backup_service_poisson_matches_batch_dedup_and_reports_latency() {
        use shredder_core::{AdmissionControl, Workload};

        let master = MasterImage::synthesize(1 << 20, 32 << 10, 51);
        let table = SimilarityTable::uniform(master.segments(), 0.2);
        let snaps: Vec<Vec<u8>> = (1..=3).map(|n| master.derive(&table, n)).collect();
        let images: Vec<&[u8]> = snaps.iter().map(|s| s.as_slice()).collect();
        let gpu = gpu_service();

        // Gentle open-loop arrivals with FIFO admission: everything
        // completes, and the dedup decisions match the batch path
        // (identical chunk boundaries, identical index sequence).
        let mut svc_server = BackupServer::new(small_config());
        let svc = svc_server
            .backup_service(
                &images,
                &gpu,
                &Workload::poisson(50.0, 7),
                AdmissionControl::fifo(1),
            )
            .unwrap();
        assert_eq!(svc.completed(), 3);
        assert_eq!(svc.shed(), 0);
        let report = svc.service();
        assert_eq!(report.completed, 3);
        assert!(report.p99() > Dur::ZERO);
        assert!(report.class("site").is_some());

        let mut batch_server = BackupServer::new(small_config());
        let batch = batch_server.backup_batch(&images, &gpu).unwrap();
        for (s, b) in svc.reports.iter().zip(&batch.reports) {
            let s = s.as_ref().unwrap();
            assert_eq!(s.chunks, b.chunks);
            assert_eq!(s.new_chunks, b.new_chunks);
            assert_eq!(s.new_bytes, b.new_bytes);
        }
        // Every image restores bit-identically.
        for (r, snap) in svc.reports.iter().zip(&snaps) {
            let r = r.as_ref().unwrap();
            assert_eq!(svc_server.site().restore(r.image_id).unwrap(), *snap);
        }
    }

    #[test]
    fn backup_service_sheds_under_overload_without_corrupting_accepted_images() {
        use shredder_core::{AdmissionControl, ChunkError, Workload};

        let images_data: Vec<Vec<u8>> = (0..6u64)
            .map(|s| shredder_workloads::random_bytes(1 << 20, 60 + s))
            .collect();
        let images: Vec<&[u8]> = images_data.iter().map(|s| s.as_slice()).collect();
        let gpu = gpu_service();

        // A hard queue bound under a burst: some images must shed.
        let mut server = BackupServer::new(small_config());
        let control = AdmissionControl::fifo(1).with_queue_depth(1);
        let svc = server
            .backup_service(&images, &gpu, &Workload::Batch, control)
            .unwrap();
        assert!(svc.shed() > 0, "burst into depth-1 queue must shed");
        assert!(svc.completed() > 0);
        for r in &svc.reports {
            if let Err(e) = r {
                assert!(matches!(e, ChunkError::Overloaded { .. }), "{e:?}");
            }
        }

        // Accepted images match a run containing only them: the shed
        // traffic left no trace in the index or the site.
        let accepted: Vec<&[u8]> = svc
            .reports
            .iter()
            .zip(&images)
            .filter(|(r, _)| r.is_ok())
            .map(|(_, img)| *img)
            .collect();
        let mut clean = BackupServer::new(small_config());
        let clean_batch = clean.backup_batch(&accepted, &gpu).unwrap();
        let kept: Vec<&BackupReport> = svc.reports.iter().filter_map(|r| r.as_ref().ok()).collect();
        for (a, b) in kept.iter().zip(&clean_batch.reports) {
            assert_eq!(a.chunks, b.chunks);
            assert_eq!(
                a.new_chunks, b.new_chunks,
                "shed requests polluted the index"
            );
            assert_eq!(a.new_bytes, b.new_bytes);
        }
        assert_eq!(svc.index_lookups, clean_batch.index_lookups);
    }

    #[test]
    fn cpu_backup_bandwidth_is_chunking_bound() {
        // Pthreads-CPU sits near its 0.4 GB/s ≈ 3.2 Gbps chunking rate
        // (the flat line of Figure 18). Small buffers so the 8 MB image
        // actually pipelines.
        let mut server = BackupServer::new(small_config());
        let image = shredder_workloads::random_bytes(8 << 20, 9);
        let report = server.backup_image(&image, &cpu_service()).unwrap();
        let gbps = report.bandwidth_gbps();
        assert!(gbps > 2.0 && gbps < 4.0, "{gbps} Gbps");
    }
}
