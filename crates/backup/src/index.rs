//! The dedup index on the backup server.
//!
//! Maps chunk fingerprints to presence at the backup site (§7.2: "a
//! lookup thread picks up the enqueued chunk fingerprints and looks up
//! in the index whether a particular chunk needs to be backed up or is
//! already present"). Sharded by a fast FNV prefix internally, as a real
//! in-memory index would be; the collision-resistant identity is the
//! full SHA-256 digest.

use std::collections::HashMap;

use shredder_hash::{fnv1a_64, Digest};

/// The fingerprint index.
///
/// # Examples
///
/// ```
/// use shredder_backup::DedupIndex;
/// use shredder_hash::sha256;
///
/// let mut index = DedupIndex::new();
/// let d = sha256(b"chunk");
/// assert!(!index.contains(&d));
/// assert!(index.insert(d));
/// assert!(index.contains(&d));
/// assert!(!index.insert(d)); // already present
/// ```
#[derive(Debug, Clone, Default)]
pub struct DedupIndex {
    shards: Vec<HashMap<Digest, ()>>,
    lookups: u64,
    hits: u64,
}

const SHARDS: usize = 64;

impl DedupIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        DedupIndex {
            shards: vec![HashMap::new(); SHARDS],
            lookups: 0,
            hits: 0,
        }
    }

    fn shard(&self, digest: &Digest) -> usize {
        (fnv1a_64(&digest.0[..8]) as usize) % SHARDS
    }

    /// True if the fingerprint is indexed. Counts a lookup.
    pub fn lookup(&mut self, digest: &Digest) -> bool {
        self.lookups += 1;
        let present = self.shards[self.shard(digest)].contains_key(digest);
        if present {
            self.hits += 1;
        }
        present
    }

    /// Non-counting presence check.
    pub fn contains(&self, digest: &Digest) -> bool {
        self.shards[self.shard(digest)].contains_key(digest)
    }

    /// Inserts a fingerprint; returns `true` if it was new.
    pub fn insert(&mut self, digest: Digest) -> bool {
        let shard = self.shard(&digest);
        self.shards[shard].insert(digest, ()).is_none()
    }

    /// Distinct fingerprints indexed.
    pub fn len(&self) -> usize {
        self.shards.iter().map(HashMap::len).sum()
    }

    /// True if nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups performed.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Lookup hits (duplicates found).
    pub fn hits(&self) -> u64 {
        self.hits
    }
}

/// The index is usable as a [`DedupStage`](shredder_core::DedupStage)
/// backing store, so the backup server's sink graph deduplicates
/// against it from inside the simulation.
impl shredder_core::FingerprintIndex for DedupIndex {
    fn lookup(&mut self, digest: &Digest) -> bool {
        DedupIndex::lookup(self, digest)
    }

    fn insert(&mut self, digest: Digest) -> bool {
        DedupIndex::insert(self, digest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shredder_hash::sha256;

    #[test]
    fn insert_lookup_cycle() {
        let mut idx = DedupIndex::new();
        let a = sha256(b"a");
        let b = sha256(b"b");
        assert!(!idx.lookup(&a));
        idx.insert(a);
        assert!(idx.lookup(&a));
        assert!(!idx.lookup(&b));
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.lookups(), 3);
        assert_eq!(idx.hits(), 1);
    }

    #[test]
    fn many_digests_spread_over_shards() {
        let mut idx = DedupIndex::new();
        for i in 0..10_000u32 {
            idx.insert(sha256(&i.to_le_bytes()));
        }
        assert_eq!(idx.len(), 10_000);
        // No shard should hold more than 5× the average.
        let max = idx.shards.iter().map(HashMap::len).max().unwrap();
        assert!(max < 5 * (10_000 / SHARDS), "max shard {max}");
    }

    #[test]
    fn reinsert_is_idempotent() {
        let mut idx = DedupIndex::new();
        let d = sha256(b"x");
        assert!(idx.insert(d));
        assert!(!idx.insert(d));
        assert_eq!(idx.len(), 1);
    }
}
