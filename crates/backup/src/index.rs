//! The dedup index on the backup server.
//!
//! Maps chunk fingerprints to presence at the backup site (§7.2: "a
//! lookup thread picks up the enqueued chunk fingerprints and looks up
//! in the index whether a particular chunk needs to be backed up or is
//! already present"). Since the store crate landed this is a re-export:
//! the FNV-prefix sharding previously copy-pasted here lives once in
//! [`shredder_store::ChunkIndex`], and the same [`DedupIndex`] type
//! backs the in-simulation
//! [`DedupStage`](shredder_core::DedupStage) (the `FingerprintIndex`
//! impl lives in `shredder-core`).
//!
//! The index also grew a GC hook: when the site's store frees chunks,
//! [`DedupIndex::evict`] must drop their fingerprints, or later backups
//! would register pointers to chunks nobody holds
//! ([`BackupServer::collect_garbage`](crate::BackupServer::collect_garbage)
//! wires this up).

pub use shredder_store::DedupIndex;

#[cfg(test)]
mod tests {
    use super::*;
    use shredder_hash::sha256;

    #[test]
    fn insert_lookup_cycle() {
        let mut idx = DedupIndex::new();
        let a = sha256(b"a");
        let b = sha256(b"b");
        assert!(!idx.lookup(&a));
        idx.insert(a);
        assert!(idx.lookup(&a));
        assert!(!idx.lookup(&b));
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.lookups(), 3);
        assert_eq!(idx.hits(), 1);
    }

    #[test]
    fn many_digests_spread_over_shards() {
        let mut idx = DedupIndex::new();
        for i in 0..10_000u32 {
            idx.insert(sha256(&i.to_le_bytes()));
        }
        assert_eq!(idx.len(), 10_000);
        // No shard should hold more than 5× the average (64 shards).
        let max = idx.max_shard_len();
        assert!(max < 5 * (10_000 / 64), "max shard {max}");
    }

    #[test]
    fn reinsert_is_idempotent() {
        let mut idx = DedupIndex::new();
        let d = sha256(b"x");
        assert!(idx.insert(d));
        assert!(!idx.insert(d));
        assert_eq!(idx.len(), 1);
    }
}
