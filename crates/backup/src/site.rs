//! The backup site: the receiving Shredder agent (§7.2).
//!
//! "We deploy an additional Shredder agent residing on the backup site,
//! which receives all the chunks and pointers and recreates the original
//! uncompressed data."

use bytes::Bytes;
use shredder_hash::{sha256, Digest};
use shredder_hdfs::ChunkStore;

/// A reference in an image manifest: either a pointer to an existing
/// chunk or (logically) the chunk that was shipped alongside.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkRef {
    /// Chunk fingerprint.
    pub digest: Digest,
    /// Chunk length in bytes.
    pub len: usize,
    /// True if the chunk payload was shipped for this image (false = a
    /// pointer to an already-present chunk).
    pub shipped: bool,
}

/// The backup site: chunk storage plus per-image manifests.
#[derive(Debug, Clone, Default)]
pub struct BackupSite {
    store: ChunkStore,
    images: Vec<Vec<ChunkRef>>,
}

impl BackupSite {
    /// Creates an empty site.
    pub fn new() -> Self {
        BackupSite::default()
    }

    /// Starts a new image manifest, returning its id.
    pub fn begin_image(&mut self) -> usize {
        self.images.push(Vec::new());
        self.images.len() - 1
    }

    /// Receives a shipped chunk payload for an image.
    ///
    /// # Panics
    ///
    /// Panics if `image` does not exist or the payload digest mismatches
    /// (in debug builds).
    pub fn receive_chunk(&mut self, image: usize, digest: Digest, payload: Bytes) {
        let len = payload.len();
        self.store.put_with_digest(digest, payload);
        self.images[image].push(ChunkRef {
            digest,
            len,
            shipped: true,
        });
    }

    /// Receives a pointer to an already-present chunk.
    ///
    /// # Panics
    ///
    /// Panics if `image` does not exist.
    pub fn receive_pointer(&mut self, image: usize, digest: Digest, len: usize) {
        debug_assert!(
            self.store.contains(&digest),
            "pointer to chunk the site does not hold"
        );
        self.images[image].push(ChunkRef {
            digest,
            len,
            shipped: false,
        });
    }

    /// True if the site already holds a chunk.
    pub fn holds(&self, digest: &Digest) -> bool {
        self.store.contains(digest)
    }

    /// Reconstructs an image from its manifest, verifying every chunk
    /// digest (end-to-end integrity).
    ///
    /// Returns `None` if the image id is unknown or a chunk is missing
    /// or corrupt.
    pub fn restore(&self, image: usize) -> Option<Vec<u8>> {
        let manifest = self.images.get(image)?;
        let total: usize = manifest.iter().map(|r| r.len).sum();
        let mut out = Vec::with_capacity(total);
        for r in manifest {
            let payload = self.store.get(&r.digest)?;
            if payload.len() != r.len || sha256(&payload) != r.digest {
                return None;
            }
            out.extend_from_slice(&payload);
        }
        Some(out)
    }

    /// Number of images stored.
    pub fn image_count(&self) -> usize {
        self.images.len()
    }

    /// Physical bytes stored after dedup.
    pub fn physical_bytes(&self) -> u64 {
        self.store.physical_bytes()
    }

    /// Logical bytes across all manifests.
    pub fn logical_bytes(&self) -> u64 {
        self.images.iter().flatten().map(|r| r.len as u64).sum()
    }

    /// Dedup ratio achieved at the site (logical / physical).
    pub fn dedup_ratio(&self) -> f64 {
        let phys = self.physical_bytes();
        if phys == 0 {
            return 1.0;
        }
        self.logical_bytes() as f64 / phys as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ship_and_restore() {
        let mut site = BackupSite::new();
        let img = site.begin_image();
        let a = Bytes::from_static(b"hello ");
        let b = Bytes::from_static(b"world");
        site.receive_chunk(img, sha256(&a), a.clone());
        site.receive_chunk(img, sha256(&b), b.clone());
        assert_eq!(site.restore(img).unwrap(), b"hello world");
    }

    #[test]
    fn pointers_reuse_stored_chunks() {
        let mut site = BackupSite::new();
        let payload = Bytes::from_static(b"shared-content");
        let d = sha256(&payload);

        let img1 = site.begin_image();
        site.receive_chunk(img1, d, payload.clone());
        let img2 = site.begin_image();
        site.receive_pointer(img2, d, payload.len());

        assert_eq!(site.restore(img2).unwrap(), payload.as_ref());
        assert_eq!(site.physical_bytes(), payload.len() as u64);
        assert!((site.dedup_ratio() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_image_returns_none() {
        let site = BackupSite::new();
        assert!(site.restore(0).is_none());
        assert_eq!(site.image_count(), 0);
    }

    #[test]
    fn holds_reflects_store() {
        let mut site = BackupSite::new();
        let payload = Bytes::from_static(b"x");
        let d = sha256(&payload);
        assert!(!site.holds(&d));
        let img = site.begin_image();
        site.receive_chunk(img, d, payload);
        assert!(site.holds(&d));
    }
}
