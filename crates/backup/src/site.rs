//! The backup site: the receiving Shredder agent (§7.2).
//!
//! "We deploy an additional Shredder agent residing on the backup site,
//! which receives all the chunks and pointers and recreates the original
//! uncompressed data."
//!
//! The site is now a client of the versioned store
//! ([`shredder_store::ChunkStore`]): every image is one generation of
//! the site's `"images"` stream, chunk payloads pack into the shared
//! segment log, restores verify every digest on the read-back path, and
//! old images can be [expired](BackupSite::expire_images) and their
//! unique chunks [garbage-collected](BackupSite::gc) — the incremental
//! storage lifecycle the paper's backup consumer exists for.

use bytes::Bytes;
use shredder_hash::Digest;
use shredder_store::{ChunkStore, GcReport, StoreConfig, StoreReport};

/// The stream name all images snapshot under.
const IMAGE_STREAM: &str = "images";

/// The backup site: a versioned chunk store plus per-image manifests.
#[derive(Debug, Clone, Default)]
pub struct BackupSite {
    store: ChunkStore,
    images_begun: usize,
}

impl BackupSite {
    /// Creates an empty site.
    pub fn new() -> Self {
        BackupSite::default()
    }

    /// Creates a site over a store with the given configuration
    /// (segment size, GC threshold, retention).
    pub fn with_store_config(config: StoreConfig) -> Self {
        BackupSite {
            store: ChunkStore::with_config(config),
            images_begun: 0,
        }
    }

    /// Starts a new image manifest, returning its id.
    pub fn begin_image(&mut self) -> usize {
        let generation = self.store.open_snapshot(IMAGE_STREAM);
        self.images_begun += 1;
        generation as usize
    }

    /// Receives a shipped chunk payload for an image.
    ///
    /// # Panics
    ///
    /// Panics if `image` does not exist or the payload digest mismatches
    /// (in debug builds).
    pub fn receive_chunk(&mut self, image: usize, digest: Digest, payload: Bytes) {
        self.receive_chunk_slice(image, digest, &payload);
    }

    /// Receives a shipped chunk payload as a borrowed range of the
    /// sender's image — the allocation-free commit path. The payload is
    /// copied at most once, straight into the store's segment log (and
    /// not at all on a dedup hit).
    ///
    /// # Panics
    ///
    /// Panics if `image` does not exist or the payload digest mismatches
    /// (in debug builds).
    pub fn receive_chunk_slice(&mut self, image: usize, digest: Digest, payload: &[u8]) {
        self.store.put_slice(digest, payload);
        self.store
            .append_chunk(IMAGE_STREAM, image as u64, digest, payload.len())
            .expect("no such image manifest");
    }

    /// Receives a pointer to an already-present chunk.
    ///
    /// # Panics
    ///
    /// Panics if `image` does not exist or the site does not hold the
    /// chunk.
    pub fn receive_pointer(&mut self, image: usize, digest: Digest, len: usize) {
        self.store
            .append_chunk(IMAGE_STREAM, image as u64, digest, len)
            .expect("pointer to chunk the site does not hold");
    }

    /// True if the site already holds a chunk.
    pub fn holds(&self, digest: &Digest) -> bool {
        self.store.contains(digest)
    }

    /// Reconstructs an image from its manifest, verifying every chunk
    /// digest (end-to-end integrity).
    ///
    /// Returns `None` if the image id is unknown (or expired) or a
    /// chunk is missing or corrupt.
    pub fn restore(&self, image: usize) -> Option<Vec<u8>> {
        self.store.restore(IMAGE_STREAM, image as u64).ok()
    }

    /// Number of images ever begun (expired images still count).
    pub fn image_count(&self) -> usize {
        self.images_begun
    }

    /// Image ids still live (restorable), ascending.
    pub fn live_images(&self) -> Vec<usize> {
        self.store
            .generations(IMAGE_STREAM)
            .into_iter()
            .map(|g| g as usize)
            .collect()
    }

    /// Expires every image up to and including `through`. The chunk
    /// payloads stay resident until [`gc`](Self::gc) reclaims them.
    /// Returns how many images expired.
    pub fn expire_images(&mut self, through: usize) -> usize {
        self.store.expire(IMAGE_STREAM, through as u64)
    }

    /// Mark-and-sweep garbage collection over the site store: frees
    /// chunks no live image references and compacts mostly-dead
    /// segments. The caller (the backup server) must evict
    /// [`freed_digests`](GcReport::freed_digests) from its dedup index.
    pub fn gc(&mut self) -> GcReport {
        self.store.gc()
    }

    /// Physical bytes stored after dedup (resident segment bytes).
    pub fn physical_bytes(&self) -> u64 {
        self.store.physical_bytes()
    }

    /// Logical bytes across all live image manifests.
    pub fn logical_bytes(&self) -> u64 {
        self.store
            .generations(IMAGE_STREAM)
            .into_iter()
            .filter_map(|g| self.store.manifest(IMAGE_STREAM, g))
            .map(|m| m.logical_bytes())
            .sum()
    }

    /// Dedup ratio achieved at the site (logical / physical).
    pub fn dedup_ratio(&self) -> f64 {
        let phys = self.physical_bytes();
        if phys == 0 {
            return 1.0;
        }
        self.logical_bytes() as f64 / phys as f64
    }

    /// The underlying versioned store (space accounting, manifests).
    pub fn store(&self) -> &ChunkStore {
        &self.store
    }

    /// The site store's aggregate report.
    pub fn report(&self) -> StoreReport {
        self.store.report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shredder_hash::sha256;

    #[test]
    fn ship_and_restore() {
        let mut site = BackupSite::new();
        let img = site.begin_image();
        let a = Bytes::from_static(b"hello ");
        let b = Bytes::from_static(b"world");
        site.receive_chunk(img, sha256(&a), a.clone());
        site.receive_chunk(img, sha256(&b), b.clone());
        assert_eq!(site.restore(img).unwrap(), b"hello world");
    }

    #[test]
    fn pointers_reuse_stored_chunks() {
        let mut site = BackupSite::new();
        let payload = Bytes::from_static(b"shared-content");
        let d = sha256(&payload);

        let img1 = site.begin_image();
        site.receive_chunk(img1, d, payload.clone());
        let img2 = site.begin_image();
        site.receive_pointer(img2, d, payload.len());

        assert_eq!(site.restore(img2).unwrap(), payload.as_ref());
        assert_eq!(site.physical_bytes(), payload.len() as u64);
        assert!((site.dedup_ratio() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_image_returns_none() {
        let site = BackupSite::new();
        assert!(site.restore(0).is_none());
        assert_eq!(site.image_count(), 0);
    }

    #[test]
    fn holds_reflects_store() {
        let mut site = BackupSite::new();
        let payload = Bytes::from_static(b"x");
        let d = sha256(&payload);
        assert!(!site.holds(&d));
        let img = site.begin_image();
        site.receive_chunk(img, d, payload);
        assert!(site.holds(&d));
    }

    #[test]
    fn expire_and_gc_reclaim_unique_images() {
        let mut site = BackupSite::new();
        let shared = Bytes::from_static(b"shared across images");
        let unique0 = Bytes::from_static(b"only in image zero..");
        let unique1 = Bytes::from_static(b"only in image one...");
        let ds = sha256(&shared);

        let img0 = site.begin_image();
        site.receive_chunk(img0, ds, shared.clone());
        site.receive_chunk(img0, sha256(&unique0), unique0.clone());
        let img1 = site.begin_image();
        site.receive_pointer(img1, ds, shared.len());
        site.receive_chunk(img1, sha256(&unique1), unique1.clone());

        assert_eq!(site.expire_images(img0), 1);
        let gc = site.gc();
        assert_eq!(gc.freed_chunks, 1);
        assert_eq!(gc.freed_digests, vec![sha256(&unique0)]);
        assert!(site.restore(img0).is_none(), "expired");
        let mut expected = shared.to_vec();
        expected.extend_from_slice(&unique1);
        assert_eq!(site.restore(img1).unwrap(), expected);
        assert_eq!(site.live_images(), vec![img1]);
        assert_eq!(site.image_count(), 2, "expired images still counted");
        assert_eq!(site.report().gc_runs, 1);
    }
}
