//! The consolidated cloud-backup system (paper §7, case study II).
//!
//! In the paper's target architecture (Figure 16), VM image snapshots
//! are mounted by a backup agent on a dedicated backup server, which
//! deduplicates them with Shredder before shipping to the backup site
//! (Figure 17):
//!
//! > "The Reader thread on the backup server reads the incoming data and
//! > pushes that into Shredder to form chunks. Once the chunks are
//! > formed, the Store thread computes a hash for the overall chunk …
//! > these hashes … are batched together to enqueue in an index lookup
//! > queue. Finally, a lookup thread picks up the enqueued chunk
//! > fingerprints and looks up in the index whether a particular chunk
//! > needs to be backed up or is already present in the backup site."
//!
//! * [`config`] — the §7.3 emulation parameters: 10 Gbps image source,
//!   the *unoptimized* index/network stage the paper names as the
//!   bandwidth limiter, min/max chunk sizes on.
//! * [`index`] — the dedup index (digest → present-at-site), re-exported
//!   from `shredder-store`'s unified sharded index.
//! * [`site`] — the backup site: the receiving Shredder agent, now a
//!   client of the versioned store — every image is one generation,
//!   restores verify every digest, and expired images are
//!   garbage-collected with segment compaction.
//! * [`server`] — the backup server pipeline: ingest → chunk → hash →
//!   index lookup → ship, with end-to-end bandwidth accounting
//!   (Figure 18), plus the retention path:
//!   [`BackupServer::expire_images`] →
//!   [`BackupServer::collect_garbage`] (which also evicts freed
//!   fingerprints from the dedup index).
//!
//! # Examples
//!
//! ```
//! use shredder_backup::{BackupConfig, BackupServer};
//! use shredder_core::{HostChunker, HostChunkerConfig};
//! use shredder_rabin::ChunkParams;
//!
//! let mut server = BackupServer::new(BackupConfig::paper());
//! let service = HostChunker::new(HostChunkerConfig {
//!     params: ChunkParams::backup(),
//!     ..HostChunkerConfig::optimized()
//! });
//!
//! let image = shredder_workloads::compressible_bytes(1 << 20, 256, 1);
//! let report = server.backup_image(&image, &service).unwrap();
//! assert_eq!(server.site().restore(report.image_id).unwrap(), image);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod index;
pub mod server;
pub mod site;

pub use config::BackupConfig;
pub use index::DedupIndex;
pub use server::{BackupReport, BackupServer, BatchBackupReport};
pub use site::BackupSite;
