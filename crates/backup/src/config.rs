//! Backup-pipeline parameters (§7.3 emulation environment).

use serde::{Deserialize, Serialize};
use shredder_des::Dur;
use shredder_rabin::ChunkParams;

/// Configuration of the backup server pipeline.
///
/// The defaults reproduce the §7.3 setup: the image source is kept at
/// 10 Gbps "to closely simulate the I/O processing rate of modern
/// X-series" \[30\]; min/max chunk sizes are enabled "as used in practice
/// by many commercial backup systems"; and the index/network stage is
/// deliberately *unoptimized* — the paper attributes the bandwidth
/// decline at lower similarity to "the unoptimized index lookup and
/// network access, … not a limitation of our chunking scheme".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackupConfig {
    /// Chunking parameters (min/max enabled).
    pub params: ChunkParams,
    /// Image ingest rate: 10 Gbps (§7.3).
    pub ingest_bw: f64,
    /// Store-thread hashing bandwidth (SHA over chunk payloads across
    /// the Store pipeline stage), bytes/s.
    pub hash_bw: f64,
    /// Per-fingerprint index lookup cost (the unoptimized, single
    /// lookup-thread index; ChunkStash-style indexes would cut this,
    /// §7.3/§8).
    pub index_lookup: Dur,
    /// Additional cost to insert a new fingerprint.
    pub index_insert: Dur,
    /// Backup-site network bandwidth for shipping new chunks, bytes/s.
    pub ship_bw: f64,
    /// Per-shipped-chunk protocol overhead.
    pub ship_chunk_overhead: Dur,
    /// Pointer size shipped for a duplicate chunk, bytes.
    pub pointer_bytes: usize,
    /// Pipeline buffer size (one Reader admission unit).
    pub buffer_size: usize,
    /// Buffers in flight (the backup server reuses Shredder's 4-stage
    /// streaming pipeline, §7.2 "as a separate pipeline stage").
    pub pipeline_depth: usize,
}

impl BackupConfig {
    /// The §7.3 emulation parameters.
    pub fn paper() -> Self {
        BackupConfig {
            params: ChunkParams::backup(),
            ingest_bw: 1.25e9, // 10 Gbps
            hash_bw: 1.5e9,
            index_lookup: Dur::from_micros(7),
            index_insert: Dur::from_micros(10),
            ship_bw: 0.9e9,
            ship_chunk_overhead: Dur::from_micros(2),
            pointer_bytes: 40, // digest + offset/len bookkeeping
            buffer_size: 32 << 20,
            pipeline_depth: 4,
        }
    }

    /// Sets the ingest (image generation) rate in Gbps.
    ///
    /// # Panics
    ///
    /// Panics if `gbps` is not positive.
    pub fn with_ingest_gbps(mut self, gbps: f64) -> Self {
        assert!(gbps > 0.0, "ingest rate must be positive");
        self.ingest_bw = gbps * 1e9 / 8.0;
        self
    }
}

impl Default for BackupConfig {
    fn default() -> Self {
        BackupConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = BackupConfig::paper();
        assert!((c.ingest_bw - 1.25e9).abs() < 1.0);
        assert!(c.params.min_size > 0);
        assert!(c.params.max_size < usize::MAX);
    }

    #[test]
    fn ingest_gbps_conversion() {
        let c = BackupConfig::paper().with_ingest_gbps(8.0);
        assert!((c.ingest_bw - 1e9).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_ingest_panics() {
        let _ = BackupConfig::paper().with_ingest_gbps(0.0);
    }
}
