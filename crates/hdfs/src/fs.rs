//! The Inc-HDFS client API.
//!
//! `copy_from_local` mimics plain HDFS (fixed-size splits);
//! `copy_from_local_gpu` is the §6.3 extension: the client runs the
//! computationally expensive chunking through a
//! [`ChunkingService`] (the Shredder-enabled HDFS client of Figure 14)
//! before uploading chunks to DataNodes, deduplicating splits whose
//! content is already stored.

use std::fmt;

use bytes::Bytes;
use shredder_core::{
    AdmissionControl, ChunkError, ChunkRequest, ChunkingService, ServiceReport, Shredder,
    ShredderService, SliceSource, Workload,
};
use shredder_des::Dur;
use shredder_hash::{sha256, Digest};
use shredder_rabin::{chunk_fixed, Chunk};

use crate::input_format::InputFormat;
use crate::namenode::{FileVersion, NameNode, SplitMeta};
use crate::sink::RecordAlignedSink;
use crate::store::ChunkStore;

/// Errors from Inc-HDFS operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HdfsError {
    /// The path has no committed version.
    FileNotFound(String),
    /// The requested version index does not exist.
    VersionNotFound {
        /// Requested path.
        path: String,
        /// Requested version.
        version: usize,
    },
    /// A split's payload is missing from its DataNode (corruption).
    MissingChunk(Digest),
    /// The chunking engine failed while ingesting the file.
    Chunking(ChunkError),
}

impl fmt::Display for HdfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HdfsError::FileNotFound(p) => write!(f, "file not found: {p}"),
            HdfsError::VersionNotFound { path, version } => {
                write!(f, "version {version} of {path} not found")
            }
            HdfsError::MissingChunk(d) => write!(f, "missing chunk payload {d:?}"),
            HdfsError::Chunking(e) => write!(f, "chunking failed: {e}"),
        }
    }
}

impl std::error::Error for HdfsError {}

impl From<ChunkError> for HdfsError {
    fn from(e: ChunkError) -> Self {
        HdfsError::Chunking(e)
    }
}

/// Outcome of an upload.
#[derive(Debug, Clone, PartialEq)]
pub struct UploadReport {
    /// Version index created.
    pub version: usize,
    /// Logical bytes uploaded.
    pub total_bytes: u64,
    /// Bytes that were new (actually shipped to DataNodes).
    pub new_bytes: u64,
    /// Bytes deduplicated against already-stored chunks.
    pub dedup_bytes: u64,
    /// Number of splits in the new version.
    pub splits: usize,
    /// Splits whose content was new.
    pub new_splits: usize,
    /// Simulated client-side chunking time (from the chunking service).
    pub chunking_time: Dur,
    /// Simulated end-to-end ingestion time: chunking plus the
    /// in-simulation fingerprinting of every aligned split. Zero for the
    /// fixed-split path (no fingerprint stage is simulated there).
    pub upload_makespan: Dur,
}

impl UploadReport {
    /// Fraction of bytes that deduplicated.
    pub fn dedup_fraction(&self) -> f64 {
        if self.total_bytes == 0 {
            return 0.0;
        }
        self.dedup_bytes as f64 / self.total_bytes as f64
    }
}

/// A split plus its payload, as handed to Map tasks.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitData {
    /// Split metadata.
    pub meta: SplitMeta,
    /// Payload bytes.
    pub bytes: Bytes,
}

/// The Inc-HDFS cluster: one NameNode plus `n` DataNodes.
///
/// # Examples
///
/// ```
/// use shredder_hdfs::IncHdfs;
///
/// let mut fs = IncHdfs::new(3);
/// fs.copy_from_local("/plain", b"0123456789", 4);
/// assert_eq!(fs.read("/plain").unwrap(), b"0123456789");
/// assert_eq!(fs.splits("/plain").unwrap().len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct IncHdfs {
    namenode: NameNode,
    datanodes: Vec<ChunkStore>,
    next_node: usize,
    replication: usize,
    dead: std::collections::BTreeSet<usize>,
    /// All nodes holding each chunk (the replica map the NameNode keeps
    /// in real HDFS). Ordered so reports iterate deterministically.
    replicas: std::collections::BTreeMap<Digest, Vec<usize>>,
}

impl IncHdfs {
    /// Creates a cluster with `datanodes` DataNodes and no replication.
    ///
    /// # Panics
    ///
    /// Panics if `datanodes` is zero.
    pub fn new(datanodes: usize) -> Self {
        IncHdfs::with_replication(datanodes, 1)
    }

    /// Creates a cluster storing each chunk on `replication` distinct
    /// DataNodes (HDFS defaults to 3).
    ///
    /// # Panics
    ///
    /// Panics if `datanodes` is zero or `replication` is zero or exceeds
    /// the node count.
    pub fn with_replication(datanodes: usize, replication: usize) -> Self {
        assert!(datanodes > 0, "need at least one datanode");
        assert!(
            (1..=datanodes).contains(&replication),
            "replication must be between 1 and the node count"
        );
        IncHdfs {
            namenode: NameNode::new(),
            datanodes: vec![ChunkStore::new(); datanodes],
            next_node: 0,
            replication,
            dead: Default::default(),
            replicas: Default::default(),
        }
    }

    /// Marks a DataNode as failed: reads fall back to replicas and new
    /// placements avoid it.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn fail_datanode(&mut self, node: usize) {
        assert!(node < self.datanodes.len(), "no such datanode");
        self.dead.insert(node);
    }

    /// Brings a failed DataNode back (its stored chunks reappear).
    pub fn revive_datanode(&mut self, node: usize) {
        self.dead.remove(&node);
    }

    /// Borrowed, copy-free read of a chunk from any live replica.
    fn fetch_ref(&self, digest: &Digest, primary: usize) -> Option<&[u8]> {
        if !self.dead.contains(&primary) {
            if let Some(b) = self.datanodes[primary].read_chunk(digest) {
                return Some(b);
            }
        }
        self.replicas.get(digest)?.iter().find_map(|&n| {
            if self.dead.contains(&n) {
                None
            } else {
                self.datanodes[n].read_chunk(digest)
            }
        })
    }

    /// Fetches a chunk from any live replica as owned bytes.
    fn fetch(&self, digest: &Digest, primary: usize) -> Option<Bytes> {
        self.fetch_ref(digest, primary).map(Bytes::copy_from_slice)
    }

    /// The NameNode (metadata queries).
    pub fn namenode(&self) -> &NameNode {
        &self.namenode
    }

    /// Number of DataNodes.
    pub fn datanode_count(&self) -> usize {
        self.datanodes.len()
    }

    /// Total physical bytes stored across DataNodes.
    pub fn physical_bytes(&self) -> u64 {
        self.datanodes.iter().map(ChunkStore::physical_bytes).sum()
    }

    /// Plain-HDFS upload: fixed-size splits of `split_size` bytes
    /// (`copyFromLocal`).
    pub fn copy_from_local(&mut self, path: &str, data: &[u8], split_size: usize) -> UploadReport {
        let aligned: Vec<(Chunk, Digest)> = chunk_fixed(data, split_size)
            .into_iter()
            .map(|c| (c, sha256(c.slice(data))))
            .collect();
        self.commit(path, data, &aligned, Dur::ZERO, Dur::ZERO)
    }

    /// Content-based upload through a Shredder chunking service with
    /// semantic record alignment (`copyFromLocalGPU`, §6.3). Record
    /// alignment and split fingerprinting run as a
    /// [`RecordAlignedSink`] inside the service's simulation, so the
    /// hash work overlaps chunking.
    ///
    /// # Errors
    ///
    /// [`HdfsError::Chunking`] if the chunking engine fails.
    pub fn copy_from_local_gpu(
        &mut self,
        path: &str,
        data: &[u8],
        service: &dyn ChunkingService,
        format: &dyn InputFormat,
    ) -> Result<UploadReport, HdfsError> {
        let mut sink = RecordAlignedSink::new(format);
        let outcome = service.chunk_stream_sink(data, &mut sink)?;
        Ok(self.commit(
            path,
            data,
            &sink.into_aligned(),
            outcome.report.makespan(),
            outcome.makespan,
        ))
    }

    /// Batch ingestion: uploads several files in one multi-stream engine
    /// run, so their chunking — and the record-aligned fingerprinting of
    /// every split — contends for and overlaps on **one** shared device
    /// pipeline (the §4.2 pipeline kept saturated across files instead
    /// of drained between them).
    ///
    /// Returns one report per `(path, data)` pair, in order. Each file's
    /// `chunking_time` is its own chunk-only duration (first admit →
    /// last Store completion) inside the shared run.
    ///
    /// # Errors
    ///
    /// [`HdfsError::Chunking`] if the engine rejects the configuration
    /// or a kernel launch fails; no file is committed in that case.
    pub fn copy_many_gpu(
        &mut self,
        files: &[(&str, &[u8])],
        shredder: &Shredder,
        format: &dyn InputFormat,
    ) -> Result<Vec<UploadReport>, HdfsError> {
        let mut sinks: Vec<RecordAlignedSink> = files
            .iter()
            .map(|_| RecordAlignedSink::new(format))
            .collect();
        let outcome = {
            let mut engine = shredder.engine();
            for ((path, data), sink) in files.iter().zip(sinks.iter_mut()) {
                engine.open_sink_session(path.to_string(), 1, SliceSource::new(data), sink);
            }
            engine.run()?
        };

        let mut reports = Vec::with_capacity(files.len());
        for ((sink, (path, data)), per) in
            sinks.into_iter().zip(files).zip(&outcome.report.sessions)
        {
            let chunking_time = per
                .timeline
                .last()
                .map(|t| t.store_end.saturating_since(per.first_admit))
                .unwrap_or(Dur::ZERO);
            reports.push(self.commit(
                path,
                data,
                &sink.into_aligned(),
                chunking_time,
                per.makespan,
            ));
        }
        Ok(reports)
    }

    /// Online-service ingestion: uploads arrive *inside* the simulation
    /// according to `workload` (open-loop Poisson, closed loop, trace
    /// replay or batch) and pass through the bounded admission queue of
    /// `control` — the Shredder-enabled HDFS client as a long-lived
    /// ingest frontend instead of a closed batch.
    ///
    /// Returns one result per `(path, data)` pair in order (shed
    /// uploads carry [`HdfsError::Chunking`] wrapping
    /// `ChunkError::Overloaded` and commit nothing) plus the run's
    /// [`ServiceReport`] (offered vs. achieved req/s, queue-depth
    /// timeline, latency percentiles).
    ///
    /// # Errors
    ///
    /// [`HdfsError::Chunking`] if the engine rejects the configuration
    /// or a kernel launch fails; no file is committed in that case.
    #[allow(clippy::type_complexity)]
    pub fn copy_service_gpu(
        &mut self,
        files: &[(&str, &[u8])],
        shredder: &Shredder,
        format: &dyn InputFormat,
        workload: &Workload,
        control: AdmissionControl,
    ) -> Result<(Vec<Result<UploadReport, HdfsError>>, ServiceReport), HdfsError> {
        let mut sinks: Vec<RecordAlignedSink> = files
            .iter()
            .map(|_| RecordAlignedSink::new(format))
            .collect();
        let outcome = {
            let mut service =
                ShredderService::new(shredder.config().clone()).with_admission(control);
            for ((path, data), sink) in files.iter().zip(sinks.iter_mut()) {
                service.submit(
                    ChunkRequest::new(SliceSource::new(data))
                        .named(path.to_string())
                        .with_sink(sink),
                );
            }
            service.run(workload).map_err(HdfsError::Chunking)?
        };

        let service_report = outcome
            .report
            .service
            .clone()
            .expect("service runs always carry a ServiceReport");
        let mut reports = Vec::with_capacity(files.len());
        for ((sink, (path, data)), result) in sinks.into_iter().zip(files).zip(outcome.requests) {
            match result.outcome {
                Ok(_) => {
                    let i = result.id.index();
                    let per = &outcome.report.sessions[i];
                    let chunking_time = per
                        .timeline
                        .last()
                        .map(|t| t.store_end.saturating_since(per.first_admit))
                        .unwrap_or(Dur::ZERO);
                    let latency = service_report.requests[i].latency().unwrap_or(per.makespan);
                    reports.push(Ok(self.commit(
                        path,
                        data,
                        &sink.into_aligned(),
                        chunking_time,
                        latency,
                    )));
                }
                Err(e) => reports.push(Err(HdfsError::Chunking(e))),
            }
        }
        Ok((reports, service_report))
    }

    fn commit(
        &mut self,
        path: &str,
        data: &[u8],
        aligned: &[(Chunk, Digest)],
        chunking_time: Dur,
        upload_makespan: Dur,
    ) -> UploadReport {
        let mut splits = Vec::with_capacity(aligned.len());
        let mut new_bytes = 0u64;
        let mut dedup_bytes = 0u64;
        let mut new_splits = 0usize;

        for (chunk, digest) in aligned {
            let payload = chunk.slice(data);
            let digest = *digest;
            // Dedup across the whole cluster: if the chunk is already
            // replicated somewhere, point there; otherwise place it on
            // `replication` live nodes round-robin.
            let node = match self.replicas.get(&digest).and_then(|r| r.first().copied()) {
                Some(primary) => {
                    dedup_bytes += chunk.len as u64;
                    // Register the logical reference on the primary
                    // (a dedup hit: `put_slice` copies nothing).
                    self.datanodes[primary].put_slice(digest, payload);
                    primary
                }
                None => {
                    let mut placed = Vec::with_capacity(self.replication);
                    let total = self.datanodes.len();
                    let mut probe = 0usize;
                    while placed.len() < self.replication && probe < total {
                        let n = self.next_node;
                        self.next_node = (self.next_node + 1) % total;
                        probe += 1;
                        if self.dead.contains(&n) || placed.contains(&n) {
                            continue;
                        }
                        self.datanodes[n].put_slice(digest, payload);
                        placed.push(n);
                    }
                    // Fewer live nodes than the replication factor: store
                    // on whatever is available (possibly fewer copies).
                    let primary = placed.first().copied().unwrap_or(0);
                    self.replicas.insert(digest, placed);
                    new_bytes += chunk.len as u64;
                    new_splits += 1;
                    primary
                }
            };
            splits.push(SplitMeta {
                digest,
                offset: chunk.offset,
                len: chunk.len,
                datanode: node,
            });
        }

        let version = self.namenode.commit_version(path, FileVersion { splits });
        UploadReport {
            version,
            total_bytes: data.len() as u64,
            new_bytes,
            dedup_bytes,
            splits: aligned.len(),
            new_splits,
            chunking_time,
            upload_makespan,
        }
    }

    /// Reads back the latest version of a file.
    ///
    /// # Errors
    ///
    /// [`HdfsError::FileNotFound`] or [`HdfsError::MissingChunk`].
    pub fn read(&self, path: &str) -> Result<Vec<u8>, HdfsError> {
        let latest = self.namenode.version_count(path);
        if latest == 0 {
            return Err(HdfsError::FileNotFound(path.to_string()));
        }
        self.read_version(path, latest - 1)
    }

    /// Reads back a specific version.
    ///
    /// # Errors
    ///
    /// [`HdfsError`] variants for missing files, versions or chunks.
    pub fn read_version(&self, path: &str, version: usize) -> Result<Vec<u8>, HdfsError> {
        let v = self
            .namenode
            .version(path, version)
            .ok_or_else(|| HdfsError::VersionNotFound {
                path: path.to_string(),
                version,
            })?;
        let mut out = Vec::with_capacity(v.len() as usize);
        for s in &v.splits {
            // Borrowed read: the payload is appended straight from the
            // DataNode's segment log, no intermediate copy.
            let payload = self
                .fetch_ref(&s.digest, s.datanode)
                .ok_or(HdfsError::MissingChunk(s.digest))?;
            out.extend_from_slice(payload);
        }
        Ok(out)
    }

    /// The latest version's splits with payloads — the Map-task input.
    ///
    /// # Errors
    ///
    /// [`HdfsError`] variants for missing files or chunks.
    pub fn splits(&self, path: &str) -> Result<Vec<SplitData>, HdfsError> {
        let v = self
            .namenode
            .latest(path)
            .ok_or_else(|| HdfsError::FileNotFound(path.to_string()))?;
        v.splits
            .iter()
            .map(|&meta| {
                let bytes = self
                    .fetch(&meta.digest, meta.datanode)
                    .ok_or(HdfsError::MissingChunk(meta.digest))?;
                Ok(SplitData { meta, bytes })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input_format::TextInputFormat;
    use shredder_core::HostChunker;
    use shredder_rabin::ChunkParams;

    fn corpus(seed: u64) -> Vec<u8> {
        shredder_workloads::words_corpus(300_000, 300, seed)
    }

    fn service() -> HostChunker {
        HostChunker::new(shredder_core::HostChunkerConfig {
            params: ChunkParams::paper().with_expected_size(4096),
            ..shredder_core::HostChunkerConfig::optimized()
        })
    }

    #[test]
    fn fixed_upload_roundtrip() {
        let mut fs = IncHdfs::new(4);
        let data = corpus(1);
        let report = fs.copy_from_local("/f", &data, 64 << 10);
        assert_eq!(report.total_bytes, data.len() as u64);
        assert_eq!(fs.read("/f").unwrap(), data);
    }

    #[test]
    fn gpu_upload_roundtrip_and_splits() {
        let mut fs = IncHdfs::new(4);
        let data = corpus(2);
        let report = fs
            .copy_from_local_gpu("/f", &data, &service(), &TextInputFormat)
            .unwrap();
        assert_eq!(fs.read("/f").unwrap(), data);
        assert!(report.splits > 10);
        let splits = fs.splits("/f").unwrap();
        assert_eq!(splits.len(), report.splits);
        // Every split except the last ends at a record boundary.
        for s in &splits[..splits.len() - 1] {
            assert_eq!(*s.bytes.last().unwrap(), b'\n');
        }
    }

    #[test]
    fn second_version_dedups_unchanged_content() {
        let mut fs = IncHdfs::new(4);
        let data = corpus(3);
        let svc = service();
        fs.copy_from_local_gpu("/f", &data, &svc, &TextInputFormat)
            .unwrap();

        // 2% localized change.
        let changed =
            shredder_workloads::mutate(&data, &shredder_workloads::MutationSpec::replace(0.02, 9));
        let report = fs
            .copy_from_local_gpu("/f", &changed, &svc, &TextInputFormat)
            .unwrap();
        assert!(
            report.dedup_fraction() > 0.7,
            "dedup fraction {}",
            report.dedup_fraction()
        );
        assert_eq!(fs.read("/f").unwrap(), changed);
        // Old version still readable (versioned store).
        assert_eq!(fs.read_version("/f", 0).unwrap(), data);
    }

    #[test]
    fn fixed_chunking_fails_to_dedup_after_insertion() {
        // The motivating contrast of §6.2.
        let mut fs_fixed = IncHdfs::new(4);
        let mut fs_cdc = IncHdfs::new(4);
        let data = corpus(4);
        let svc = service();

        fs_fixed.copy_from_local("/f", &data, 32 << 10);
        fs_cdc
            .copy_from_local_gpu("/f", &data, &svc, &TextInputFormat)
            .unwrap();

        // Insert a record near the front: everything shifts.
        let mut shifted = b"NEW RECORD AT FRONT\n".to_vec();
        shifted.extend_from_slice(&data);

        let fixed_report = fs_fixed.copy_from_local("/f", &shifted, 32 << 10);
        let cdc_report = fs_cdc
            .copy_from_local_gpu("/f", &shifted, &svc, &TextInputFormat)
            .unwrap();

        assert!(
            fixed_report.dedup_fraction() < 0.05,
            "fixed dedup {}",
            fixed_report.dedup_fraction()
        );
        assert!(
            cdc_report.dedup_fraction() > 0.8,
            "cdc dedup {}",
            cdc_report.dedup_fraction()
        );
    }

    #[test]
    fn copy_many_uploads_through_one_engine() {
        let mut fs = IncHdfs::new(4);
        let a = corpus(11);
        let b = corpus(12);
        let c = corpus(13);
        let shredder = Shredder::new(
            shredder_core::ShredderConfig::gpu_streams_memory()
                .with_params(ChunkParams::paper().with_expected_size(4096))
                .with_buffer_size(64 << 10),
        );
        let reports = fs
            .copy_many_gpu(
                &[
                    ("/a", a.as_slice()),
                    ("/b", b.as_slice()),
                    ("/c", c.as_slice()),
                ],
                &shredder,
                &TextInputFormat,
            )
            .unwrap();
        assert_eq!(reports.len(), 3);
        assert_eq!(fs.read("/a").unwrap(), a);
        assert_eq!(fs.read("/b").unwrap(), b);
        assert_eq!(fs.read("/c").unwrap(), c);
        // Each file's batched split set matches a solo upload: the
        // shared pipeline never changes boundaries.
        let mut solo = IncHdfs::new(4);
        let solo_report = solo
            .copy_from_local_gpu("/a", &a, &shredder, &TextInputFormat)
            .unwrap();
        assert_eq!(reports[0].splits, solo_report.splits);
        assert_eq!(reports[0].total_bytes, solo_report.total_bytes);
        // Per-file chunking time comes from its session in the shared run.
        for r in &reports {
            assert!(r.chunking_time > Dur::ZERO);
        }
    }

    #[test]
    fn service_ingest_matches_batch_and_sheds_cleanly() {
        use shredder_core::{AdmissionControl, ChunkError, Workload};

        let data: Vec<Vec<u8>> = (21..25).map(corpus).collect();
        let files: Vec<(&str, &[u8])> = vec![
            ("/s0", data[0].as_slice()),
            ("/s1", data[1].as_slice()),
            ("/s2", data[2].as_slice()),
            ("/s3", data[3].as_slice()),
        ];
        let shredder = Shredder::new(
            shredder_core::ShredderConfig::gpu_streams_memory()
                .with_params(ChunkParams::paper().with_expected_size(4096))
                .with_buffer_size(64 << 10),
        );

        // Gentle Poisson arrivals: everything lands, splits match the
        // batch path, and the service report carries latencies.
        let mut fs = IncHdfs::new(4);
        let (reports, svc) = fs
            .copy_service_gpu(
                &files,
                &shredder,
                &TextInputFormat,
                &Workload::poisson(100.0, 3),
                AdmissionControl::fifo(2),
            )
            .unwrap();
        assert_eq!(svc.completed, 4);
        assert_eq!(svc.shed, 0);
        let mut batch_fs = IncHdfs::new(4);
        let batch = batch_fs
            .copy_many_gpu(&files, &shredder, &TextInputFormat)
            .unwrap();
        for ((r, b), (path, content)) in reports.iter().zip(&batch).zip(&files) {
            let r = r.as_ref().unwrap();
            assert_eq!(r.splits, b.splits);
            assert_eq!(r.new_bytes, b.new_bytes);
            assert_eq!(fs.read(path).unwrap(), *content);
        }

        // A zero-length queue under a batch burst: later uploads shed
        // with Overloaded and commit nothing.
        let mut fs = IncHdfs::new(4);
        let (reports, svc) = fs
            .copy_service_gpu(
                &files,
                &shredder,
                &TextInputFormat,
                &Workload::Batch,
                AdmissionControl::fifo(1).with_queue_depth(0),
            )
            .unwrap();
        assert!(svc.shed > 0);
        for (r, (path, content)) in reports.iter().zip(&files) {
            match r {
                Ok(_) => assert_eq!(fs.read(path).unwrap(), *content),
                Err(HdfsError::Chunking(ChunkError::Overloaded { .. })) => {
                    assert!(matches!(fs.read(path), Err(HdfsError::FileNotFound(_))));
                }
                other => panic!("unexpected outcome {other:?}"),
            }
        }
    }

    #[test]
    fn errors_are_reported() {
        let fs = IncHdfs::new(2);
        assert!(matches!(fs.read("/nope"), Err(HdfsError::FileNotFound(_))));
        assert!(fs.splits("/nope").is_err());
        let mut fs = fs;
        fs.copy_from_local("/f", b"abc", 2);
        assert!(matches!(
            fs.read_version("/f", 5),
            Err(HdfsError::VersionNotFound { .. })
        ));
    }

    #[test]
    fn replication_stores_multiple_copies() {
        let mut fs = IncHdfs::with_replication(5, 3);
        let data = corpus(7);
        fs.copy_from_local("/f", &data, 64 << 10);
        // Roughly 3x the data stored physically (dedup of repeated
        // chunks makes it <= exactly 3x).
        let ratio = fs.physical_bytes() as f64 / data.len() as f64;
        assert!((2.5..=3.0).contains(&ratio), "ratio {ratio}");
        assert_eq!(fs.read("/f").unwrap(), data);
    }

    #[test]
    fn reads_survive_node_failures_up_to_replication() {
        let mut fs = IncHdfs::with_replication(5, 3);
        let data = corpus(8);
        fs.copy_from_local_gpu("/f", &data, &service(), &TextInputFormat)
            .unwrap();

        fs.fail_datanode(0);
        fs.fail_datanode(2);
        assert_eq!(fs.read("/f").unwrap(), data, "2 failures, 3 replicas");
        assert!(fs.splits("/f").is_ok());

        // A third failure can lose chunks...
        fs.fail_datanode(4);
        let lost = fs.read("/f");
        // ...but reviving restores access.
        fs.revive_datanode(0);
        assert_eq!(fs.read("/f").unwrap(), data);
        // (With 3-of-5 nodes dead, some chunk had all replicas dark.)
        assert!(lost.is_err() || lost.unwrap() == data);
    }

    #[test]
    fn unreplicated_cluster_loses_data_on_failure() {
        let mut fs = IncHdfs::new(4);
        let data = corpus(9);
        fs.copy_from_local("/f", &data, 64 << 10);
        fs.fail_datanode(1);
        assert!(matches!(fs.read("/f"), Err(HdfsError::MissingChunk(_))));
    }

    #[test]
    #[should_panic(expected = "replication must be between")]
    fn oversized_replication_panics() {
        let _ = IncHdfs::with_replication(2, 3);
    }

    #[test]
    fn physical_bytes_grow_only_with_new_content() {
        let mut fs = IncHdfs::new(4);
        let data = corpus(5);
        let svc = service();
        fs.copy_from_local_gpu("/f", &data, &svc, &TextInputFormat)
            .unwrap();
        let after_first = fs.physical_bytes();
        fs.copy_from_local_gpu("/g", &data, &svc, &TextInputFormat)
            .unwrap();
        let after_second = fs.physical_bytes();
        assert_eq!(after_first, after_second, "identical file re-stored");
    }
}
