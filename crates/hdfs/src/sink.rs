//! The Inc-HDFS ingestion sink: record alignment + fingerprinting as
//! in-simulation stages.
//!
//! §6.3's semantic chunking snaps content-defined cuts forward to
//! record boundaries; the client then fingerprints every aligned split
//! for cluster-wide dedup. Before the staged sink API both steps were
//! post-processing over a collected `Vec<Chunk>`; a
//! [`RecordAlignedSink`] instead consumes the engine's upcalls
//! incrementally — holding back only the bytes between the last emitted
//! record boundary and the stream head — and charges its SHA-256
//! hashing to a [`FingerprintStage`] scheduled inside the shared
//! simulation, so split fingerprinting overlaps chunking.
//!
//! The alignment is bit-identical to
//! [`apply_input_format`](crate::input_format::apply_input_format) over
//! the collected cut list (a property test in `fs.rs` pins this).

use std::collections::VecDeque;

use shredder_core::{ChunkSink, FingerprintStage, StageSpec};
use shredder_des::Dur;
use shredder_hash::Digest;
use shredder_rabin::Chunk;

use crate::input_format::InputFormat;

/// Default client-side fingerprinting bandwidth (the Store thread's
/// SHA-256 rate, matching the §7.3 backup emulation).
pub const CLIENT_HASH_BW: f64 = 1.5e9;

/// A sink that re-tiles content-defined chunks to record boundaries and
/// fingerprints every aligned split inside the simulation.
pub struct RecordAlignedSink<'f> {
    format: &'f dyn InputFormat,
    fingerprint: FingerprintStage,
    /// Bytes from the last emitted boundary to the stream head.
    pending: Vec<u8>,
    /// Absolute offset of `pending[0]`.
    pending_base: u64,
    /// Proposed (content-defined) cuts not yet resolved to a record
    /// boundary, in increasing offset order.
    proposed: VecDeque<u64>,
    /// Aligned splits emitted so far, with their fingerprints.
    aligned: Vec<(Chunk, Digest)>,
}

impl<'f> RecordAlignedSink<'f> {
    /// Creates a sink aligning to `format` and hashing at the default
    /// client rate.
    pub fn new(format: &'f dyn InputFormat) -> Self {
        RecordAlignedSink::with_hash_bw(format, CLIENT_HASH_BW)
    }

    /// Creates a sink hashing at `hash_bw` bytes/s.
    pub fn with_hash_bw(format: &'f dyn InputFormat, hash_bw: f64) -> Self {
        RecordAlignedSink {
            format,
            fingerprint: FingerprintStage::new(hash_bw),
            pending: Vec::new(),
            pending_base: 0,
            proposed: VecDeque::new(),
            aligned: Vec::new(),
        }
    }

    /// The aligned splits emitted so far, in stream order.
    pub fn aligned(&self) -> &[(Chunk, Digest)] {
        &self.aligned
    }

    /// Consumes the sink, returning the aligned splits.
    pub fn into_aligned(self) -> Vec<(Chunk, Digest)> {
        self.aligned
    }

    /// Emits the aligned split `[pending_base, pending_base + len)`,
    /// hashing its payload; returns the fingerprint service time.
    fn emit(&mut self, len: usize) -> Dur {
        let (digest, service) = self.fingerprint.process(&self.pending[..len]);
        self.aligned.push((
            Chunk {
                offset: self.pending_base,
                len,
            },
            digest,
        ));
        self.pending.drain(..len);
        self.pending_base += len as u64;
        service
    }

    /// Resolves every proposed cut whose snapped record boundary is
    /// already visible in `pending`. A boundary that would land exactly
    /// on the stream head is deferred (it is only legal if more bytes
    /// follow; at `finished` it merges into the final split).
    fn resolve(&mut self, finished: bool) -> Dur {
        let mut service = Dur::ZERO;
        while let Some(&p) = self.proposed.front() {
            if p <= self.pending_base {
                // Collapsed into an earlier snap (several content cuts
                // inside one long record).
                self.proposed.pop_front();
                continue;
            }
            let rel = (p - self.pending_base) as usize;
            if rel >= self.pending.len() {
                // The cut itself is beyond the buffered head (possible
                // only at finish, after earlier emits).
                self.proposed.pop_front();
                continue;
            }
            let snapped = self.format.next_record_boundary(&self.pending, rel as u64) as usize;
            if snapped >= self.pending.len() {
                if finished {
                    // Snaps to the stream end: no cut (the final split
                    // absorbs it).
                    self.proposed.pop_front();
                    continue;
                }
                // Boundary not visible yet — wait for more bytes.
                break;
            }
            self.proposed.pop_front();
            service += self.emit(snapped);
        }
        service
    }
}

impl ChunkSink for RecordAlignedSink<'_> {
    fn stages(&self) -> Vec<StageSpec> {
        vec![self.fingerprint.spec()]
    }

    fn accept(&mut self, chunk: Chunk, payload: &[u8]) -> Vec<Dur> {
        debug_assert_eq!(chunk.offset, self.pending_base + self.pending.len() as u64);
        if chunk.offset > 0 {
            // The boundary between the previous chunk and this one is a
            // proposed cut.
            self.proposed.push_back(chunk.offset);
        }
        self.pending.extend_from_slice(payload);
        vec![self.resolve(false)]
    }

    fn finish(&mut self) -> Vec<Dur> {
        let mut service = self.resolve(true);
        if !self.pending.is_empty() {
            let len = self.pending.len();
            service += self.emit(len);
        }
        vec![service]
    }
}

impl std::fmt::Debug for RecordAlignedSink<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecordAlignedSink")
            .field("format", &self.format.format_name())
            .field("aligned", &self.aligned.len())
            .field("pending", &self.pending.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input_format::{apply_input_format, TextInputFormat};
    use shredder_hash::sha256;
    use shredder_rabin::chunker::{cuts_to_chunks, raw_cuts};
    use shredder_rabin::ChunkParams;

    /// Feeds `data`, pre-chunked at `cuts`, through the sink and returns
    /// the aligned splits.
    fn run_sink(data: &[u8], cuts: &[u64]) -> Vec<(Chunk, Digest)> {
        let chunks = cuts_to_chunks(cuts, data.len() as u64);
        let mut sink = RecordAlignedSink::new(&TextInputFormat);
        for c in &chunks {
            sink.accept(*c, c.slice(data));
        }
        sink.finish();
        sink.into_aligned()
    }

    fn assert_matches_batch(data: &[u8], cuts: &[u64]) {
        let streamed = run_sink(data, cuts);
        let batch = apply_input_format(data, cuts, &TextInputFormat);
        let streamed_chunks: Vec<Chunk> = streamed.iter().map(|(c, _)| *c).collect();
        assert_eq!(streamed_chunks, batch);
        for (c, d) in &streamed {
            assert_eq!(*d, sha256(c.slice(data)), "digest of {c:?}");
        }
    }

    #[test]
    fn streaming_alignment_equals_batch_snapping() {
        let record = b"some record content here\n";
        let data: Vec<u8> = record.iter().copied().cycle().take(100_000).collect();
        let cuts = raw_cuts(&data, &ChunkParams::paper().with_expected_size(2048));
        assert_matches_batch(&data, &cuts);
    }

    #[test]
    fn collapsing_cuts_merge() {
        // One giant record: every cut snaps to the same end boundary.
        let mut data = vec![b'x'; 50_000];
        data.push(b'\n');
        assert_matches_batch(&data, &[100, 5000, 20000]);
    }

    #[test]
    fn cut_on_existing_boundary_stays() {
        let data = b"aaa\nbbb\nccc\n".to_vec();
        assert_matches_batch(&data, &[4, 9]);
    }

    #[test]
    fn no_trailing_newline() {
        let data = b"abc\ndef\nghij".to_vec();
        assert_matches_batch(&data, &[2, 6, 10]);
    }

    #[test]
    fn empty_stream_emits_nothing() {
        assert!(run_sink(&[], &[]).is_empty());
    }

    #[test]
    fn boundary_exactly_at_chunk_edge_defers_correctly() {
        // Newline as the last byte of a chunk: the cut is only legal
        // once the next chunk arrives.
        let data = b"aaaa\nbbbb\ncccc\n".to_vec();
        assert_matches_batch(&data, &[5, 10]);
        // And a newline at the stream end must not produce an empty split.
        assert_matches_batch(&data, &[15]);
        assert_matches_batch(&data, &[14]);
    }
}
