//! Content-addressed chunk storage (what each DataNode holds).
//!
//! Since the store crate landed, this is a re-export: every DataNode is
//! a [`shredder_store::ChunkStore`] — the segment-packed,
//! snapshot-capable store shared with the backup site — rather than a
//! private digest → payload map with its own copy of the FNV-sharded
//! index. The API this module historically offered (`put`,
//! `put_with_digest`, `get`, `contains`, byte accounting) is unchanged;
//! the versioned snapshot/GC surface is new capability underneath.

pub use shredder_store::ChunkStore;

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use shredder_hash::Digest;

    #[test]
    fn put_get_roundtrip() {
        let mut s = ChunkStore::new();
        let d = s.put(Bytes::from_static(b"abc"));
        assert_eq!(s.get(&d).unwrap(), Bytes::from_static(b"abc"));
        assert!(s.contains(&d));
        assert_eq!(s.chunk_count(), 1);
    }

    #[test]
    fn duplicate_content_stored_once() {
        let mut s = ChunkStore::new();
        let d1 = s.put(Bytes::from_static(b"same"));
        let d2 = s.put(Bytes::from_static(b"same"));
        assert_eq!(d1, d2);
        assert_eq!(s.chunk_count(), 1);
        assert_eq!(s.physical_bytes(), 4);
        assert_eq!(s.logical_bytes(), 8);
        assert_eq!(s.dedup_hits(), 1);
        assert!((s.dedup_ratio() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn missing_digest_returns_none() {
        let s = ChunkStore::new();
        assert!(s.get(&Digest::ZERO).is_none());
        assert!(!s.contains(&Digest::ZERO));
        assert_eq!(s.dedup_ratio(), 1.0);
    }

    #[test]
    fn distinct_content_accumulates() {
        let mut s = ChunkStore::new();
        for i in 0..10u8 {
            s.put(Bytes::copy_from_slice(&[i; 16]));
        }
        assert_eq!(s.chunk_count(), 10);
        assert_eq!(s.physical_bytes(), 160);
    }
}
