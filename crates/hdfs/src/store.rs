//! Content-addressed chunk storage (what each DataNode holds).

use std::collections::HashMap;

use bytes::Bytes;
use shredder_hash::Digest;

/// A content-addressed store: digest → chunk payload.
///
/// Storing the same content twice keeps one copy — the dedup behaviour
/// every byte of Inc-HDFS and the backup site relies on.
///
/// # Examples
///
/// ```
/// use shredder_hash::sha256;
/// use shredder_hdfs::ChunkStore;
///
/// let mut store = ChunkStore::new();
/// let d = store.put(b"hello".as_slice().into());
/// assert_eq!(d, sha256(b"hello"));
/// store.put(b"hello".as_slice().into()); // dedup: no growth
/// assert_eq!(store.physical_bytes(), 5);
/// assert_eq!(store.logical_bytes(), 10);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ChunkStore {
    chunks: HashMap<Digest, Bytes>,
    physical_bytes: u64,
    logical_bytes: u64,
    dedup_hits: u64,
}

impl ChunkStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ChunkStore::default()
    }

    /// Stores a chunk, returning its digest. Duplicate content is
    /// detected by digest and not stored again.
    pub fn put(&mut self, data: Bytes) -> Digest {
        let digest = shredder_hash::sha256(&data);
        self.put_with_digest(digest, data);
        digest
    }

    /// Stores a chunk under a pre-computed digest (the common path: the
    /// Store thread already hashed the chunk).
    ///
    /// Returns `true` if the chunk was new.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `digest` does not match the data.
    pub fn put_with_digest(&mut self, digest: Digest, data: Bytes) -> bool {
        debug_assert_eq!(digest, shredder_hash::sha256(&data), "digest mismatch");
        self.logical_bytes += data.len() as u64;
        match self.chunks.entry(digest) {
            std::collections::hash_map::Entry::Occupied(_) => {
                self.dedup_hits += 1;
                false
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                self.physical_bytes += data.len() as u64;
                e.insert(data);
                true
            }
        }
    }

    /// Fetches a chunk by digest.
    pub fn get(&self, digest: &Digest) -> Option<Bytes> {
        self.chunks.get(digest).cloned()
    }

    /// True if the digest is stored.
    pub fn contains(&self, digest: &Digest) -> bool {
        self.chunks.contains_key(digest)
    }

    /// Number of distinct chunks stored.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Bytes actually stored (after dedup).
    pub fn physical_bytes(&self) -> u64 {
        self.physical_bytes
    }

    /// Bytes offered to the store (before dedup).
    pub fn logical_bytes(&self) -> u64 {
        self.logical_bytes
    }

    /// Number of puts that deduplicated.
    pub fn dedup_hits(&self) -> u64 {
        self.dedup_hits
    }

    /// Dedup ratio: logical / physical (1.0 = no savings).
    pub fn dedup_ratio(&self) -> f64 {
        if self.physical_bytes == 0 {
            return 1.0;
        }
        self.logical_bytes as f64 / self.physical_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut s = ChunkStore::new();
        let d = s.put(Bytes::from_static(b"abc"));
        assert_eq!(s.get(&d).unwrap(), Bytes::from_static(b"abc"));
        assert!(s.contains(&d));
        assert_eq!(s.chunk_count(), 1);
    }

    #[test]
    fn duplicate_content_stored_once() {
        let mut s = ChunkStore::new();
        let d1 = s.put(Bytes::from_static(b"same"));
        let d2 = s.put(Bytes::from_static(b"same"));
        assert_eq!(d1, d2);
        assert_eq!(s.chunk_count(), 1);
        assert_eq!(s.physical_bytes(), 4);
        assert_eq!(s.logical_bytes(), 8);
        assert_eq!(s.dedup_hits(), 1);
        assert!((s.dedup_ratio() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn missing_digest_returns_none() {
        let s = ChunkStore::new();
        assert!(s.get(&Digest::ZERO).is_none());
        assert!(!s.contains(&Digest::ZERO));
        assert_eq!(s.dedup_ratio(), 1.0);
    }

    #[test]
    fn distinct_content_accumulates() {
        let mut s = ChunkStore::new();
        for i in 0..10u8 {
            s.put(Bytes::copy_from_slice(&[i; 16]));
        }
        assert_eq!(s.chunk_count(), 10);
        assert_eq!(s.physical_bytes(), 160);
    }
}
