//! Inc-HDFS: an HDFS-like distributed file system with content-based
//! chunking (paper §6.2–§6.3, case study I substrate).
//!
//! Plain HDFS splits files at fixed offsets, so a one-byte insertion
//! changes every downstream split and defeats computation reuse.
//! Inc-HDFS instead splits with Shredder's content-defined chunking,
//! "ensuring that small changes to the input lead to small changes in the
//! set of chunks that are provided as input to Map tasks".
//!
//! * [`store`] — the content-addressed chunk store each DataNode holds.
//! * [`namenode`] — file → version → split metadata, DataNode placement.
//! * [`input_format`] — the semantic-chunking framework of §6.3: snap
//!   content-defined cuts to record boundaries so a split never cuts a
//!   record in half (reusing the job's `InputFormat` notion).
//! * [`sink`] — the ingestion consumer: a
//!   [`RecordAlignedSink`] performs record
//!   alignment incrementally and fingerprints every aligned split as an
//!   in-simulation stage, so hashing overlaps chunking.
//! * [`fs`] — the client API: `copy_from_local` (fixed-size, plain HDFS
//!   behaviour) and `copy_from_local_gpu` (content-based via any
//!   [`ChunkingService`](shredder_core::ChunkingService) — the
//!   `copyFromLocalGPU` shell command of §6.3).
//!
//! # Examples
//!
//! ```
//! use shredder_core::HostChunker;
//! use shredder_hdfs::{input_format::TextInputFormat, IncHdfs};
//!
//! let mut fs = IncHdfs::new(4);
//! let service = HostChunker::with_defaults();
//! let data = b"record one\nrecord two\nrecord three\n".repeat(2000);
//!
//! let report = fs
//!     .copy_from_local_gpu("/logs/day1", &data, &service, &TextInputFormat)
//!     .unwrap();
//! assert_eq!(report.total_bytes, data.len() as u64);
//! assert_eq!(fs.read("/logs/day1").unwrap(), data);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fs;
pub mod input_format;
pub mod namenode;
pub mod sink;
pub mod store;

pub use fs::{HdfsError, IncHdfs, SplitData, UploadReport};
pub use input_format::{apply_input_format, InputFormat, TextInputFormat};
pub use namenode::{FileVersion, NameNode, SplitMeta};
pub use sink::RecordAlignedSink;
pub use store::ChunkStore;
