//! The semantic chunking framework of §6.3.
//!
//! Content-based chunking "is oblivious to the semantics of the input
//! data, \[so\] chunk boundaries \[could\] be placed anywhere, including …
//! in the middle of a record that should not be broken". Inc-HDFS reuses
//! the MapReduce job's `InputFormat` to snap every proposed cut to the
//! next record boundary, so each split holds whole records and Map tasks
//! can process splits independently.

use shredder_rabin::chunker::cuts_to_chunks;
use shredder_rabin::Chunk;

/// Knows where records end; used to adjust chunk boundaries.
pub trait InputFormat {
    /// Returns the smallest offset `>= proposed` that is a legal split
    /// point (the end of the record containing `proposed`), or
    /// `data.len()` if no later record boundary exists.
    fn next_record_boundary(&self, data: &[u8], proposed: u64) -> u64;

    /// Format name for diagnostics.
    fn format_name(&self) -> &'static str;
}

/// Newline-terminated records (the `TextInputFormat` of Hadoop).
///
/// # Examples
///
/// ```
/// use shredder_hdfs::{InputFormat, TextInputFormat};
///
/// let data = b"aaa\nbbb\nccc\n";
/// // A cut proposed mid-record snaps to just after the next newline.
/// assert_eq!(TextInputFormat.next_record_boundary(data, 5), 8);
/// // A cut already on a record boundary stays put.
/// assert_eq!(TextInputFormat.next_record_boundary(data, 8), 8);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct TextInputFormat;

impl InputFormat for TextInputFormat {
    fn next_record_boundary(&self, data: &[u8], proposed: u64) -> u64 {
        let p = proposed as usize;
        if p >= data.len() {
            return data.len() as u64;
        }
        // `p` is legal iff it is the stream start or the previous byte
        // ends a record.
        if p == 0 || data[p - 1] == b'\n' {
            return proposed;
        }
        match data[p..].iter().position(|&b| b == b'\n') {
            Some(i) => (p + i + 1) as u64,
            None => data.len() as u64,
        }
    }

    fn format_name(&self) -> &'static str {
        "text"
    }
}

/// Snaps a sorted cut list to record boundaries and retiles the stream.
///
/// Cuts that collapse onto each other (several content cuts inside one
/// long record) are merged; the resulting chunks still tile `[0, len)`.
pub fn apply_input_format(data: &[u8], cuts: &[u64], format: &dyn InputFormat) -> Vec<Chunk> {
    let mut snapped: Vec<u64> = Vec::with_capacity(cuts.len());
    let mut last = 0u64;
    for &c in cuts {
        let s = format.next_record_boundary(data, c);
        if s > last && s < data.len() as u64 {
            snapped.push(s);
            last = s;
        }
    }
    cuts_to_chunks(&snapped, data.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use shredder_rabin::chunker::raw_cuts;
    use shredder_rabin::ChunkParams;

    #[test]
    fn snap_moves_forward_to_record_end() {
        let data = b"one\ntwo\nthree\n";
        let f = TextInputFormat;
        assert_eq!(f.next_record_boundary(data, 0), 0); // stream start is legal
        assert_eq!(f.next_record_boundary(data, 1), 4);
        assert_eq!(f.next_record_boundary(data, 4), 4);
        assert_eq!(f.next_record_boundary(data, 5), 8);
        assert_eq!(f.next_record_boundary(data, 13), 14);
        assert_eq!(f.next_record_boundary(data, 14), 14);
        assert_eq!(f.next_record_boundary(data, 99), 14);
    }

    #[test]
    fn no_trailing_newline() {
        let data = b"abc\ndef";
        assert_eq!(TextInputFormat.next_record_boundary(data, 5), 7);
    }

    #[test]
    fn chunks_respect_record_boundaries() {
        let record = b"some record content here\n";
        let data: Vec<u8> = record.iter().copied().cycle().take(200_000).collect();
        let cuts = raw_cuts(&data, &ChunkParams::paper().with_expected_size(4096));
        let chunks = apply_input_format(&data, &cuts, &TextInputFormat);

        assert_eq!(
            chunks.iter().map(|c| c.len).sum::<usize>(),
            data.len(),
            "chunks must tile"
        );
        for c in &chunks[..chunks.len() - 1] {
            let end = c.end() as usize;
            assert_eq!(data[end - 1], b'\n', "chunk ends mid-record at {end}");
        }
        // Every chunk holds whole records: its content parses as lines.
        for c in &chunks {
            let s = c.slice(&data);
            assert_eq!(s[s.len() - 1], b'\n');
        }
    }

    #[test]
    fn collapsing_cuts_are_merged() {
        // One giant record: every content cut snaps to the same boundary.
        let mut data = vec![b'x'; 50_000];
        data.push(b'\n');
        let cuts = vec![100u64, 5000, 20000];
        let chunks = apply_input_format(&data, &cuts, &TextInputFormat);
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].len, data.len());
    }

    #[test]
    fn record_aligned_splits_preserve_word_multiset() {
        // The §6.3 purpose: a mapper over record-aligned splits sees the
        // same records as a whole-file pass.
        let text: Vec<u8> = b"alpha beta\ngamma\ndelta epsilon zeta\n"
            .iter()
            .copied()
            .cycle()
            .take(100_000)
            .collect();
        let cuts = raw_cuts(&text, &ChunkParams::paper().with_expected_size(2048));
        let chunks = apply_input_format(&text, &cuts, &TextInputFormat);

        let whole: Vec<&[u8]> = text
            .split(|&b| b == b'\n')
            .filter(|r| !r.is_empty())
            .collect();
        let mut split_records: Vec<&[u8]> = Vec::new();
        for c in &chunks {
            split_records.extend(
                c.slice(&text)
                    .split(|&b| b == b'\n')
                    .filter(|r| !r.is_empty()),
            );
        }
        assert_eq!(whole, split_records);
    }

    #[test]
    fn empty_data() {
        let chunks = apply_input_format(&[], &[], &TextInputFormat);
        assert!(chunks.is_empty());
    }
}
