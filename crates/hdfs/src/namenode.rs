//! The NameNode: file metadata and split placement.
//!
//! As in HDFS, the NameNode maps file paths to ordered split lists and
//! remembers which DataNode holds each split's payload (Figure 14). To
//! support incremental computation across input versions, every upload
//! creates a new [`FileVersion`] rather than overwriting — Incoop
//! compares consecutive versions' split digests to decide what to
//! recompute.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use shredder_hash::Digest;

/// Metadata of one split (chunk) of a file version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplitMeta {
    /// Content digest (the dedup / memoization key).
    pub digest: Digest,
    /// Byte offset within the file version.
    pub offset: u64,
    /// Split length in bytes.
    pub len: usize,
    /// DataNode index holding the payload.
    pub datanode: usize,
}

/// One immutable version of a file: an ordered list of splits.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FileVersion {
    /// Splits in stream order.
    pub splits: Vec<SplitMeta>,
}

impl FileVersion {
    /// Total logical bytes of the version.
    pub fn len(&self) -> u64 {
        self.splits.iter().map(|s| s.len as u64).sum()
    }

    /// True if the version holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.splits.is_empty()
    }
}

/// The metadata server.
#[derive(Debug, Clone, Default)]
pub struct NameNode {
    files: BTreeMap<String, Vec<FileVersion>>,
}

impl NameNode {
    /// Creates an empty namespace.
    pub fn new() -> Self {
        NameNode::default()
    }

    /// Appends a new version of `path`, returning its version index.
    pub fn commit_version(&mut self, path: &str, version: FileVersion) -> usize {
        let versions = self.files.entry(path.to_string()).or_default();
        versions.push(version);
        versions.len() - 1
    }

    /// Latest version of a file.
    pub fn latest(&self, path: &str) -> Option<&FileVersion> {
        self.files.get(path).and_then(|v| v.last())
    }

    /// A specific version of a file.
    pub fn version(&self, path: &str, version: usize) -> Option<&FileVersion> {
        self.files.get(path).and_then(|v| v.get(version))
    }

    /// Number of versions of a file (0 if absent).
    pub fn version_count(&self, path: &str) -> usize {
        self.files.get(path).map_or(0, Vec::len)
    }

    /// All file paths, sorted (`BTreeMap` keys iterate in order).
    pub fn paths(&self) -> Vec<&str> {
        self.files.keys().map(String::as_str).collect()
    }

    /// Splits of the latest version whose digests differ from the
    /// previous version — the change set Incoop propagates (§6.1).
    pub fn changed_splits(&self, path: &str) -> Option<Vec<SplitMeta>> {
        let versions = self.files.get(path)?;
        let latest = versions.last()?;
        let previous: std::collections::HashSet<Digest> = match versions.len() {
            0 | 1 => Default::default(),
            n => versions[n - 2].splits.iter().map(|s| s.digest).collect(),
        };
        Some(
            latest
                .splits
                .iter()
                .filter(|s| !previous.contains(&s.digest))
                .copied()
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn split(tag: u8, offset: u64, len: usize) -> SplitMeta {
        SplitMeta {
            digest: Digest([tag; 32]),
            offset,
            len,
            datanode: 0,
        }
    }

    #[test]
    fn versions_accumulate() {
        let mut nn = NameNode::new();
        assert_eq!(nn.version_count("/f"), 0);
        let v0 = nn.commit_version(
            "/f",
            FileVersion {
                splits: vec![split(1, 0, 10)],
            },
        );
        let v1 = nn.commit_version(
            "/f",
            FileVersion {
                splits: vec![split(2, 0, 20)],
            },
        );
        assert_eq!((v0, v1), (0, 1));
        assert_eq!(nn.version_count("/f"), 2);
        assert_eq!(nn.latest("/f").unwrap().len(), 20);
        assert_eq!(nn.version("/f", 0).unwrap().len(), 10);
        assert!(nn.version("/f", 2).is_none());
    }

    #[test]
    fn changed_splits_between_versions() {
        let mut nn = NameNode::new();
        nn.commit_version(
            "/f",
            FileVersion {
                splits: vec![split(1, 0, 10), split(2, 10, 10), split(3, 20, 10)],
            },
        );
        nn.commit_version(
            "/f",
            FileVersion {
                splits: vec![split(1, 0, 10), split(9, 10, 12), split(3, 22, 10)],
            },
        );
        let changed = nn.changed_splits("/f").unwrap();
        assert_eq!(changed.len(), 1);
        assert_eq!(changed[0].digest, Digest([9; 32]));
    }

    #[test]
    fn first_version_is_all_changed() {
        let mut nn = NameNode::new();
        nn.commit_version(
            "/f",
            FileVersion {
                splits: vec![split(1, 0, 5), split(2, 5, 5)],
            },
        );
        assert_eq!(nn.changed_splits("/f").unwrap().len(), 2);
        assert!(nn.changed_splits("/missing").is_none());
    }

    #[test]
    fn paths_sorted() {
        let mut nn = NameNode::new();
        nn.commit_version("/b", FileVersion::default());
        nn.commit_version("/a", FileVersion::default());
        assert_eq!(nn.paths(), vec!["/a", "/b"]);
    }
}
