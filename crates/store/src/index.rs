//! The sharded fingerprint index — the one implementation behind every
//! digest → something map in the workspace.
//!
//! Before this crate, `shredder-hdfs`'s `ChunkStore` and
//! `shredder-backup`'s `DedupIndex` each carried their own copy of the
//! same FNV-prefix sharding. [`ChunkIndex`] is that structure once,
//! generic over the value: the store maps digests to segment locations,
//! the dedup index maps them to nothing but presence.

use std::collections::BTreeMap;

use shredder_hash::{fnv1a_64, Digest};

/// Shard count of the in-memory index. Sharding by a fast FNV prefix
/// mirrors how a real multi-threaded index would partition its lock
/// domains; the collision-resistant identity stays the full SHA-256.
const SHARDS: usize = 64;

/// A sharded digest → value map with lookup/hit accounting.
///
/// # Examples
///
/// ```
/// use shredder_hash::sha256;
/// use shredder_store::ChunkIndex;
///
/// let mut index: ChunkIndex<u32> = ChunkIndex::new();
/// let d = sha256(b"chunk");
/// assert!(index.lookup(&d).is_none());
/// index.insert(d, 7);
/// assert_eq!(index.lookup(&d), Some(&7));
/// assert_eq!(index.lookups(), 2);
/// assert_eq!(index.hits(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ChunkIndex<V> {
    shards: Vec<BTreeMap<Digest, V>>,
    lookups: u64,
    hits: u64,
}

impl<V> ChunkIndex<V> {
    /// Creates an empty index.
    pub fn new() -> Self {
        ChunkIndex {
            shards: (0..SHARDS).map(|_| BTreeMap::new()).collect(),
            lookups: 0,
            hits: 0,
        }
    }

    fn shard_of(digest: &Digest) -> usize {
        (fnv1a_64(&digest.0[..8]) as usize) % SHARDS
    }

    /// Non-counting read.
    pub fn get(&self, digest: &Digest) -> Option<&V> {
        self.shards[Self::shard_of(digest)].get(digest)
    }

    /// Mutable non-counting read.
    pub fn get_mut(&mut self, digest: &Digest) -> Option<&mut V> {
        self.shards[Self::shard_of(digest)].get_mut(digest)
    }

    /// Counting read: records one lookup, and a hit when present.
    pub fn lookup(&mut self, digest: &Digest) -> Option<&V> {
        self.lookups += 1;
        let v = self.shards[Self::shard_of(digest)].get(digest);
        if v.is_some() {
            self.hits += 1;
        }
        v
    }

    /// Non-counting presence check.
    pub fn contains(&self, digest: &Digest) -> bool {
        self.get(digest).is_some()
    }

    /// Inserts a value, returning the previous one if any.
    pub fn insert(&mut self, digest: Digest, value: V) -> Option<V> {
        self.shards[Self::shard_of(&digest)].insert(digest, value)
    }

    /// Removes an entry.
    pub fn remove(&mut self, digest: &Digest) -> Option<V> {
        self.shards[Self::shard_of(digest)].remove(digest)
    }

    /// Distinct digests indexed.
    pub fn len(&self) -> usize {
        self.shards.iter().map(BTreeMap::len).sum()
    }

    /// True if nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(BTreeMap::is_empty)
    }

    /// Counting lookups performed.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Counting lookups that hit.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Entry count per shard (for balance diagnostics).
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards.iter().map(BTreeMap::len).collect()
    }

    /// Iterates every entry in deterministic shard-major order: shards
    /// in index order, digests ascending within each shard. (Not global
    /// digest order — sort if that's what you need.)
    pub fn iter(&self) -> impl Iterator<Item = (&Digest, &V)> {
        self.shards.iter().flat_map(BTreeMap::iter)
    }
}

impl<V> Default for ChunkIndex<V> {
    fn default() -> Self {
        ChunkIndex::new()
    }
}

/// The dedup index: fingerprint → present-at-site, with lookup/hit
/// accounting (§7.2's "lookup thread ... looks up in the index whether a
/// particular chunk needs to be backed up or is already present").
///
/// `shredder-backup` re-exports this as its `DedupIndex`; the sharding
/// previously copy-pasted there now lives once in [`ChunkIndex`].
///
/// # Examples
///
/// ```
/// use shredder_hash::sha256;
/// use shredder_store::DedupIndex;
///
/// let mut index = DedupIndex::new();
/// let d = sha256(b"chunk");
/// assert!(!index.contains(&d));
/// assert!(index.insert(d));
/// assert!(index.contains(&d));
/// assert!(!index.insert(d)); // already present
/// ```
#[derive(Debug, Clone, Default)]
pub struct DedupIndex {
    index: ChunkIndex<()>,
}

impl DedupIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        DedupIndex::default()
    }

    /// True if the fingerprint is indexed. Counts a lookup.
    pub fn lookup(&mut self, digest: &Digest) -> bool {
        self.index.lookup(digest).is_some()
    }

    /// Non-counting presence check.
    pub fn contains(&self, digest: &Digest) -> bool {
        self.index.contains(digest)
    }

    /// Inserts a fingerprint; returns `true` if it was new.
    pub fn insert(&mut self, digest: Digest) -> bool {
        self.index.insert(digest, ()).is_none()
    }

    /// Removes the given fingerprints (the GC eviction hook: digests
    /// freed from the chunk store must leave the index too, or later
    /// backups would register pointers to chunks nobody holds). Returns
    /// how many were present.
    pub fn evict(&mut self, digests: &[Digest]) -> usize {
        digests
            .iter()
            .filter(|d| self.index.remove(d).is_some())
            .count()
    }

    /// Distinct fingerprints indexed.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True if nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Lookups performed.
    pub fn lookups(&self) -> u64 {
        self.index.lookups()
    }

    /// Lookup hits (duplicates found).
    pub fn hits(&self) -> u64 {
        self.index.hits()
    }

    /// Largest shard's entry count (balance diagnostics).
    pub fn max_shard_len(&self) -> usize {
        self.index.shard_lens().into_iter().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shredder_hash::sha256;

    #[test]
    fn insert_lookup_cycle() {
        let mut idx = DedupIndex::new();
        let a = sha256(b"a");
        let b = sha256(b"b");
        assert!(!idx.lookup(&a));
        idx.insert(a);
        assert!(idx.lookup(&a));
        assert!(!idx.lookup(&b));
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.lookups(), 3);
        assert_eq!(idx.hits(), 1);
    }

    #[test]
    fn many_digests_spread_over_shards() {
        let mut idx = DedupIndex::new();
        for i in 0..10_000u32 {
            idx.insert(sha256(&i.to_le_bytes()));
        }
        assert_eq!(idx.len(), 10_000);
        // No shard should hold more than 5× the average.
        let max = idx.max_shard_len();
        assert!(max < 5 * (10_000 / SHARDS), "max shard {max}");
    }

    #[test]
    fn reinsert_is_idempotent() {
        let mut idx = DedupIndex::new();
        let d = sha256(b"x");
        assert!(idx.insert(d));
        assert!(!idx.insert(d));
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn evict_removes_and_counts() {
        let mut idx = DedupIndex::new();
        let a = sha256(b"a");
        let b = sha256(b"b");
        let c = sha256(b"c");
        idx.insert(a);
        idx.insert(b);
        assert_eq!(idx.evict(&[a, c]), 1);
        assert!(!idx.contains(&a));
        assert!(idx.contains(&b));
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn generic_index_counts_and_mutates() {
        let mut idx: ChunkIndex<u64> = ChunkIndex::new();
        let d = sha256(b"v");
        assert!(idx.lookup(&d).is_none());
        assert!(idx.insert(d, 1).is_none());
        *idx.get_mut(&d).unwrap() = 2;
        assert_eq!(idx.get(&d), Some(&2));
        assert_eq!(idx.insert(d, 3), Some(2));
        assert_eq!(idx.remove(&d), Some(3));
        assert!(idx.is_empty());
        assert_eq!(idx.lookups(), 1);
        assert_eq!(idx.hits(), 0);
    }
}
