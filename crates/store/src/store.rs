//! The versioned content-addressed chunk store.

use std::collections::{BTreeMap, HashSet};
use std::fmt;

use bytes::Bytes;
use serde::{Deserialize, Serialize};
use shredder_hash::{sha256, Digest};
use shredder_telemetry::MetricsRegistry;

use crate::index::ChunkIndex;
use crate::manifest::{ManifestEntry, SnapshotManifest};
use crate::segment::{ChunkLoc, SegmentLog};

/// Store tuning parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoreConfig {
    /// Segment roll size in bytes: chunk payloads are packed into
    /// append-only segments of (about) this size.
    pub segment_bytes: usize,
    /// Compaction threshold in `[0, 1]`: GC rewrites the survivors of
    /// any sealed segment whose live fraction falls below this and
    /// retires the segment. `0.0` disables compaction (only fully-dead
    /// segments are retired); `1.0` compacts any segment with a single
    /// dead byte.
    pub gc_threshold: f64,
    /// Snapshot retention per stream: `Some(n)` keeps only the latest
    /// `n` generations — enforced automatically whenever a new snapshot
    /// opens (and re-appliable via [`ChunkStore::apply_retention`]).
    /// `None` retains everything until explicitly expired. Expired
    /// chunk payloads stay resident until [`ChunkStore::gc`] reclaims
    /// them. Must not be `Some(0)`.
    pub retention: Option<u64>,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            segment_bytes: 8 << 20,
            gc_threshold: 0.5,
            retention: None,
        }
    }
}

/// Errors from snapshot and restore operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The stream has no snapshots.
    UnknownStream(String),
    /// The generation does not exist (never committed, or expired).
    UnknownGeneration {
        /// Requested stream.
        stream: String,
        /// Requested generation.
        generation: u64,
    },
    /// A recipe references a chunk the store does not hold.
    MissingChunk(Digest),
    /// A chunk's payload failed digest (or length) verification on the
    /// read-back path.
    CorruptChunk(Digest),
    /// A [`ChunkStore::scrub`] pass found corrupt chunks. Carries the
    /// full pass report, including every corrupt digest.
    ScrubFailed(ScrubReport),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::UnknownStream(s) => write!(f, "unknown stream: {s}"),
            StoreError::UnknownGeneration { stream, generation } => {
                write!(f, "generation {generation} of {stream} not found")
            }
            StoreError::MissingChunk(d) => write!(f, "missing chunk {}", d.to_hex()),
            StoreError::CorruptChunk(d) => {
                write!(f, "chunk {} failed digest verification", d.to_hex())
            }
            StoreError::ScrubFailed(r) => {
                write!(
                    f,
                    "scrub found {} corrupt chunk(s) of {} scanned",
                    r.corrupt.len(),
                    r.chunks_scanned
                )
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// Outcome of one [`ChunkStore::gc`] pass.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GcReport {
    /// Chunks freed by the sweep.
    pub freed_chunks: usize,
    /// Payload bytes those chunks held.
    pub freed_bytes: u64,
    /// The freed fingerprints, sorted — the eviction feed for external
    /// indexes (`DedupIndex::evict`, `MemoTable::evict_digests`).
    pub freed_digests: Vec<Digest>,
    /// Segments compacted and retired.
    pub compacted_segments: usize,
    /// Live bytes rewritten during compaction.
    pub moved_bytes: u64,
    /// Resident bytes before the pass.
    pub physical_before: u64,
    /// Resident bytes after the pass.
    pub physical_after: u64,
}

impl GcReport {
    /// Physical bytes actually reclaimed by this pass.
    pub fn reclaimed_bytes(&self) -> u64 {
        self.physical_before.saturating_sub(self.physical_after)
    }

    /// Fraction of the pre-GC footprint reclaimed, in `[0, 1]`.
    pub fn reclaim_fraction(&self) -> f64 {
        if self.physical_before == 0 {
            return 0.0;
        }
        self.reclaimed_bytes() as f64 / self.physical_before as f64
    }
}

/// Outcome of one [`ChunkStore::scrub`] pass.
///
/// Returned as `Ok` when every chunk verified, and inside
/// [`StoreError::ScrubFailed`] when any did not, so callers always get
/// the scan totals either way.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ScrubReport {
    /// Chunks read back and verified.
    pub chunks_scanned: usize,
    /// Payload bytes read back.
    pub bytes_scanned: u64,
    /// Digests whose payloads failed verification (wrong bytes, wrong
    /// length, or unreadable), sorted.
    pub corrupt: Vec<Digest>,
}

/// Outcome of one [`ChunkStore::recover`] pass.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// Index entries examined.
    pub chunks_checked: usize,
    /// Digests dropped because their payloads were lost (torn off the
    /// log tail), sorted. The caller re-ships these chunks.
    pub dropped_digests: Vec<Digest>,
    /// Payload bytes those dropped chunks claimed.
    pub dropped_bytes: u64,
}

/// Outcome of one [`ChunkStore::repair_from`] pass.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RepairReport {
    /// Snapshot manifests installed from the peer (missing locally).
    pub snapshots_installed: usize,
    /// Streams that gained at least one installed snapshot, sorted.
    pub streams_repaired: Vec<String>,
    /// Chunk payloads copied from the peer (digest-verified on copy).
    pub chunks_copied: usize,
    /// Payload bytes those copies moved — the physical repair traffic a
    /// real cluster would ship over the wire.
    pub bytes_copied: u64,
    /// Referenced chunks that were already resident locally (dedup
    /// against the survivor's own inventory; no bytes moved).
    pub chunks_already_present: usize,
}

impl RepairReport {
    /// Folds `other` into `self` — counters add, repaired-stream lists
    /// merge (sorted, deduplicated). Lets a caller aggregate many
    /// per-snapshot [`ChunkStore::install_snapshot`] reports into one
    /// repair-pass summary.
    pub fn absorb(&mut self, other: RepairReport) {
        self.snapshots_installed += other.snapshots_installed;
        self.chunks_copied += other.chunks_copied;
        self.bytes_copied += other.bytes_copied;
        self.chunks_already_present += other.chunks_already_present;
        self.streams_repaired.extend(other.streams_repaired);
        self.streams_repaired.sort();
        self.streams_repaired.dedup();
    }
}

/// Aggregate store observability.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoreReport {
    /// Distinct chunks stored.
    pub chunk_count: usize,
    /// Resident segments.
    pub segment_count: usize,
    /// Bytes resident in segments (live + dead-not-yet-reclaimed).
    pub physical_bytes: u64,
    /// Bytes referenced by live chunks.
    pub live_bytes: u64,
    /// Bytes offered to the store across all puts (before dedup).
    pub logical_bytes: u64,
    /// Puts that deduplicated.
    pub dedup_hits: u64,
    /// Streams with at least one live snapshot.
    pub streams: usize,
    /// Live snapshots across all streams.
    pub snapshots: usize,
    /// GC passes run.
    pub gc_runs: u64,
    /// Cumulative chunks freed by GC.
    pub freed_chunks_total: u64,
    /// Cumulative payload bytes freed by GC.
    pub freed_bytes_total: u64,
}

impl StoreReport {
    /// Dedup ratio: logical / physical (1.0 = no savings).
    pub fn dedup_ratio(&self) -> f64 {
        if self.physical_bytes == 0 {
            return 1.0;
        }
        self.logical_bytes as f64 / self.physical_bytes as f64
    }

    /// Live fraction of the resident footprint, in `[0, 1]`.
    pub fn live_fraction(&self) -> f64 {
        if self.physical_bytes == 0 {
            return 1.0;
        }
        self.live_bytes as f64 / self.physical_bytes as f64
    }
}

/// Per-stream snapshot state.
#[derive(Debug, Clone, Default)]
struct StreamState {
    next_generation: u64,
    snapshots: BTreeMap<u64, SnapshotManifest>,
}

/// A versioned content-addressed chunk store.
///
/// Chunk payloads are packed into fixed-size segments
/// (the internal segment log); a sharded [`ChunkIndex`] maps each digest to its
/// (segment, offset, length). On top of the flat store sit
/// **snapshots**: per-stream, per-generation [`SnapshotManifest`]s
/// recording the ordered chunk recipe of that generation.
/// [`restore`](ChunkStore::restore) reassembles any live generation and
/// verifies every payload against its digest;
/// [`expire`](ChunkStore::expire) drops old generations; and
/// [`gc`](ChunkStore::gc) mark-and-sweeps unreferenced chunks, then
/// compacts segments below the configured liveness threshold.
///
/// Storing the same content twice keeps one copy — the dedup behaviour
/// every byte of Inc-HDFS and the backup site relies on.
///
/// # Examples
///
/// ```
/// use shredder_hash::sha256;
/// use shredder_store::ChunkStore;
///
/// let mut store = ChunkStore::new();
/// let d = store.put(b"hello".as_slice().into());
/// assert_eq!(d, sha256(b"hello"));
/// store.put(b"hello".as_slice().into()); // dedup: no growth
/// assert_eq!(store.physical_bytes(), 5);
/// assert_eq!(store.logical_bytes(), 10);
/// ```
///
/// Snapshots, restore and GC:
///
/// ```
/// use shredder_store::ChunkStore;
///
/// let mut store = ChunkStore::new();
/// let a = store.put(b"generation one".as_slice().into());
/// let g0 = store.commit_snapshot("vm", &[(a, 14)]).unwrap();
/// let b = store.put(b"generation two".as_slice().into());
/// let g1 = store.commit_snapshot("vm", &[(b, 14)]).unwrap();
///
/// assert_eq!(store.restore("vm", g0).unwrap(), b"generation one");
/// store.expire("vm", g0);
/// let gc = store.gc();
/// assert_eq!(gc.freed_chunks, 1); // generation one's chunk
/// assert_eq!(store.restore("vm", g1).unwrap(), b"generation two");
/// assert!(store.restore("vm", g0).is_err()); // expired
/// ```
#[derive(Debug, Clone)]
pub struct ChunkStore {
    config: StoreConfig,
    log: SegmentLog,
    index: ChunkIndex<ChunkLoc>,
    streams: BTreeMap<String, StreamState>,
    logical_bytes: u64,
    dedup_hits: u64,
    gc_runs: u64,
    freed_chunks_total: u64,
    freed_bytes_total: u64,
}

impl ChunkStore {
    /// Creates an empty store with the default configuration.
    pub fn new() -> Self {
        ChunkStore::with_config(StoreConfig::default())
    }

    /// Creates an empty store.
    ///
    /// # Panics
    ///
    /// Panics if `segment_bytes` is zero or exceeds 4 GiB (chunk
    /// locations are 32-bit), `gc_threshold` is outside `[0, 1]`, or
    /// `retention` is `Some(0)` (which would expire a snapshot the
    /// moment it opens).
    pub fn with_config(config: StoreConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&config.gc_threshold),
            "gc threshold must be within [0, 1]"
        );
        assert!(
            config.retention != Some(0),
            "retention of 0 generations would expire every snapshot at open"
        );
        ChunkStore {
            log: SegmentLog::new(config.segment_bytes),
            config,
            index: ChunkIndex::new(),
            streams: BTreeMap::new(),
            logical_bytes: 0,
            dedup_hits: 0,
            gc_runs: 0,
            freed_chunks_total: 0,
            freed_bytes_total: 0,
        }
    }

    /// The store configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// Stores a chunk, returning its digest. Duplicate content is
    /// detected by digest and not stored again.
    pub fn put(&mut self, data: Bytes) -> Digest {
        let digest = sha256(&data);
        self.put_with_digest(digest, data);
        digest
    }

    /// Stores a chunk under a pre-computed digest (the common path: the
    /// Store thread already hashed the chunk).
    ///
    /// Returns `true` if the chunk was new.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `digest` does not match the data.
    pub fn put_with_digest(&mut self, digest: Digest, data: Bytes) -> bool {
        self.put_slice(digest, &data)
    }

    /// [`put_with_digest`](Self::put_with_digest) from a borrowed slice:
    /// the payload is only copied (into the segment log) when the chunk
    /// is new, so dedup hits on the hot ingest path allocate nothing.
    ///
    /// Returns `true` if the chunk was new.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `digest` does not match the data.
    pub fn put_slice(&mut self, digest: Digest, data: &[u8]) -> bool {
        debug_assert_eq!(digest, sha256(data), "digest mismatch");
        self.logical_bytes += data.len() as u64;
        if self.index.contains(&digest) {
            self.dedup_hits += 1;
            return false;
        }
        let loc = self.log.append(data);
        self.index.insert(digest, loc);
        true
    }

    /// Fetches a chunk by digest, copying it out as owned [`Bytes`].
    /// Read paths that only need to look at (or append from) the
    /// payload should prefer the copy-free
    /// [`read_chunk`](Self::read_chunk).
    pub fn get(&self, digest: &Digest) -> Option<Bytes> {
        self.read_chunk(digest).map(Bytes::copy_from_slice)
    }

    /// Borrowed, copy-free read of a chunk payload straight from the
    /// segment log.
    pub fn read_chunk(&self, digest: &Digest) -> Option<&[u8]> {
        let loc = *self.index.get(digest)?;
        self.log.read(loc)
    }

    /// True if the digest is stored.
    pub fn contains(&self, digest: &Digest) -> bool {
        self.index.contains(digest)
    }

    /// Number of distinct chunks stored.
    pub fn chunk_count(&self) -> usize {
        self.index.len()
    }

    /// The store's full chunk inventory — every resident `(digest,
    /// payload length)` pair, sorted by digest. This is what cross-store
    /// dedup analysis needs: duplicate bytes between two nodes are the
    /// lengths of the digests their inventories share.
    pub fn chunk_inventory(&self) -> Vec<(Digest, u64)> {
        let mut out: Vec<(Digest, u64)> = self
            .index
            .iter()
            .map(|(digest, loc)| (*digest, loc.byte_len()))
            .collect();
        out.sort_unstable_by_key(|(digest, _)| *digest);
        out
    }

    /// Bytes resident in segments (live chunks plus dead bytes GC has
    /// not yet reclaimed). Before any expiry this equals the deduped
    /// chunk bytes.
    pub fn physical_bytes(&self) -> u64 {
        self.log.resident_bytes()
    }

    /// Bytes referenced by live chunks.
    pub fn live_bytes(&self) -> u64 {
        self.log.live_bytes()
    }

    /// Bytes offered to the store (before dedup).
    pub fn logical_bytes(&self) -> u64 {
        self.logical_bytes
    }

    /// Number of puts that deduplicated.
    pub fn dedup_hits(&self) -> u64 {
        self.dedup_hits
    }

    /// Dedup ratio: logical / physical (1.0 = no savings).
    pub fn dedup_ratio(&self) -> f64 {
        if self.physical_bytes() == 0 {
            return 1.0;
        }
        self.logical_bytes as f64 / self.physical_bytes() as f64
    }

    /// Resident segment count.
    pub fn segment_count(&self) -> usize {
        self.log.segment_count()
    }

    // ----- Snapshots -----

    /// Opens a new (growable) snapshot for `stream`, returning its
    /// generation number. Chunks are attached with
    /// [`append_chunk`](Self::append_chunk); the manifest is live — and
    /// a GC root — from this moment. A configured
    /// [`retention`](StoreConfig::retention) is enforced here: opening
    /// generation `k` expires everything older than the latest `n`
    /// (the new, in-progress snapshot counts as one of the `n`).
    pub fn open_snapshot(&mut self, stream: &str) -> u64 {
        let retention = self.config.retention;
        let state = self.streams.entry(stream.to_string()).or_default();
        let generation = state.next_generation;
        state.next_generation += 1;
        state
            .snapshots
            .insert(generation, SnapshotManifest::new(stream, generation));
        if let Some(keep) = retention {
            Self::trim_stream(state, keep);
        }
        generation
    }

    /// Drops a stream's oldest snapshots until at most `keep` remain.
    fn trim_stream(state: &mut StreamState, keep: u64) -> usize {
        let mut dropped = 0;
        while state.snapshots.len() as u64 > keep && state.snapshots.pop_first().is_some() {
            dropped += 1;
        }
        dropped
    }

    /// Appends one chunk reference to an open snapshot.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownStream`] / [`StoreError::UnknownGeneration`]
    /// for a bad handle, [`StoreError::MissingChunk`] if the chunk is
    /// not stored, and [`StoreError::CorruptChunk`] if `len` contradicts
    /// the stored payload length.
    pub fn append_chunk(
        &mut self,
        stream: &str,
        generation: u64,
        digest: Digest,
        len: usize,
    ) -> Result<(), StoreError> {
        let loc = *self
            .index
            .get(&digest)
            .ok_or(StoreError::MissingChunk(digest))?;
        if loc.byte_len() != len as u64 {
            return Err(StoreError::CorruptChunk(digest));
        }
        let manifest = self
            .streams
            .get_mut(stream)
            .ok_or_else(|| StoreError::UnknownStream(stream.to_string()))?
            .snapshots
            .get_mut(&generation)
            .ok_or_else(|| StoreError::UnknownGeneration {
                stream: stream.to_string(),
                generation,
            })?;
        manifest.entries.push(ManifestEntry {
            digest,
            len: len as u32,
        });
        Ok(())
    }

    /// Commits a whole recipe as one new generation of `stream`.
    ///
    /// # Errors
    ///
    /// [`StoreError::MissingChunk`] / [`StoreError::CorruptChunk`] if
    /// any reference is invalid; the snapshot is not created in that
    /// case. [`StoreError::UnknownGeneration`] if a retention limit of
    /// zero expired the snapshot the moment it was opened.
    pub fn commit_snapshot(
        &mut self,
        stream: &str,
        recipe: &[(Digest, usize)],
    ) -> Result<u64, StoreError> {
        // Validate first so a bad recipe leaves no half-committed state.
        for &(digest, len) in recipe {
            let loc = self
                .index
                .get(&digest)
                .ok_or(StoreError::MissingChunk(digest))?;
            if loc.byte_len() != len as u64 {
                return Err(StoreError::CorruptChunk(digest));
            }
        }
        let generation = self.open_snapshot(stream);
        // With retention 0 the snapshot we just opened is trimmed
        // immediately; surface that as an error rather than panicking.
        let manifest = self
            .streams
            .get_mut(stream)
            .ok_or_else(|| StoreError::UnknownStream(stream.to_string()))?
            .snapshots
            .get_mut(&generation)
            .ok_or_else(|| StoreError::UnknownGeneration {
                stream: stream.to_string(),
                generation,
            })?;
        manifest
            .entries
            .extend(recipe.iter().map(|&(digest, len)| ManifestEntry {
                digest,
                len: len as u32,
            }));
        Ok(generation)
    }

    /// The manifest of one live generation.
    pub fn manifest(&self, stream: &str, generation: u64) -> Option<&SnapshotManifest> {
        self.streams.get(stream)?.snapshots.get(&generation)
    }

    /// Live generation numbers of a stream, ascending.
    pub fn generations(&self, stream: &str) -> Vec<u64> {
        self.streams
            .get(stream)
            .map(|s| s.snapshots.keys().copied().collect())
            .unwrap_or_default()
    }

    /// Stream names with at least one live snapshot, sorted.
    pub fn stream_names(&self) -> Vec<&str> {
        self.streams
            .iter()
            .filter(|(_, s)| !s.snapshots.is_empty())
            .map(|(name, _)| name.as_str())
            .collect()
    }

    /// Live snapshots across all streams.
    pub fn snapshot_count(&self) -> usize {
        self.streams.values().map(|s| s.snapshots.len()).sum()
    }

    // ----- Restore -----

    /// Reassembles one live generation, verifying every chunk payload
    /// against its recorded digest and length — the read-back integrity
    /// path a computational-storage deployment must exercise.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownStream`] / [`StoreError::UnknownGeneration`]
    /// for dead handles (including expired generations),
    /// [`StoreError::MissingChunk`] if a referenced chunk is gone, and
    /// [`StoreError::CorruptChunk`] if a payload fails verification.
    pub fn restore(&self, stream: &str, generation: u64) -> Result<Vec<u8>, StoreError> {
        let manifest = self
            .streams
            .get(stream)
            .ok_or_else(|| StoreError::UnknownStream(stream.to_string()))?
            .snapshots
            .get(&generation)
            .ok_or_else(|| StoreError::UnknownGeneration {
                stream: stream.to_string(),
                generation,
            })?;
        let mut out = Vec::with_capacity(manifest.logical_bytes() as usize);
        for entry in &manifest.entries {
            let loc = *self
                .index
                .get(&entry.digest)
                .ok_or(StoreError::MissingChunk(entry.digest))?;
            let payload = self
                .log
                .read(loc)
                .ok_or(StoreError::MissingChunk(entry.digest))?;
            if payload.len() != entry.len as usize || sha256(payload) != entry.digest {
                return Err(StoreError::CorruptChunk(entry.digest));
            }
            out.extend_from_slice(payload);
        }
        Ok(out)
    }

    // ----- Expiry and GC -----

    /// Expires every generation of `stream` up to and including
    /// `through`. Returns how many snapshots were dropped. The chunk
    /// payloads stay resident until [`gc`](Self::gc) runs.
    pub fn expire(&mut self, stream: &str, through: u64) -> usize {
        let Some(state) = self.streams.get_mut(stream) else {
            return 0;
        };
        let keep = state.snapshots.split_off(&(through + 1));
        let dropped = state.snapshots.len();
        state.snapshots = keep;
        dropped
    }

    /// Applies the configured retention policy to every stream: keeps
    /// only the latest `retention` generations. Retention is already
    /// enforced on [`open_snapshot`](Self::open_snapshot); this entry
    /// point re-applies it across all streams (e.g. after lowering the
    /// policy on a long-lived store). Returns how many snapshots
    /// expired. A `retention` of `None` keeps everything.
    pub fn apply_retention(&mut self) -> usize {
        let Some(keep) = self.config.retention else {
            return 0;
        };
        self.streams
            .values_mut()
            .map(|state| Self::trim_stream(state, keep))
            .sum()
    }

    /// Mark-and-sweep garbage collection with segment compaction.
    ///
    /// *Mark*: every digest referenced by any live manifest is live.
    /// *Sweep*: unreferenced chunks leave the index and their segment's
    /// live count. *Compact*: sealed segments whose live fraction fell
    /// below [`StoreConfig::gc_threshold`] get their survivors rewritten
    /// to the log head and are retired, reclaiming their bytes.
    ///
    /// The sweep is deterministic (processed in digest order), so two
    /// identical stores produce identical [`GcReport`]s.
    pub fn gc(&mut self) -> GcReport {
        let physical_before = self.log.resident_bytes();

        // Mark.
        let mut live: HashSet<Digest> = HashSet::new();
        for state in self.streams.values() {
            for manifest in state.snapshots.values() {
                for entry in &manifest.entries {
                    live.insert(entry.digest);
                }
            }
        }

        // Sweep, in digest order for determinism.
        let mut dead: Vec<(Digest, ChunkLoc)> = self
            .index
            .iter()
            .filter(|(d, _)| !live.contains(d))
            .map(|(d, loc)| (*d, *loc))
            .collect();
        dead.sort_by_key(|(d, _)| *d);
        let mut freed_bytes = 0u64;
        let mut freed_digests = Vec::with_capacity(dead.len());
        for (digest, loc) in dead {
            self.index.remove(&digest);
            self.log.mark_dead(loc);
            freed_bytes += loc.byte_len();
            freed_digests.push(digest);
        }

        // Compact segments below the liveness threshold (fully-dead
        // segments always qualify — retiring them is free even when
        // compaction proper is disabled at threshold 0.0). The open
        // append target is sealed first when the sweep left it mostly
        // dead, so its bytes are reclaimable too. Survivors move to the
        // log head; then the segment retires wholesale.
        if self
            .log
            .wants_compaction(self.log.current_segment(), self.config.gc_threshold)
        {
            self.log.seal_current();
        }
        let victims = self.log.compaction_victims(self.config.gc_threshold);
        let mut moved_bytes = 0u64;
        if !victims.is_empty() {
            let victim_set: HashSet<u32> = victims.iter().map(|&v| v as u32).collect();
            let mut survivors: Vec<(Digest, ChunkLoc)> = self
                .index
                .iter()
                .filter(|(_, loc)| victim_set.contains(&loc.segment))
                .map(|(d, loc)| (*d, *loc))
                .collect();
            survivors.sort_by_key(|(d, _)| *d);
            for (digest, loc) in survivors {
                let payload = self
                    .log
                    .read(loc)
                    // shredder-lint: allow(R5) — survivors were selected from the index, whose locations always point at resident victim segments
                    .expect("survivor payload resident")
                    .to_vec();
                let new_loc = self.log.append(&payload);
                self.log.mark_dead(loc);
                // shredder-lint: allow(R5) — `digest` was copied out of the index four lines up and nothing removed it since
                *self.index.get_mut(&digest).expect("survivor indexed") = new_loc;
                moved_bytes += loc.byte_len();
            }
            for &victim in &victims {
                self.log.retire(victim);
            }
        }

        self.gc_runs += 1;
        self.freed_chunks_total += freed_digests.len() as u64;
        self.freed_bytes_total += freed_bytes;
        GcReport {
            freed_chunks: freed_digests.len(),
            freed_bytes,
            freed_digests,
            compacted_segments: victims.len(),
            moved_bytes,
            physical_before,
            physical_after: self.log.resident_bytes(),
        }
    }

    // ----- Integrity: scrub, corruption, crash recovery -----

    /// Verifies every indexed chunk payload against its recorded digest
    /// and length — the background integrity pass a dedup store runs to
    /// catch silent corruption before a restore trips over it.
    ///
    /// Chunks are scanned in digest order, so two identical stores
    /// produce identical reports. A clean pass returns the scan totals;
    /// a dirty pass returns [`StoreError::ScrubFailed`] carrying the
    /// same report with the corrupt digests listed (sorted).
    ///
    /// # Errors
    ///
    /// [`StoreError::ScrubFailed`] if any chunk fails verification.
    pub fn scrub(&self) -> Result<ScrubReport, StoreError> {
        let mut entries: Vec<(Digest, ChunkLoc)> =
            self.index.iter().map(|(d, loc)| (*d, *loc)).collect();
        entries.sort_by_key(|(d, _)| *d);
        let mut report = ScrubReport::default();
        for (digest, loc) in entries {
            report.chunks_scanned += 1;
            report.bytes_scanned += loc.byte_len();
            let ok = self.log.read(loc).is_some_and(|payload| {
                payload.len() == loc.len as usize && sha256(payload) == digest
            });
            if !ok {
                report.corrupt.push(digest);
            }
        }
        if report.corrupt.is_empty() {
            Ok(report)
        } else {
            Err(StoreError::ScrubFailed(report))
        }
    }

    /// Fault injection: flips one bit of a stored chunk's payload in
    /// place, leaving the index and digests untouched — exactly the
    /// silent media corruption [`scrub`](Self::scrub) exists to catch.
    /// The bit index wraps modulo the payload's bit length. Returns
    /// `false` (and does nothing) if the digest is not stored.
    pub fn corrupt_chunk(&mut self, digest: &Digest, bit: usize) -> bool {
        match self.index.get(digest) {
            Some(&loc) => {
                self.log.flip_bit(loc, bit);
                true
            }
            None => false,
        }
    }

    /// Fault injection: simulates a crash that tore the final log write
    /// by dropping up to `bytes` off the end of the open segment. The
    /// index still references the torn payloads — the inconsistent
    /// state [`recover`](Self::recover) repairs on "reopen". Returns
    /// how many bytes were actually torn off (capped at the open
    /// segment's size; sealed segments are never torn).
    pub fn tear_log_tail(&mut self, bytes: u64) -> u64 {
        self.log.truncate_tail(bytes)
    }

    /// Crash-consistent recovery: the "reopen" pass after a torn final
    /// write ([`tear_log_tail`](Self::tear_log_tail)). Every index
    /// entry whose payload is no longer readable is dropped (in digest
    /// order) and its bytes are written off, leaving the store
    /// consistent at the last durable prefix. The caller re-ships the
    /// dropped chunks — content addressing makes the re-put land
    /// bit-identically.
    pub fn recover(&mut self) -> RecoveryReport {
        let mut entries: Vec<(Digest, ChunkLoc)> =
            self.index.iter().map(|(d, loc)| (*d, *loc)).collect();
        entries.sort_by_key(|(d, _)| *d);
        let mut report = RecoveryReport::default();
        for (digest, loc) in entries {
            report.chunks_checked += 1;
            if self.log.read(loc).is_none() {
                self.index.remove(&digest);
                self.log.mark_dead(loc);
                report.dropped_digests.push(digest);
                report.dropped_bytes += loc.byte_len();
            }
        }
        report
    }

    /// Replica repair: rebuilds this store's missing snapshots from a
    /// peer replica — the entry point a rejoining cluster node uses
    /// after losing its local state.
    ///
    /// Every peer snapshot absent locally (matched by stream name *and*
    /// generation number) is installed under the same generation, and
    /// every chunk its manifest references that this store does not
    /// hold is copied over, digest-verified on the way in. Chunks the
    /// survivor already holds are deduplicated (counted, not copied),
    /// so repair traffic is bounded by the genuinely lost bytes.
    /// Snapshots that already exist locally are left untouched.
    ///
    /// The pass is deterministic: peers are walked in stream/generation
    /// order, so repairing the same pair of stores always produces the
    /// same [`RepairReport`] and the same post-repair state.
    ///
    /// # Errors
    ///
    /// [`StoreError::MissingChunk`] if the peer's manifest references a
    /// chunk the peer itself no longer holds, and
    /// [`StoreError::CorruptChunk`] if a copied payload fails digest or
    /// length verification. The failing snapshot is not installed;
    /// snapshots installed before the failure remain (each snapshot is
    /// repaired atomically, the pass is resumable).
    pub fn repair_from(&mut self, peer: &ChunkStore) -> Result<RepairReport, StoreError> {
        let mut report = RepairReport::default();
        let targets: Vec<(String, u64)> = peer
            .streams
            .iter()
            .flat_map(|(stream, state)| {
                state
                    .snapshots
                    .keys()
                    .map(move |&generation| (stream.clone(), generation))
            })
            .collect();
        for (stream, generation) in targets {
            report.absorb(self.install_snapshot(&stream, generation, peer)?);
        }
        Ok(report)
    }

    /// Installs one of `peer`'s snapshots — `generation` of `stream` —
    /// into this store, copying (digest-verified) whatever chunks its
    /// manifest references that this store does not hold. The snapshot
    /// lands under the *same* generation number, and the stream's
    /// generation counter advances past it, so primary and replica
    /// numbering stay aligned. A no-op (default report) when this store
    /// already holds that generation.
    ///
    /// This is the single-shipment building block of
    /// [`repair_from`](Self::repair_from): a replication layer calls it
    /// once per committed segment shipment, repair calls it for every
    /// snapshot a rejoined node is missing.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownStream`] / [`StoreError::UnknownGeneration`]
    /// if `peer` does not hold the requested snapshot,
    /// [`StoreError::MissingChunk`] if its manifest references a chunk
    /// `peer` no longer holds, and [`StoreError::CorruptChunk`] if a
    /// copied payload fails digest or length verification. On error
    /// nothing is installed (chunks are verified before any state
    /// changes).
    pub fn install_snapshot(
        &mut self,
        stream: &str,
        generation: u64,
        peer: &ChunkStore,
    ) -> Result<RepairReport, StoreError> {
        let manifest = peer
            .streams
            .get(stream)
            .ok_or_else(|| StoreError::UnknownStream(stream.to_string()))?
            .snapshots
            .get(&generation)
            .ok_or_else(|| StoreError::UnknownGeneration {
                stream: stream.to_string(),
                generation,
            })?;
        let mut report = RepairReport::default();
        if self
            .streams
            .get(stream)
            .is_some_and(|s| s.snapshots.contains_key(&generation))
        {
            return Ok(report);
        }
        // Verify-and-copy the missing payloads before touching local
        // snapshot state, so a corrupt peer chunk cannot leave a
        // half-installed manifest behind.
        let mut incoming: Vec<(Digest, Bytes)> = Vec::new();
        let mut seen = HashSet::new();
        for entry in &manifest.entries {
            if self.index.contains(&entry.digest) || !seen.insert(entry.digest) {
                continue;
            }
            let loc = *peer
                .index
                .get(&entry.digest)
                .ok_or(StoreError::MissingChunk(entry.digest))?;
            let payload = peer
                .log
                .read(loc)
                .ok_or(StoreError::MissingChunk(entry.digest))?;
            if payload.len() != entry.len as usize || sha256(payload) != entry.digest {
                return Err(StoreError::CorruptChunk(entry.digest));
            }
            incoming.push((entry.digest, Bytes::copy_from_slice(payload)));
        }
        report.chunks_already_present += manifest.entries.len().saturating_sub(incoming.len());
        for (digest, payload) in incoming {
            report.chunks_copied += 1;
            report.bytes_copied += payload.len() as u64;
            let loc = self.log.append(&payload);
            self.index.insert(digest, loc);
            self.logical_bytes += loc.byte_len();
        }
        let state = self.streams.entry(stream.to_string()).or_default();
        state.snapshots.insert(generation, manifest.clone());
        state.next_generation = state.next_generation.max(generation + 1);
        report.snapshots_installed += 1;
        report.streams_repaired.push(stream.to_string());
        Ok(report)
    }

    /// The aggregate store report.
    pub fn report(&self) -> StoreReport {
        StoreReport {
            chunk_count: self.index.len(),
            segment_count: self.log.segment_count(),
            physical_bytes: self.physical_bytes(),
            live_bytes: self.live_bytes(),
            logical_bytes: self.logical_bytes,
            dedup_hits: self.dedup_hits,
            streams: self
                .streams
                .values()
                .filter(|s| !s.snapshots.is_empty())
                .count(),
            snapshots: self.snapshot_count(),
            gc_runs: self.gc_runs,
            freed_chunks_total: self.freed_chunks_total,
            freed_bytes_total: self.freed_bytes_total,
        }
    }

    /// Exports the store's aggregate state into a telemetry
    /// [`MetricsRegistry`]: gauges for the live inventory (chunks,
    /// segments, bytes, streams, snapshots) and counters for the
    /// monotonic totals (dedup hits, GC runs, freed chunks/bytes).
    ///
    /// The export is a point-in-time snapshot of [`report`]: counters
    /// are *set* by adding the full total, so call it once per registry
    /// (a fresh registry per dump), not repeatedly into the same one.
    ///
    /// [`report`]: ChunkStore::report
    pub fn export_metrics(&self, metrics: &mut MetricsRegistry) {
        let r = self.report();
        metrics.set_gauge("shredder_store_chunks", r.chunk_count as f64);
        metrics.set_gauge("shredder_store_segments", r.segment_count as f64);
        metrics.set_gauge("shredder_store_physical_bytes", r.physical_bytes as f64);
        metrics.set_gauge("shredder_store_live_bytes", r.live_bytes as f64);
        metrics.set_gauge("shredder_store_logical_bytes", r.logical_bytes as f64);
        metrics.set_gauge("shredder_store_streams", r.streams as f64);
        metrics.set_gauge("shredder_store_snapshots", r.snapshots as f64);
        metrics.add("shredder_store_dedup_hits", r.dedup_hits);
        metrics.add("shredder_store_gc_runs", r.gc_runs);
        metrics.add("shredder_store_freed_chunks_total", r.freed_chunks_total);
        metrics.add("shredder_store_freed_bytes_total", r.freed_bytes_total);
    }
}

impl Default for ChunkStore {
    fn default() -> Self {
        ChunkStore::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(len: usize, seed: u8) -> Bytes {
        let v: Vec<u8> = (0..len)
            .map(|i| (i as u8).wrapping_mul(seed).wrapping_add(seed))
            .collect();
        v.into()
    }

    #[test]
    fn put_get_roundtrip() {
        let mut s = ChunkStore::new();
        let d = s.put(Bytes::from_static(b"abc"));
        assert_eq!(s.get(&d).unwrap(), Bytes::from_static(b"abc"));
        assert!(s.contains(&d));
        assert_eq!(s.chunk_count(), 1);
    }

    #[test]
    fn export_metrics_mirrors_report() {
        let mut s = ChunkStore::new();
        s.put(Bytes::from_static(b"abc"));
        s.put(Bytes::from_static(b"abc"));
        let mut m = MetricsRegistry::default();
        s.export_metrics(&mut m);
        assert_eq!(m.gauge("shredder_store_chunks"), Some(1.0));
        assert_eq!(m.gauge("shredder_store_live_bytes"), Some(3.0));
        assert_eq!(m.counter("shredder_store_dedup_hits"), 1);
        assert_eq!(m.counter("shredder_store_gc_runs"), 0);
    }

    #[test]
    fn duplicate_content_stored_once() {
        let mut s = ChunkStore::new();
        let d1 = s.put(Bytes::from_static(b"same"));
        let d2 = s.put(Bytes::from_static(b"same"));
        assert_eq!(d1, d2);
        assert_eq!(s.chunk_count(), 1);
        assert_eq!(s.physical_bytes(), 4);
        assert_eq!(s.logical_bytes(), 8);
        assert_eq!(s.dedup_hits(), 1);
        assert!((s.dedup_ratio() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn missing_digest_returns_none() {
        let s = ChunkStore::new();
        assert!(s.get(&Digest::ZERO).is_none());
        assert!(!s.contains(&Digest::ZERO));
        assert_eq!(s.dedup_ratio(), 1.0);
    }

    #[test]
    fn repair_from_rebuilds_missing_snapshots_digest_verified() {
        // Peer (the replica) holds two generations of "vm"; the local
        // store (the rejoined node) is empty except for one shared
        // chunk, which must dedup instead of copying.
        let mut peer = ChunkStore::new();
        let a = payload(1000, 3);
        let b = payload(500, 7);
        let da = peer.put(a.clone());
        let db = peer.put(b.clone());
        let g0 = peer.commit_snapshot("vm", &[(da, 1000)]).unwrap();
        let g1 = peer
            .commit_snapshot("vm", &[(da, 1000), (db, 500)])
            .unwrap();

        let mut local = ChunkStore::new();
        local.put(a.clone()); // already resident → dedup, not copied
        let report = local.repair_from(&peer).unwrap();
        assert_eq!(report.snapshots_installed, 2);
        assert_eq!(report.streams_repaired, vec!["vm".to_string()]);
        assert_eq!(report.chunks_copied, 1); // only `b` moved
        assert_eq!(report.bytes_copied, 500);
        assert_eq!(report.chunks_already_present, 2); // `a` twice
        assert_eq!(local.restore("vm", g0).unwrap(), a.to_vec());
        assert_eq!(
            local.restore("vm", g1).unwrap(),
            [a.to_vec(), b.to_vec()].concat()
        );
        // Repair is idempotent and next_generation advanced past the
        // installed ones.
        let again = local.repair_from(&peer).unwrap();
        assert_eq!(again, RepairReport::default());
        let g2 = local.open_snapshot("vm");
        assert!(g2 > g1);
    }

    #[test]
    fn repair_from_rejects_corrupt_peer_chunks() {
        let mut peer = ChunkStore::new();
        let a = payload(800, 5);
        let da = peer.put(a);
        peer.commit_snapshot("vm", &[(da, 800)]).unwrap();
        peer.corrupt_chunk(&da, 17);
        let mut local = ChunkStore::new();
        assert_eq!(local.repair_from(&peer), Err(StoreError::CorruptChunk(da)));
        // Nothing half-installed.
        assert_eq!(local.snapshot_count(), 0);
        assert_eq!(local.chunk_count(), 0);
    }

    #[test]
    fn install_snapshot_ships_one_generation_and_dedups() {
        let mut peer = ChunkStore::new();
        let a = payload(1000, 3);
        let b = payload(500, 7);
        let da = peer.put(a.clone());
        let db = peer.put(b.clone());
        let g0 = peer.commit_snapshot("vm", &[(da, 1000)]).unwrap();
        let g1 = peer
            .commit_snapshot("vm", &[(da, 1000), (db, 500)])
            .unwrap();

        let mut local = ChunkStore::new();
        let r1 = local.install_snapshot("vm", g1, &peer).unwrap();
        assert_eq!(r1.snapshots_installed, 1);
        assert_eq!(r1.chunks_copied, 2);
        assert_eq!(r1.bytes_copied, 1500);
        assert_eq!(
            local.restore("vm", g1).unwrap(),
            [a.to_vec(), b.to_vec()].concat()
        );
        // The earlier generation ships later, dedups fully, and the
        // generation counter already cleared it.
        let r0 = local.install_snapshot("vm", g0, &peer).unwrap();
        assert_eq!(r0.chunks_copied, 0);
        assert_eq!(r0.chunks_already_present, 1);
        assert_eq!(local.restore("vm", g0).unwrap(), a.to_vec());
        // Reinstalling is a no-op; unknown handles are typed errors.
        assert_eq!(
            local.install_snapshot("vm", g1, &peer).unwrap(),
            RepairReport::default()
        );
        assert!(matches!(
            local.install_snapshot("vm", 99, &peer),
            Err(StoreError::UnknownGeneration { .. })
        ));
        assert!(matches!(
            local.install_snapshot("nope", 0, &peer),
            Err(StoreError::UnknownStream(_))
        ));
        // Inventories now match: same digests, same lengths.
        assert_eq!(local.chunk_inventory(), peer.chunk_inventory());
        assert_eq!(local.chunk_inventory().len(), 2);
    }

    #[test]
    fn snapshot_commit_and_restore_verified() {
        let mut s = ChunkStore::new();
        let a = payload(1000, 3);
        let b = payload(500, 7);
        let da = s.put(a.clone());
        let db = s.put(b.clone());
        let gen = s
            .commit_snapshot("vm", &[(da, a.len()), (db, b.len()), (da, a.len())])
            .unwrap();
        let mut expected = a.to_vec();
        expected.extend_from_slice(&b);
        expected.extend_from_slice(&a);
        assert_eq!(s.restore("vm", gen).unwrap(), expected);
        assert_eq!(s.manifest("vm", gen).unwrap().chunk_count(), 3);
        assert_eq!(
            s.manifest("vm", gen).unwrap().logical_bytes(),
            expected.len() as u64
        );
    }

    #[test]
    fn commit_rejects_bad_recipes_atomically() {
        let mut s = ChunkStore::new();
        let d = s.put(payload(100, 1));
        assert_eq!(
            s.commit_snapshot("vm", &[(d, 100), (Digest::ZERO, 5)]),
            Err(StoreError::MissingChunk(Digest::ZERO))
        );
        assert_eq!(
            s.commit_snapshot("vm", &[(d, 99)]),
            Err(StoreError::CorruptChunk(d))
        );
        assert!(s.generations("vm").is_empty(), "no half-committed snapshot");
        // Next successful commit still starts at generation 0.
        assert_eq!(s.commit_snapshot("vm", &[(d, 100)]).unwrap(), 0);
    }

    #[test]
    fn open_snapshot_grows_incrementally() {
        let mut s = ChunkStore::new();
        let a = payload(64, 2);
        let da = s.put(a.clone());
        let gen = s.open_snapshot("images");
        s.append_chunk("images", gen, da, a.len()).unwrap();
        s.append_chunk("images", gen, da, a.len()).unwrap();
        let mut expected = a.to_vec();
        expected.extend_from_slice(&a);
        assert_eq!(s.restore("images", gen).unwrap(), expected);
        assert_eq!(
            s.append_chunk("images", 9, da, a.len()),
            Err(StoreError::UnknownGeneration {
                stream: "images".into(),
                generation: 9
            })
        );
        assert!(matches!(
            s.append_chunk("nope", gen, da, a.len()),
            Err(StoreError::MissingChunk(_)) | Err(StoreError::UnknownStream(_))
        ));
    }

    #[test]
    fn restore_errors_on_unknown_handles() {
        let s = ChunkStore::new();
        assert_eq!(
            s.restore("vm", 0),
            Err(StoreError::UnknownStream("vm".into()))
        );
    }

    #[test]
    fn expire_then_gc_reclaims_unique_chunks() {
        let mut s = ChunkStore::with_config(StoreConfig {
            segment_bytes: 256,
            gc_threshold: 0.6,
            retention: None,
        });
        let shared = payload(128, 5);
        let only_old = payload(128, 6);
        let only_new = payload(128, 7);
        let ds = s.put(shared.clone());
        let dold = s.put(only_old.clone());
        let g0 = s.commit_snapshot("vm", &[(ds, 128), (dold, 128)]).unwrap();
        let dnew = s.put(only_new.clone());
        let g1 = s.commit_snapshot("vm", &[(ds, 128), (dnew, 128)]).unwrap();

        assert_eq!(s.expire("vm", g0), 1);
        let gc = s.gc();
        assert_eq!(gc.freed_chunks, 1);
        assert_eq!(gc.freed_bytes, 128);
        assert_eq!(gc.freed_digests, vec![dold]);
        assert!(gc.reclaimed_bytes() >= 128, "{gc:?}");
        assert!(!s.contains(&dold));
        assert!(s.contains(&ds));

        // The live generation still restores, fully verified.
        let mut expected = shared.to_vec();
        expected.extend_from_slice(&only_new);
        assert_eq!(s.restore("vm", g1).unwrap(), expected);
        assert!(matches!(
            s.restore("vm", g0),
            Err(StoreError::UnknownGeneration { .. })
        ));
    }

    #[test]
    fn compaction_rewrites_survivors_and_retires_segments() {
        // Small segments: each holds two 100-byte chunks.
        let mut s = ChunkStore::with_config(StoreConfig {
            segment_bytes: 200,
            gc_threshold: 0.6,
            retention: None,
        });
        let chunks: Vec<(Digest, Bytes)> = (0..6u8)
            .map(|i| {
                let p = payload(100, 10 + i);
                (s.put(p.clone()), p)
            })
            .collect();
        let recipe: Vec<(Digest, usize)> = chunks.iter().map(|(d, p)| (*d, p.len())).collect();
        let g0 = s.commit_snapshot("vm", &recipe).unwrap();
        // Keep only chunks 0 and 2 live in a second generation.
        let g1 = s.commit_snapshot("vm", &[recipe[0], recipe[2]]).unwrap();
        s.expire("vm", g0);

        let physical_before = s.physical_bytes();
        assert_eq!(physical_before, 600);
        let gc = s.gc();
        assert_eq!(gc.freed_chunks, 4);
        assert_eq!(gc.freed_bytes, 400);
        // Chunks 0 and 2 lived in half-dead segments: both rewritten.
        assert!(gc.compacted_segments >= 1, "{gc:?}");
        assert_eq!(s.live_bytes(), 200);
        assert_eq!(s.physical_bytes(), s.live_bytes(), "fully compacted");
        assert!(gc.reclaimed_bytes() == 400, "{gc:?}");

        // Rewritten chunks still restore bit-identical.
        let mut expected = chunks[0].1.to_vec();
        expected.extend_from_slice(&chunks[2].1);
        assert_eq!(s.restore("vm", g1).unwrap(), expected);
    }

    #[test]
    fn threshold_zero_still_retires_fully_dead_segments() {
        // The documented contract: 0.0 disables compaction proper, but
        // fully-dead segments are still retired (retiring costs no
        // moves). Regression: strict `< 0.0` used to keep them forever.
        let mut s = ChunkStore::with_config(StoreConfig {
            segment_bytes: 64,
            gc_threshold: 0.0,
            retention: None,
        });
        let half_live: Vec<(Digest, usize)> =
            (0..2u8).map(|i| (s.put(payload(64, 40 + i)), 64)).collect();
        let g0 = s.commit_snapshot("vm", &half_live).unwrap();
        let g1 = s.commit_snapshot("vm", &half_live[..1]).unwrap();
        s.expire("vm", g0);

        let gc = s.gc();
        assert_eq!(gc.freed_chunks, 1);
        // The fully-dead segment retired; the half-live one did not
        // (no compaction at threshold 0.0).
        assert_eq!(gc.compacted_segments, 1);
        assert_eq!(gc.moved_bytes, 0, "threshold 0.0 never moves chunks");
        assert_eq!(gc.reclaimed_bytes(), 64);
        assert_eq!(s.restore("vm", g1).unwrap(), payload(64, 40).to_vec());
    }

    #[test]
    fn put_slice_matches_put_with_digest() {
        let mut s = ChunkStore::new();
        let data = payload(128, 3);
        let digest = sha256(&data);
        assert!(s.put_slice(digest, &data));
        assert!(!s.put_slice(digest, &data));
        assert!(!s.put_with_digest(digest, data.clone()));
        assert_eq!(s.dedup_hits(), 2);
        assert_eq!(s.logical_bytes(), 384);
        assert_eq!(s.physical_bytes(), 128);
        assert_eq!(s.get(&digest).unwrap(), data);
    }

    #[test]
    fn retention_expires_old_generations_automatically() {
        let mut s = ChunkStore::with_config(StoreConfig {
            retention: Some(2),
            ..StoreConfig::default()
        });
        let d = s.put(payload(50, 1));
        for _ in 0..5 {
            s.commit_snapshot("vm", &[(d, 50)]).unwrap();
        }
        // Retention was enforced at every commit: only the latest two
        // generations survive, with no explicit apply call.
        assert_eq!(s.generations("vm"), vec![3, 4]);
        assert_eq!(s.apply_retention(), 0, "already within policy");
        // Chunk still referenced: GC frees nothing.
        let gc = s.gc();
        assert_eq!(gc.freed_chunks, 0);
        assert!(s.contains(&d));
    }

    #[test]
    #[should_panic(expected = "retention of 0")]
    fn zero_retention_panics() {
        let _ = ChunkStore::with_config(StoreConfig {
            retention: Some(0),
            ..StoreConfig::default()
        });
    }

    #[test]
    #[should_panic(expected = "4 GiB")]
    fn oversized_segment_config_panics() {
        let _ = ChunkStore::with_config(StoreConfig {
            segment_bytes: (u32::MAX as usize) + 1,
            ..StoreConfig::default()
        });
    }

    #[test]
    fn read_chunk_borrows_without_copy() {
        let mut s = ChunkStore::new();
        let data = payload(64, 9);
        let d = s.put(data.clone());
        assert_eq!(s.read_chunk(&d).unwrap(), &data[..]);
        assert!(s.read_chunk(&Digest::ZERO).is_none());
    }

    #[test]
    fn gc_is_deterministic() {
        let build = || {
            let mut s = ChunkStore::with_config(StoreConfig {
                segment_bytes: 300,
                gc_threshold: 0.7,
                retention: None,
            });
            let recipe: Vec<(Digest, usize)> = (0..20u8)
                .map(|i| (s.put(payload(60 + i as usize, i)), 60 + i as usize))
                .collect();
            s.commit_snapshot("vm", &recipe).unwrap();
            s.commit_snapshot("vm", &recipe[..5]).unwrap();
            s.expire("vm", 0);
            s
        };
        let mut a = build();
        let mut b = build();
        let ra = a.gc();
        let rb = b.gc();
        assert_eq!(ra, rb);
        assert_eq!(a.restore("vm", 1).unwrap(), b.restore("vm", 1).unwrap());
    }

    #[test]
    fn report_accounts_everything() {
        let mut s = ChunkStore::new();
        let d = s.put(payload(100, 1));
        s.put(payload(100, 1));
        s.commit_snapshot("a", &[(d, 100)]).unwrap();
        s.commit_snapshot("b", &[(d, 100)]).unwrap();
        let r = s.report();
        assert_eq!(r.chunk_count, 1);
        assert_eq!(r.physical_bytes, 100);
        assert_eq!(r.logical_bytes, 200);
        assert_eq!(r.dedup_hits, 1);
        assert_eq!(r.streams, 2);
        assert_eq!(r.snapshots, 2);
        assert_eq!(r.gc_runs, 0);
        assert!((r.dedup_ratio() - 2.0).abs() < 1e-9);
        assert_eq!(r.live_fraction(), 1.0);

        s.expire("a", 0);
        s.expire("b", 0);
        let gc = s.gc();
        assert_eq!(gc.freed_chunks, 1);
        let r = s.report();
        assert_eq!(r.streams, 0);
        assert_eq!(r.gc_runs, 1);
        assert_eq!(r.freed_chunks_total, 1);
        assert_eq!(r.freed_bytes_total, 100);
        assert_eq!(r.physical_bytes, 0);
    }

    #[test]
    #[should_panic(expected = "within [0, 1]")]
    fn bad_threshold_panics() {
        let _ = ChunkStore::with_config(StoreConfig {
            gc_threshold: 1.5,
            ..StoreConfig::default()
        });
    }

    #[test]
    fn scrub_clean_store_reports_totals() {
        let mut s = ChunkStore::new();
        s.put(payload(100, 1));
        s.put(payload(50, 2));
        let r = s.scrub().unwrap();
        assert_eq!(r.chunks_scanned, 2);
        assert_eq!(r.bytes_scanned, 150);
        assert!(r.corrupt.is_empty());
    }

    #[test]
    fn scrub_catches_flipped_bit() {
        let mut s = ChunkStore::new();
        let good = s.put(payload(100, 1));
        let bad = s.put(payload(50, 2));
        assert!(s.corrupt_chunk(&bad, 123));
        assert!(!s.corrupt_chunk(&Digest::ZERO, 0));
        let err = s.scrub().unwrap_err();
        let StoreError::ScrubFailed(r) = err else {
            panic!("expected ScrubFailed");
        };
        assert_eq!(r.chunks_scanned, 2);
        assert_eq!(r.corrupt, vec![bad]);
        // Untouched chunks still verify; a second flip heals the chunk.
        assert!(s.corrupt_chunk(&bad, 123));
        let r = s.scrub().unwrap();
        assert_eq!(r.chunks_scanned, 2);
        assert!(s.contains(&good));
    }

    #[test]
    fn corrupt_chunk_fails_restore_too() {
        let mut s = ChunkStore::new();
        let data = payload(200, 5);
        let d = s.put(data.clone());
        let gen = s.commit_snapshot("vm", &[(d, data.len())]).unwrap();
        assert!(s.corrupt_chunk(&d, 7));
        assert_eq!(s.restore("vm", gen), Err(StoreError::CorruptChunk(d)));
    }

    #[test]
    fn torn_tail_recovery_drops_lost_chunks_and_reput_restores() {
        let mut s = ChunkStore::with_config(StoreConfig {
            segment_bytes: 1 << 20, // everything in one open segment
            ..StoreConfig::default()
        });
        let a = payload(100, 1);
        let b = payload(80, 2);
        let c = payload(60, 3);
        let da = s.put(a.clone());
        let db = s.put(b.clone());
        let dc = s.put(c.clone());
        let gen = s
            .commit_snapshot("vm", &[(da, 100), (db, 80), (dc, 60)])
            .unwrap();

        // Crash tears the final chunk (and part of the one before it).
        assert_eq!(s.tear_log_tail(100), 100);
        assert_eq!(s.restore("vm", gen), Err(StoreError::MissingChunk(db)));

        // Reopen: recovery drops exactly the unreadable chunks…
        let r = s.recover();
        assert_eq!(r.chunks_checked, 3);
        let mut expect = vec![db, dc];
        expect.sort();
        assert_eq!(r.dropped_digests, expect);
        assert_eq!(r.dropped_bytes, 140);
        assert!(s.contains(&da));
        assert!(!s.contains(&db));
        // …the store is internally consistent again (scrub passes)…
        let scrub = s.scrub().unwrap();
        assert_eq!(scrub.chunks_scanned, 1);
        // …and re-shipping the lost chunks restores bit-identically.
        assert_eq!(s.put(b.clone()), db);
        assert_eq!(s.put(c.clone()), dc);
        assert_eq!(
            s.restore("vm", gen).unwrap(),
            [&a[..], &b[..], &c[..]].concat()
        );
    }

    #[test]
    fn recover_on_consistent_store_is_a_no_op() {
        let mut s = ChunkStore::new();
        s.put(payload(64, 4));
        let before = s.report();
        let r = s.recover();
        assert_eq!(r.chunks_checked, 1);
        assert!(r.dropped_digests.is_empty());
        assert_eq!(r.dropped_bytes, 0);
        assert_eq!(s.report(), before);
    }
}
