//! The segment log: chunk payloads packed into fixed-size append-only
//! segments.
//!
//! A real dedup store never keeps one file (or one heap allocation) per
//! chunk — chunks are a few KB and there are millions of them. Payloads
//! are instead appended into large *segments* (the container design of
//! log-structured dedup stores); the store's index maps each digest to a
//! [`ChunkLoc`] (segment, offset, length). Deletion is deferred: freeing
//! a chunk only decrements its segment's live-byte count, and a
//! compaction pass (driven by the store's GC) rewrites the survivors of
//! mostly-dead segments and retires the segment wholesale.

/// Location of one chunk payload inside the segment log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChunkLoc {
    /// Segment id (stable for the life of the log; retired segments
    /// leave a hole).
    pub segment: u32,
    /// Byte offset inside the segment.
    pub offset: u32,
    /// Payload length in bytes.
    pub len: u32,
}

impl ChunkLoc {
    /// Payload length as a `u64`.
    pub fn byte_len(&self) -> u64 {
        self.len as u64
    }
}

/// One append-only segment.
#[derive(Debug, Clone, Default)]
struct Segment {
    data: Vec<u8>,
    live_bytes: u64,
}

/// The append-only, segment-packed payload log.
#[derive(Debug, Clone)]
pub(crate) struct SegmentLog {
    /// Retired segments become `None`; ids stay stable.
    segments: Vec<Option<Segment>>,
    segment_bytes: usize,
    resident_bytes: u64,
    live_bytes: u64,
}

impl SegmentLog {
    /// Creates a log rolling segments at `segment_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if `segment_bytes` is zero or exceeds 4 GiB — offsets are
    /// 32-bit ([`ChunkLoc`]), so a larger segment would silently
    /// truncate chunk locations.
    pub(crate) fn new(segment_bytes: usize) -> Self {
        assert!(segment_bytes > 0, "segment size must be non-zero");
        assert!(
            segment_bytes <= u32::MAX as usize,
            "segment size exceeds the 4 GiB chunk-location limit"
        );
        SegmentLog {
            segments: vec![Some(Segment::default())],
            segment_bytes,
            resident_bytes: 0,
            live_bytes: 0,
        }
    }

    /// Index of the segment currently accepting appends.
    fn current(&self) -> usize {
        self.segments.len() - 1
    }

    /// Public view of the current append target's id.
    pub(crate) fn current_segment(&self) -> usize {
        self.current()
    }

    /// Appends a payload, rolling to a fresh segment when the current one
    /// is full. A payload larger than the segment size gets a segment of
    /// its own (the log never splits a chunk).
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds 4 GiB (the [`ChunkLoc`] length
    /// limit; real chunkers cap chunks orders of magnitude below this).
    pub(crate) fn append(&mut self, payload: &[u8]) -> ChunkLoc {
        assert!(
            payload.len() <= u32::MAX as usize,
            "chunk payload exceeds the 4 GiB chunk-location limit"
        );
        let roll = {
            let cur = self.segments[self.current()]
                .as_ref()
                // shredder-lint: allow(R5) — retire() refuses the current segment, so the append target is always resident
                .expect("current segment is always resident");
            !cur.data.is_empty() && cur.data.len() + payload.len() > self.segment_bytes
        };
        if roll {
            self.segments.push(Some(Segment::default()));
        }
        let id = self.current();
        // shredder-lint: allow(R5) — `current()` indexes the segment pushed (or checked resident) directly above
        let seg = self.segments[id].as_mut().expect("just ensured resident");
        let offset = seg.data.len();
        seg.data.extend_from_slice(payload);
        seg.live_bytes += payload.len() as u64;
        self.resident_bytes += payload.len() as u64;
        self.live_bytes += payload.len() as u64;
        ChunkLoc {
            segment: id as u32,
            offset: offset as u32,
            len: payload.len() as u32,
        }
    }

    /// Reads a chunk payload back. `None` if the segment was retired.
    pub(crate) fn read(&self, loc: ChunkLoc) -> Option<&[u8]> {
        let seg = self.segments.get(loc.segment as usize)?.as_ref()?;
        let start = loc.offset as usize;
        seg.data.get(start..start + loc.len as usize)
    }

    /// Fault injection: flips one bit of a stored payload in place (the
    /// hook behind `ChunkStore::corrupt_chunk`). The bit index wraps
    /// modulo the payload's bit length; empty payloads and retired
    /// segments are left untouched.
    pub(crate) fn flip_bit(&mut self, loc: ChunkLoc, bit: usize) {
        let Some(seg) = self
            .segments
            .get_mut(loc.segment as usize)
            .and_then(Option::as_mut)
        else {
            return;
        };
        let nbits = loc.len as usize * 8;
        if nbits == 0 {
            return;
        }
        let b = bit % nbits;
        let at = loc.offset as usize + b / 8;
        if let Some(byte) = seg.data.get_mut(at) {
            *byte ^= 1 << (b % 8);
        }
    }

    /// Fault injection: simulates a torn final write by dropping up to
    /// `bytes` off the end of the *open* segment's data — a crash tears
    /// only the tail being appended, never sealed segments. The index
    /// and the live-byte accounting are deliberately left stale (that
    /// inconsistency *is* the torn state); `ChunkStore::recover` makes
    /// them consistent again. Returns how many bytes were torn off.
    pub(crate) fn truncate_tail(&mut self, bytes: u64) -> u64 {
        let cur = self.current();
        let seg = self.segments[cur]
            .as_mut()
            // shredder-lint: allow(R5) — retire() refuses the current segment, so the append target is always resident
            .expect("current segment is always resident");
        let cut = (bytes as usize).min(seg.data.len());
        seg.data.truncate(seg.data.len() - cut);
        self.resident_bytes -= cut as u64;
        cut as u64
    }

    /// Marks a chunk dead: its bytes stay resident until compaction or
    /// retirement reclaims the segment.
    pub(crate) fn mark_dead(&mut self, loc: ChunkLoc) {
        let seg = self.segments[loc.segment as usize]
            .as_mut()
            // shredder-lint: allow(R5) — deliberate integrity guard: freeing a chunk in a retired segment is store corruption, not a recoverable error
            .expect("marking a chunk in a retired segment");
        seg.live_bytes = seg
            .live_bytes
            .checked_sub(loc.byte_len())
            // shredder-lint: allow(R5) — deliberate integrity guard: a double free must halt the simulation, not skew accounting silently
            .expect("live bytes underflow: chunk freed twice");
        self.live_bytes -= loc.byte_len();
    }

    /// Live fraction of a segment (1.0 for empty segments, which carry
    /// nothing worth compacting).
    pub(crate) fn live_fraction(&self, id: usize) -> f64 {
        match &self.segments[id] {
            Some(s) if !s.data.is_empty() => s.live_bytes as f64 / s.data.len() as f64,
            _ => 1.0,
        }
    }

    /// Seals the current segment (if non-empty) so it becomes eligible
    /// for compaction; appends continue into a fresh segment.
    pub(crate) fn seal_current(&mut self) {
        let cur = self.current();
        if self.segments[cur]
            .as_ref()
            .is_some_and(|s| !s.data.is_empty())
        {
            self.segments.push(Some(Segment::default()));
        }
    }

    /// Whether a resident segment is worth compacting at `threshold`: a
    /// fully-dead segment always is (retiring it costs nothing, even at
    /// threshold 0.0 where compaction proper is disabled), otherwise the
    /// live fraction must fall below the threshold.
    pub(crate) fn wants_compaction(&self, id: usize, threshold: f64) -> bool {
        match &self.segments[id] {
            Some(s) if !s.data.is_empty() => {
                s.live_bytes == 0 || self.live_fraction(id) < threshold
            }
            _ => false,
        }
    }

    /// Segment ids eligible for compaction: resident, sealed (not the
    /// current append target), and either fully dead or below the
    /// liveness threshold.
    pub(crate) fn compaction_victims(&self, threshold: f64) -> Vec<usize> {
        let current = self.current();
        (0..self.segments.len())
            .filter(|&id| id != current && self.wants_compaction(id, threshold))
            .collect()
    }

    /// Drops a segment's bytes entirely, returning how many were freed.
    ///
    /// # Panics
    ///
    /// Panics if the segment still holds live bytes or is the current
    /// append target.
    pub(crate) fn retire(&mut self, id: usize) -> u64 {
        assert_ne!(id, self.current(), "cannot retire the open segment");
        // shredder-lint: allow(R5) — deliberate integrity guard: double retirement is a GC bug, documented under # Panics
        let seg = self.segments[id].take().expect("retiring twice");
        assert_eq!(seg.live_bytes, 0, "retiring a segment with live chunks");
        let freed = seg.data.len() as u64;
        self.resident_bytes -= freed;
        freed
    }

    /// Bytes resident across all segments (live + dead-not-yet-reclaimed).
    pub(crate) fn resident_bytes(&self) -> u64 {
        self.resident_bytes
    }

    /// Bytes referenced by live chunks.
    pub(crate) fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// Resident (non-retired) segment count.
    pub(crate) fn segment_count(&self) -> usize {
        self.segments.iter().filter(|s| s.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_read_roundtrip() {
        let mut log = SegmentLog::new(64);
        let a = log.append(b"hello");
        let b = log.append(b"world!");
        assert_eq!(log.read(a).unwrap(), b"hello");
        assert_eq!(log.read(b).unwrap(), b"world!");
        assert_eq!(log.resident_bytes(), 11);
        assert_eq!(log.segment_count(), 1);
    }

    #[test]
    fn segments_roll_at_capacity() {
        let mut log = SegmentLog::new(10);
        let a = log.append(&[1u8; 8]);
        let b = log.append(&[2u8; 8]); // would overflow: new segment
        assert_eq!(a.segment, 0);
        assert_eq!(b.segment, 1);
        assert_eq!(log.segment_count(), 2);
    }

    #[test]
    fn oversized_payload_gets_own_segment() {
        let mut log = SegmentLog::new(10);
        log.append(&[1u8; 4]);
        let big = log.append(&[2u8; 100]);
        assert_eq!(big.segment, 1);
        assert_eq!(log.read(big).unwrap().len(), 100);
    }

    #[test]
    fn mark_dead_and_retire() {
        let mut log = SegmentLog::new(8);
        let a = log.append(&[1u8; 8]);
        let b = log.append(&[2u8; 8]);
        assert_eq!(log.live_bytes(), 16);
        log.mark_dead(a);
        assert_eq!(log.live_bytes(), 8);
        assert_eq!(log.live_fraction(0), 0.0);
        // Segment 1 is current, so only segment 0 is a victim.
        assert_eq!(log.compaction_victims(0.5), vec![0]);
        assert_eq!(log.retire(0), 8);
        assert_eq!(log.resident_bytes(), 8);
        assert!(log.read(a).is_none());
        assert_eq!(log.read(b).unwrap(), &[2u8; 8]);
    }

    #[test]
    fn live_fraction_of_empty_segment_is_one() {
        let log = SegmentLog::new(8);
        assert_eq!(log.live_fraction(0), 1.0);
        assert!(log.compaction_victims(0.9).is_empty());
    }

    #[test]
    fn flip_bit_toggles_and_wraps() {
        let mut log = SegmentLog::new(64);
        let a = log.append(&[0u8; 4]);
        log.flip_bit(a, 0);
        assert_eq!(log.read(a).unwrap(), &[1, 0, 0, 0]);
        // Bit index wraps modulo the payload's 32 bits: 32 hits bit 0 again.
        log.flip_bit(a, 32);
        assert_eq!(log.read(a).unwrap(), &[0u8; 4]);
        log.flip_bit(a, 15);
        assert_eq!(log.read(a).unwrap(), &[0, 0x80, 0, 0]);
        // Empty payloads and retired segments are no-ops, not panics.
        let empty = log.append(b"");
        log.flip_bit(empty, 3);
        log.flip_bit(
            ChunkLoc {
                segment: 99,
                offset: 0,
                len: 4,
            },
            0,
        );
    }

    #[test]
    fn truncate_tail_tears_only_the_open_segment() {
        let mut log = SegmentLog::new(8);
        let sealed = log.append(&[1u8; 8]);
        let torn = log.append(&[2u8; 6]); // rolls into segment 1 (open)
        assert_eq!(log.resident_bytes(), 14);
        // Asking for more than the open segment holds caps at its size.
        assert_eq!(log.truncate_tail(100), 6);
        assert_eq!(log.resident_bytes(), 8);
        // Live accounting is deliberately stale — that is the torn state.
        assert_eq!(log.live_bytes(), 14);
        assert!(log.read(torn).is_none());
        assert_eq!(log.read(sealed).unwrap(), &[1u8; 8]);
    }

    #[test]
    fn truncate_tail_partial_leaves_prefix_unreadable_chunks() {
        let mut log = SegmentLog::new(64);
        let a = log.append(&[1u8; 8]);
        let b = log.append(&[2u8; 8]);
        assert_eq!(log.truncate_tail(4), 4);
        // Chunk b now extends past the data end: read fails cleanly.
        assert!(log.read(b).is_none());
        assert_eq!(log.read(a).unwrap(), &[1u8; 8]);
    }

    #[test]
    #[should_panic(expected = "live chunks")]
    fn retiring_live_segment_panics() {
        let mut log = SegmentLog::new(4);
        log.append(&[1u8; 4]);
        log.append(&[2u8; 4]); // rolls; segment 0 sealed but live
        log.retire(0);
    }
}
