//! Snapshot manifests: the ordered chunk recipe of one stream
//! generation.
//!
//! A manifest is what makes the store *versioned*: it records, per
//! stream and per generation, the exact digest sequence that
//! reconstructs the stream's bytes. Manifests are the GC roots — a
//! chunk is live exactly while some un-expired manifest references it.

use serde::{Deserialize, Serialize};
use shredder_hash::Digest;

/// One chunk reference in a snapshot recipe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ManifestEntry {
    /// The chunk's fingerprint.
    pub digest: Digest,
    /// The chunk's length in bytes (verified against the payload on
    /// restore).
    pub len: u32,
}

/// The ordered chunk recipe of one stream generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotManifest {
    /// The stream this generation belongs to.
    pub stream: String,
    /// Generation number, monotonically increasing per stream.
    pub generation: u64,
    /// Chunk references in stream order.
    pub entries: Vec<ManifestEntry>,
}

impl SnapshotManifest {
    /// Creates an empty manifest.
    pub(crate) fn new(stream: impl Into<String>, generation: u64) -> Self {
        SnapshotManifest {
            stream: stream.into(),
            generation,
            entries: Vec::new(),
        }
    }

    /// Number of chunk references.
    pub fn chunk_count(&self) -> usize {
        self.entries.len()
    }

    /// Logical bytes the recipe reassembles to.
    pub fn logical_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.len as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shredder_hash::sha256;

    #[test]
    fn manifest_accounting() {
        let mut m = SnapshotManifest::new("vm-a", 3);
        m.entries.push(ManifestEntry {
            digest: sha256(b"x"),
            len: 10,
        });
        m.entries.push(ManifestEntry {
            digest: sha256(b"y"),
            len: 22,
        });
        assert_eq!(m.chunk_count(), 2);
        assert_eq!(m.logical_bytes(), 32);
        assert_eq!(m.generation, 3);
        assert_eq!(m.stream, "vm-a");
    }
}
