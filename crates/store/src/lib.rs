//! The versioned content-addressed chunk store (incremental storage's
//! server side).
//!
//! Shredder exists to *feed* a store like this: chunk fingerprints are
//! only useful if some storage system keeps one physical copy across
//! many logical generations, can hand any generation back bit-for-bit,
//! and reclaims space when old generations expire. This crate is that
//! consumer, shared by the Inc-HDFS DataNodes and the backup site:
//!
//! * [`ChunkIndex`] / [`DedupIndex`] — the one sharded fingerprint
//!   index behind every digest map in the workspace (previously
//!   copy-pasted in `shredder-hdfs` and `shredder-backup`).
//! * `SegmentLog` (internal) — chunk payloads packed into fixed-size
//!   append-only segments; the index maps digest →
//!   [`ChunkLoc`] (segment, offset, length).
//! * [`SnapshotManifest`] — the ordered chunk recipe of one stream
//!   generation: first-class snapshots, the GC roots.
//! * [`ChunkStore`] — the store itself: dedup `put`, digest-verified
//!   [`restore`](ChunkStore::restore) of any live generation,
//!   [`expire`](ChunkStore::expire) / retention, and mark-and-sweep
//!   [`gc`](ChunkStore::gc) with segment compaction below a liveness
//!   threshold. [`StoreReport`] / [`GcReport`] make space accounting
//!   observable. Integrity is first-class: a digest-verified
//!   [`scrub`](ChunkStore::scrub) pass catches silent corruption
//!   ([`ScrubReport`]), and [`recover`](ChunkStore::recover) repairs a
//!   torn final log write on reopen ([`RecoveryReport`]); the matching
//!   fault hooks ([`corrupt_chunk`](ChunkStore::corrupt_chunk),
//!   [`tear_log_tail`](ChunkStore::tear_log_tail)) make both paths
//!   deterministically testable.
//!
//! Timing lives elsewhere by design: this crate is purely functional
//! (real bytes, real hashes, deterministic GC), and `shredder-core`'s
//! `StoreSink` charges the store's write bandwidth and index latency as
//! stages inside the discrete-event simulation.
//!
//! # Examples
//!
//! N generations in, bounded physical growth, any generation
//! restorable, space reclaimed on expiry:
//!
//! ```
//! use shredder_store::ChunkStore;
//!
//! let mut store = ChunkStore::new();
//! let base = store.put(b"unchanged base content".as_slice().into());
//! let mut gens = Vec::new();
//! for i in 0..4u8 {
//!     let delta = store.put(vec![i; 16].into());
//!     gens.push(store.commit_snapshot("vm", &[(base, 22), (delta, 16)]).unwrap());
//! }
//! // 4 generations share one base chunk.
//! assert_eq!(store.physical_bytes(), 22 + 4 * 16);
//!
//! // Expire the first two; GC reclaims exactly their unique deltas.
//! store.expire("vm", gens[1]);
//! let gc = store.gc();
//! assert_eq!(gc.freed_chunks, 2);
//! assert_eq!(gc.freed_bytes, 32);
//! // The survivors still restore, every digest verified.
//! let restored = store.restore("vm", gens[3]).unwrap();
//! assert_eq!(&restored[..22], b"unchanged base content");
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod index;
pub mod manifest;
mod segment;
pub mod store;

pub use index::{ChunkIndex, DedupIndex};
pub use manifest::{ManifestEntry, SnapshotManifest};
pub use segment::ChunkLoc;
pub use store::{
    ChunkStore, GcReport, RecoveryReport, RepairReport, ScrubReport, StoreConfig, StoreError,
    StoreReport,
};
