//! Property tests for the versioned store: restore is lossless for
//! every live generation, and GC is model-checked against a naive
//! reference-counting oracle.

use std::collections::{HashMap, HashSet};

use proptest::prelude::*;
use shredder_hash::{sha256, Digest};
use shredder_rabin::{chunk_all, ChunkParams};
use shredder_store::{ChunkStore, StoreConfig, StoreError};
use shredder_workloads::{mutate, MutationSpec};

fn params() -> ChunkParams {
    ChunkParams {
        min_size: 128,
        max_size: 8192,
        ..ChunkParams::paper().with_expected_size(1024)
    }
}

/// Chunks one generation's bytes and commits them as a snapshot,
/// returning the generation number.
fn store_generation(store: &mut ChunkStore, stream: &str, data: &[u8]) -> u64 {
    let mut recipe = Vec::new();
    for chunk in chunk_all(data, &params()) {
        let payload = chunk.slice(data);
        let digest = sha256(payload);
        store.put_with_digest(digest, payload.into());
        recipe.push((digest, payload.len()));
    }
    store
        .commit_snapshot(stream, &recipe)
        .expect("valid recipe")
}

/// The naive oracle: per-digest reference counts over live manifests.
fn refcounts(store: &ChunkStore, streams: &[&str]) -> HashMap<Digest, usize> {
    let mut counts: HashMap<Digest, usize> = HashMap::new();
    for stream in streams {
        for generation in store.generations(stream) {
            for entry in &store.manifest(stream, generation).unwrap().entries {
                *counts.entry(entry.digest).or_default() += 1;
            }
        }
    }
    counts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `restore(store(x, gen))` is bit-identical to `x` for every live
    /// generation across random mutation sequences.
    #[test]
    fn every_live_generation_restores_bit_identical(
        seed in 0u64..1000,
        base_len in 4096usize..65536,
        change_pct in 1u32..30,
        generations in 2usize..7,
    ) {
        let change = change_pct as f64 / 100.0;
        let mut store = ChunkStore::with_config(StoreConfig {
            segment_bytes: 32 << 10,
            ..StoreConfig::default()
        });
        let mut data = shredder_workloads::random_bytes(base_len, seed);
        let mut kept: Vec<(u64, Vec<u8>)> = Vec::new();
        for g in 0..generations {
            let gen = store_generation(&mut store, "vm", &data);
            kept.push((gen, data.clone()));
            data = mutate(&data, &MutationSpec::mixed(change, seed * 31 + g as u64));
        }
        // Physical growth is bounded by the logical total.
        prop_assert!(store.physical_bytes() <= store.logical_bytes());
        for (gen, expected) in &kept {
            prop_assert_eq!(&store.restore("vm", *gen).unwrap(), expected);
        }
    }

    /// GC never frees a chunk referenced by any live manifest, and frees
    /// exactly the chunks whose oracle refcount dropped to zero.
    #[test]
    fn gc_agrees_with_refcount_oracle(
        seed in 0u64..1000,
        base_len in 4096usize..32768,
        generations in 3usize..8,
        expire_through in 0usize..6,
    ) {
        let mut store = ChunkStore::with_config(StoreConfig {
            segment_bytes: 8 << 10,
            gc_threshold: 0.6,
            ..StoreConfig::default()
        });
        let mut data = shredder_workloads::random_bytes(base_len, seed ^ 0x6c);
        let mut kept: Vec<(u64, Vec<u8>)> = Vec::new();
        for g in 0..generations {
            let gen = store_generation(&mut store, "vm", &data);
            kept.push((gen, data.clone()));
            data = mutate(&data, &MutationSpec::replace(0.1, seed * 17 + g as u64));
        }

        let before = refcounts(&store, &["vm"]);
        let through = expire_through.min(generations - 2) as u64;
        store.expire("vm", through);
        let after = refcounts(&store, &["vm"]);

        let expected_freed: HashSet<Digest> = before
            .keys()
            .filter(|d| !after.contains_key(*d))
            .copied()
            .collect();

        let gc = store.gc();
        let freed: HashSet<Digest> = gc.freed_digests.iter().copied().collect();
        prop_assert_eq!(&freed, &expected_freed, "GC freed set diverged from the oracle");

        // Nothing still referenced was freed; everything freed is gone.
        for digest in after.keys() {
            prop_assert!(store.contains(digest), "live chunk freed");
        }
        for digest in &freed {
            prop_assert!(!store.contains(digest));
        }

        // Every surviving generation still restores bit-identical —
        // compaction moved payloads without corrupting them.
        for (gen, expected) in &kept {
            if *gen <= through {
                prop_assert!(matches!(
                    store.restore("vm", *gen),
                    Err(StoreError::UnknownGeneration { .. })
                ));
            } else {
                prop_assert_eq!(&store.restore("vm", *gen).unwrap(), expected);
            }
        }

        // A second GC with no expiry in between is a no-op.
        let second = store.gc();
        prop_assert_eq!(second.freed_chunks, 0);
        prop_assert_eq!(second.freed_bytes, 0);
    }

    /// Two streams sharing content: expiring one stream entirely never
    /// breaks the other's restores.
    #[test]
    fn cross_stream_references_pin_chunks(
        seed in 0u64..500,
        len in 8192usize..32768,
    ) {
        let mut store = ChunkStore::new();
        let a = shredder_workloads::random_bytes(len, seed);
        let b = mutate(&a, &MutationSpec::replace(0.05, seed + 1));
        let ga = store_generation(&mut store, "a", &a);
        let gb = store_generation(&mut store, "b", &b);

        store.expire("a", ga);
        let gc = store.gc();
        // Shared chunks survive via stream b's manifest.
        prop_assert_eq!(&store.restore("b", gb).unwrap(), &b);
        // Everything freed was unique to stream a.
        let b_digests: HashSet<Digest> = store
            .manifest("b", gb)
            .unwrap()
            .entries
            .iter()
            .map(|e| e.digest)
            .collect();
        for d in &gc.freed_digests {
            prop_assert!(!b_digests.contains(d));
        }
    }
}
