//! Regression tests for the R4 (hash-order) fixes: every report that
//! used to be built off `HashMap`/`HashSet` iteration must now come out
//! bit-identical across independent runs. `HashMap`'s per-instance
//! `RandomState` seed means two instances in the *same* process iterate
//! in different orders, so "build it twice, compare" is a real probe —
//! before the `BTreeMap` conversions these assertions flaked.

use shredder::hash::sha256;
use shredder::hdfs::{FileVersion, IncHdfs, NameNode};
use shredder::mapreduce::apps::{Cooccurrence, WordCount};
use shredder::mapreduce::{ClusterConfig, IncrementalRunner, MapReduceJob, MemoTable};
use shredder::store::ChunkIndex;
use shredder::workloads;

#[test]
fn wordcount_map_output_identical_across_runs() {
    let split = workloads::words_corpus(64 << 10, 400, 0xbeef);
    let a = WordCount.map(&split);
    let b = WordCount.map(&split);
    assert_eq!(a, b, "map output order must not depend on hash seeds");
    assert!(
        a.windows(2).all(|w| w[0].0 < w[1].0),
        "output sorted by key"
    );
}

#[test]
fn cooccurrence_map_output_identical_across_runs() {
    let split = workloads::words_corpus(32 << 10, 200, 0xf00d);
    let a = Cooccurrence::new(2).map(&split);
    let b = Cooccurrence::new(2).map(&split);
    assert_eq!(a, b);
    assert!(
        a.windows(2).all(|w| w[0].0 < w[1].0),
        "output sorted by key"
    );
}

#[test]
fn incremental_run_reports_identical_across_runs() {
    let corpus = workloads::words_corpus(256 << 10, 300, 0x5eed);
    let run = || {
        let mut fs = IncHdfs::new(4);
        fs.copy_from_local("/in", &corpus, 32 << 10);
        let splits = fs.splits("/in").unwrap();
        let mut runner = IncrementalRunner::new(WordCount, ClusterConfig::paper());
        let out = runner.run(&splits);
        (out.output, out.stats)
    };
    let (out_a, stats_a) = run();
    let (out_b, stats_b) = run();
    assert_eq!(out_a, out_b, "reduced output must be identical");
    assert_eq!(
        stats_a.memo_hits, stats_b.memo_hits,
        "memoization behaviour must be identical"
    );
}

#[test]
fn chunk_index_iteration_order_is_insertion_independent() {
    let digests: Vec<_> = (0u64..200).map(|i| sha256(&i.to_le_bytes())).collect();
    let mut forward: ChunkIndex<u64> = ChunkIndex::new();
    for (i, d) in digests.iter().enumerate() {
        forward.insert(*d, i as u64);
    }
    let mut backward: ChunkIndex<u64> = ChunkIndex::new();
    for (i, d) in digests.iter().enumerate().rev() {
        backward.insert(*d, i as u64);
    }
    let fwd: Vec<_> = forward.iter().map(|(d, v)| (*d, *v)).collect();
    let bwd: Vec<_> = backward.iter().map(|(d, v)| (*d, *v)).collect();
    assert_eq!(
        fwd, bwd,
        "index iteration must not depend on insertion order"
    );
}

#[test]
fn memo_eviction_identical_across_runs() {
    let victims: Vec<_> = (0u64..32).map(|i| sha256(&i.to_le_bytes())).collect();
    let evict = || {
        let mut memo: MemoTable<String, u64> = MemoTable::new();
        for (i, d) in victims.iter().enumerate() {
            memo.insert((*d, 0), vec![(format!("k{i}"), i as u64)], 64);
        }
        memo.evict_digests(&victims[..16])
    };
    assert_eq!(evict(), evict());
}

#[test]
fn namenode_paths_identical_regardless_of_insertion_order() {
    let mut a = NameNode::new();
    let mut b = NameNode::new();
    for p in ["/z", "/a", "/m"] {
        a.commit_version(p, FileVersion::default());
    }
    for p in ["/m", "/z", "/a"] {
        b.commit_version(p, FileVersion::default());
    }
    assert_eq!(a.paths(), b.paths());
    assert_eq!(a.paths(), vec!["/a", "/m", "/z"]);
}
