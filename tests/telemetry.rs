//! Acceptance: the telemetry contract (DESIGN.md §8).
//!
//! Two properties carry the whole subsystem:
//!
//! 1. **Zero overhead off** — a disabled `TelemetryConfig` allocates no
//!    recorder and the `EngineReport` is bit-identical to a run whose
//!    config never mentioned telemetry; an *enabled* config changes
//!    what is remembered, never what happens, so every non-telemetry
//!    report field stays bit-identical too.
//! 2. **Determinism** — the same run produces byte-identical trace
//!    JSON, Prometheus text and metric snapshots every time, including
//!    under random seeded fault schedules (proptest).
//!
//! Plus the "reports are views" checks: the latency histogram and
//! per-request trace spans must agree with `ServiceReport`, and a
//! sink-carrying service run must cover every lane category
//! (request, device-engine, sink-stage, control).

use std::cell::RefCell;
use std::collections::HashSet;
use std::rc::Rc;

use shredder::core::{
    AdmissionControl, ChunkRequest, DedupSink, DedupSinkConfig, EngineOutcome, FaultPlan,
    MemorySource, ServiceOutcome, ShredderConfig, ShredderEngine, ShredderService,
    SinkPipelineHints, SliceSource, TelemetryConfig, Workload,
};
use shredder::des::Dur;
use shredder::telemetry::{validate_chrome_trace, Lane, LaneEngine};
use shredder::workloads;

use proptest::prelude::*;

const GPUS: usize = 3;
const STREAMS: usize = 4;
const STREAM_BYTES: usize = 1 << 20;

/// Same shape as the fault-injection scenarios: devices set the pace,
/// admission keeps them fed.
fn pool_config() -> ShredderConfig {
    ShredderConfig::gpu_streams_memory()
        .with_buffer_size(256 << 10)
        .with_reader_bandwidth(32e9)
        .with_gpus(GPUS)
        .with_pipeline_depth(4 * GPUS)
}

fn tenant_streams() -> Vec<Vec<u8>> {
    (0..STREAMS)
        .map(|t| workloads::random_bytes(STREAM_BYTES, 0x7e1e + t as u64))
        .collect()
}

fn run_with(streams: &[Vec<u8>], config: ShredderConfig) -> EngineOutcome {
    let mut engine = ShredderEngine::new(config);
    for (t, data) in streams.iter().enumerate() {
        engine.open_named_session(format!("tenant-{t}"), 1, SliceSource::new(data));
    }
    engine.run().expect("engine run failed")
}

// ----- Zero overhead off -----

#[test]
fn telemetry_off_is_bit_identical_to_no_telemetry_config() {
    let streams = tenant_streams();
    let plain = run_with(&streams, pool_config());
    let off = run_with(
        &streams,
        pool_config().with_telemetry(TelemetryConfig::disabled()),
    );

    // No recorder was allocated on either side…
    assert!(plain.report.telemetry.is_none());
    assert!(off.report.telemetry.is_none());
    // …and the *entire* report — timings, utilization, queue waits,
    // device accounting — matches bit-for-bit, like the empty FaultPlan.
    assert_eq!(plain.sessions, off.sessions);
    assert_eq!(plain.report, off.report);
}

#[test]
fn telemetry_on_leaves_every_other_report_field_bit_identical() {
    let streams = tenant_streams();
    let plain = run_with(&streams, pool_config());
    let on = run_with(
        &streams,
        pool_config().with_telemetry(TelemetryConfig::enabled()),
    );

    // Recording is passive: no event is ever scheduled by the recorder,
    // so the run it observed is the run that would have happened anyway.
    assert_eq!(plain.sessions, on.sessions);
    let mut on_report = on.report.clone();
    let telemetry = on_report
        .telemetry
        .take()
        .expect("telemetry-on run carries a report");
    assert_eq!(plain.report, on_report);

    // And it did observe something.
    assert!(telemetry.spans() > 0, "no spans recorded");
    assert!(!telemetry.metrics.is_empty(), "no metrics recorded");
    assert_eq!(telemetry.dropped, 0, "default capacity evicted records");
}

// ----- Determinism -----

#[test]
fn repeated_runs_emit_byte_identical_exports() {
    let streams = tenant_streams();
    let config = || pool_config().with_telemetry(TelemetryConfig::enabled());
    let a = run_with(&streams, config())
        .report
        .telemetry
        .expect("telemetry-on run carries a report");
    let b = run_with(&streams, config())
        .report
        .telemetry
        .expect("telemetry-on run carries a report");

    // Identical records (ids, ordering, timestamps) and identical bytes
    // out of every export path.
    assert_eq!(a, b);
    assert_eq!(a.to_chrome_json(), b.to_chrome_json());
    assert_eq!(a.prometheus_text(), b.prometheus_text());
    assert_eq!(a.metrics_json(), b.metrics_json());

    // Ids are strictly monotonic in recording order.
    let ids: Vec<u64> = a.records.iter().map(|r| r.id()).collect();
    assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids not monotonic");

    // The export is structurally valid Chrome trace JSON and the
    // validator's counts agree with the recorder's.
    let check = validate_chrome_trace(&a.to_chrome_json()).expect("trace must validate");
    assert_eq!(check.spans, a.spans());
    assert_eq!(check.instants, a.instants());
    assert!(check.metadata > 0, "no track-naming metadata");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random seeded fault schedules — deaths and stragglers at random
    /// instants — replay to byte-identical traces, and the trace's
    /// fault instants agree with the `FaultReport` counters.
    #[test]
    fn random_fault_schedules_trace_deterministically(seed in 0u64..256) {
        let streams: Vec<Vec<u8>> = (0..3)
            .map(|t| workloads::random_bytes(STREAM_BYTES, 0x9e37 + t as u64))
            .collect();
        let base = run_with(&streams, pool_config());
        let plan = FaultPlan::random(seed, GPUS, base.report.makespan);
        prop_assert!(!plan.is_empty());

        let config = || {
            pool_config()
                .with_faults(plan.clone())
                .with_telemetry(TelemetryConfig::enabled())
        };
        let a = run_with(&streams, config());
        let b = run_with(&streams, config());
        let ta = a.report.telemetry.clone().expect("telemetry-on run carries a report");
        let tb = b.report.telemetry.clone().expect("telemetry-on run carries a report");
        prop_assert_eq!(&ta, &tb);
        prop_assert_eq!(ta.to_chrome_json(), tb.to_chrome_json());
        prop_assert!(validate_chrome_trace(&ta.to_chrome_json()).is_ok());

        // Control-lane instants mirror the fault report exactly.
        let count = |name: &str| ta.records.iter().filter(|r| r.name() == name).count();
        let faults = &a.report.faults;
        prop_assert_eq!(count("device-death"), faults.device_deaths);
        prop_assert_eq!(count("straggler"), faults.stragglers);
        prop_assert_eq!(count("requeue"), faults.requeued_buffers);
        prop_assert_eq!(
            ta.metrics.counter("shredder_faults_requeued_buffers") as usize,
            faults.requeued_buffers
        );
    }
}

// ----- Reports are views: lane coverage and histogram agreement -----

const REQUESTS: usize = 12;
const REQ_BYTES: usize = 512 << 10;

fn service_config() -> ShredderConfig {
    ShredderConfig::gpu_streams_memory()
        .with_buffer_size(256 << 10)
        .with_reader_bandwidth(32e9)
        .with_gpus(2)
        .with_pipeline_depth(8)
        .with_telemetry(TelemetryConfig::enabled())
}

#[test]
fn trace_covers_request_device_stage_and_control_lanes() {
    // A sink-carrying service run with a straggler injected at t=0:
    // every lane category the exporter maps to a Perfetto track must
    // show up — request lifecycle, all three device engines, each sink
    // stage, and the control plane.
    let index: Rc<RefCell<HashSet<_>>> = Rc::default();
    let sink_config = DedupSinkConfig {
        hash_bw: 1.5e9,
        index_lookup: Dur::from_micros(7),
        index_insert: Dur::from_micros(10),
        ship_bw: 0.9e9,
        pointer_bytes: 40,
        ship_chunk_overhead: Dur::from_micros(2),
        hints: SinkPipelineHints::default(),
    };
    let mut service = ShredderService::new(
        service_config().with_faults(FaultPlan::new().straggler(Dur::ZERO, 0, 3.0)),
    )
    .with_admission(AdmissionControl::fifo(4));
    for t in 0..REQUESTS as u64 {
        service.submit(
            ChunkRequest::new(MemorySource::pseudo_random(REQ_BYTES, t))
                .with_sink(DedupSink::new(sink_config, index.clone())),
        );
    }
    let out = service.run(&Workload::Batch).expect("service run failed");
    let telemetry = out
        .report
        .telemetry
        .as_ref()
        .expect("telemetry-on run carries a report");

    assert!(
        telemetry
            .records
            .iter()
            .any(|r| matches!(r.lane(), Lane::Request { .. }) && r.name() == "request"),
        "no request spans"
    );
    for engine in [LaneEngine::H2d, LaneEngine::Kernel, LaneEngine::D2h] {
        assert!(
            telemetry
                .records
                .iter()
                .any(|r| matches!(r.lane(), Lane::Device { engine: e, .. } if *e == engine)),
            "no device-lane records for {}",
            engine.label()
        );
    }
    let stage_lanes: HashSet<&str> = telemetry
        .records
        .iter()
        .filter_map(|r| match r.lane() {
            Lane::Stage { name } => Some(name.as_str()),
            _ => None,
        })
        .collect();
    for stage in ["fingerprint", "dedup", "ship"] {
        assert!(stage_lanes.contains(stage), "no {stage} stage lane");
        assert!(
            telemetry
                .metrics
                .histogram(&format!("shredder_stage_wait_ns:{stage}"))
                .is_some(),
            "no {stage} wait histogram"
        );
    }
    assert!(
        telemetry
            .records
            .iter()
            .any(|r| matches!(r.lane(), Lane::Control) && r.name() == "straggler"),
        "no control-lane straggler instant"
    );
    assert_eq!(telemetry.metrics.counter("shredder_faults_stragglers"), 1);
    for device in 0..2 {
        let name = format!("shredder_device_utilization:{device}");
        let util = telemetry.metrics.gauge(&name).expect("utilization gauge");
        assert!((0.0..=1.0).contains(&util), "{name} = {util}");
    }

    let check = validate_chrome_trace(&telemetry.to_chrome_json()).expect("trace must validate");
    assert_eq!(check.spans, telemetry.spans());
    assert_eq!(check.instants, telemetry.instants());
}

#[test]
fn latency_histogram_agrees_with_service_report_percentiles() {
    let mut service =
        ShredderService::new(service_config()).with_admission(AdmissionControl::fifo(4));
    for t in 0..REQUESTS as u64 {
        service.submit(ChunkRequest::new(MemorySource::pseudo_random(REQ_BYTES, t)));
    }
    let out: ServiceOutcome = service.run(&Workload::Batch).expect("service run failed");
    let svc = out.service().clone();
    let telemetry = out
        .report
        .telemetry
        .as_ref()
        .expect("telemetry-on run carries a report");

    // Counters are exact.
    assert_eq!(
        telemetry.metrics.counter("shredder_requests_total") as usize,
        svc.requests.len()
    );
    assert_eq!(
        telemetry.metrics.counter("shredder_requests_completed") as usize,
        svc.completed
    );
    assert_eq!(
        telemetry.metrics.counter("shredder_requests_shed") as usize,
        svc.shed
    );

    // Per-request trace spans reproduce the report's latencies exactly.
    let from_trace = telemetry.request_latencies();
    assert_eq!(from_trace.len(), svc.completed);
    for (id, latency) in &from_trace {
        let row = &svc.requests[*id as usize];
        assert_eq!(Some(*latency), row.latency(), "request {id}");
    }

    // The log-bucketed histogram agrees with the sort-the-Vec
    // nearest-rank percentiles within its bucket resolution (~4%
    // relative error; min/max ranks are exact).
    let hist = telemetry
        .metrics
        .histogram("shredder_request_latency_ns")
        .expect("latency histogram");
    assert_eq!(hist.count() as usize, svc.completed);
    for (q, exact) in [(0.50, svc.p50()), (0.99, svc.p99())] {
        let approx = hist.quantile(q).expect("quantile of non-empty histogram") as f64;
        let exact = exact.as_nanos() as f64;
        assert!(
            (approx - exact).abs() <= 0.05 * exact.max(1.0),
            "q{q}: histogram {approx} vs report {exact}"
        );
    }
}
