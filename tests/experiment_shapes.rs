//! Integration: small-scale versions of the paper's headline shapes, so
//! plain `cargo test` exercises what the full bench harness validates.

use shredder::core::{ChunkingService, HostChunker, HostChunkerConfig, Shredder, ShredderConfig};
use shredder::gpu::dma::Direction;
use shredder::gpu::kernel::{ChunkKernel, KernelVariant};
use shredder::gpu::{DeviceConfig, DmaModel, HostMemKind, PinnedRing};
use shredder::rabin::ChunkParams;
use shredder::workloads;

#[test]
fn fig3_shape_pinned_vs_pageable() {
    let dma = DmaModel::new();
    let h2d = Direction::HostToDevice;
    let small_pinned = dma.effective_bandwidth(h2d, HostMemKind::Pinned, 4 << 10);
    let big_pinned = dma.effective_bandwidth(h2d, HostMemKind::Pinned, 64 << 20);
    let big_pageable = dma.effective_bandwidth(h2d, HostMemKind::Pageable, 64 << 20);
    assert!(small_pinned < big_pinned / 5.0);
    assert!(big_pinned > big_pageable);
    assert!(big_pinned / big_pageable < 2.0, "gap should narrow at 64M");
}

#[test]
fn fig6_shape_ring_amortizes_pinning() {
    let ring = PinnedRing::new(4, 32 << 20);
    assert!(
        ring.per_buffer_time_without_ring().as_secs_f64()
            > 10.0 * ring.per_buffer_time().as_secs_f64()
    );
}

#[test]
fn fig11_shape_coalescing_speedup() {
    let cfg = DeviceConfig::tesla_c2050();
    let data = workloads::random_bytes(8 << 20, 1);
    let basic = ChunkKernel::new(ChunkParams::paper(), KernelVariant::Basic)
        .run(&cfg, &data)
        .unwrap();
    let coal = ChunkKernel::new(ChunkParams::paper(), KernelVariant::Coalesced)
        .run(&cfg, &data)
        .unwrap();
    let speedup = basic.stats.duration.as_secs_f64() / coal.stats.duration.as_secs_f64();
    assert!(
        (4.0..13.0).contains(&speedup),
        "coalescing speedup {speedup}"
    );
}

#[test]
fn fig12_shape_engine_ordering() {
    let data = workloads::random_bytes(16 << 20, 2);
    let buffer = 2 << 20;
    let throughput = |svc: &dyn ChunkingService| {
        let out = svc.chunk_stream(&data).unwrap();
        out.report.bytes() as f64 / out.report.makespan().as_secs_f64()
    };

    let cpu_malloc = throughput(&HostChunker::new(HostChunkerConfig::unoptimized()));
    let cpu_hoard = throughput(&HostChunker::new(HostChunkerConfig::optimized()));
    let basic = throughput(&Shredder::new(
        ShredderConfig::gpu_basic().with_buffer_size(buffer),
    ));
    let streams = throughput(&Shredder::new(
        ShredderConfig::gpu_streams().with_buffer_size(buffer),
    ));
    let full = throughput(&Shredder::new(
        ShredderConfig::gpu_streams_memory().with_buffer_size(buffer),
    ));

    assert!(cpu_malloc < cpu_hoard);
    assert!(cpu_hoard < basic);
    assert!(basic < streams);
    assert!(streams < full);
    assert!(
        full / cpu_hoard > 4.0,
        "full Shredder only {:.1}x over host",
        full / cpu_hoard
    );
}

#[test]
fn fig9_shape_pipeline_depth() {
    let kernel_dur = shredder::des::Dur::from_millis(20);
    let makespan = |depth: usize| {
        Shredder::new(
            ShredderConfig::gpu_streams()
                .with_buffer_size(32 << 20)
                .with_pipeline_depth(depth),
        )
        .simulate_synthetic(16, 32 << 20, kernel_dur, 4000)
        .makespan
    };
    let seq = makespan(1);
    let two = makespan(2);
    let four = makespan(4);
    assert!(two < seq);
    assert!(four <= two);
    let speedup = seq.as_secs_f64() / four.as_secs_f64();
    assert!((1.4..3.0).contains(&speedup), "4-stage speedup {speedup}");
}

#[test]
fn table2_shape_host_idle_during_async_work() {
    // The device execution of a 16 MB buffer leaves the host tens of
    // millions of cycles idle — the motivation for the pipeline.
    let cfg = DeviceConfig::tesla_c2050();
    let data = workloads::random_bytes(16 << 20, 3);
    let out = ChunkKernel::new(ChunkParams::paper(), KernelVariant::Basic)
        .run(&cfg, &data)
        .unwrap();
    let launch = out.stats.simt.launch_overhead;
    let ticks = out.stats.duration.as_secs_f64() * shredder::gpu::calibration::HOST_CLOCK_HZ;
    assert!(launch.as_millis_f64() < 0.1);
    assert!(ticks > 1e7, "only {ticks:.1e} spare ticks");
}
