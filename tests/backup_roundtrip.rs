//! Integration: case study II end to end.
//!
//! Multi-night VM snapshot backups through CPU and GPU chunking engines:
//! every image restores byte-identical; dedup grows with similarity;
//! Shredder-GPU sustains higher backup bandwidth than pthreads-CPU.

use shredder::backup::{BackupConfig, BackupServer};
use shredder::core::{ChunkingService, HostChunker, HostChunkerConfig, Shredder, ShredderConfig};
use shredder::rabin::ChunkParams;
use shredder::workloads::{MasterImage, SimilarityTable};

fn cpu_service() -> HostChunker {
    HostChunker::new(HostChunkerConfig {
        params: ChunkParams::backup(),
        ..HostChunkerConfig::optimized()
    })
}

fn gpu_service() -> Shredder {
    Shredder::new(
        ShredderConfig::gpu_streams_memory()
            .with_params(ChunkParams::backup())
            .with_buffer_size(1 << 20),
    )
}

fn test_config() -> BackupConfig {
    BackupConfig {
        buffer_size: 1 << 20,
        ..BackupConfig::paper()
    }
}

#[test]
fn week_of_snapshots_restores_bit_exact() {
    let master = MasterImage::synthesize(4 << 20, 64 << 10, 1);
    let table = SimilarityTable::uniform(master.segments(), 0.15);
    let svc = cpu_service();

    let mut server = BackupServer::new(test_config());
    let mut snapshots = vec![master.data().to_vec()];
    for night in 1..=6u64 {
        snapshots.push(master.derive(&table, night));
    }
    let mut reports = Vec::new();
    for snap in &snapshots {
        reports.push(server.backup_image(snap, &svc).unwrap());
    }
    for (i, snap) in snapshots.iter().enumerate() {
        assert_eq!(
            &server.site().restore(reports[i].image_id).unwrap(),
            snap,
            "night {i} restore mismatch"
        );
    }
    // Later nights dedup most content against the accumulated index.
    for report in &reports[1..] {
        assert!(
            report.dedup_fraction() > 0.6,
            "dedup {}",
            report.dedup_fraction()
        );
    }
    // The site stores far less than the logical total.
    assert!(server.site().dedup_ratio() > 3.0);
}

#[test]
fn gpu_and_cpu_agree_on_what_is_new() {
    let master = MasterImage::synthesize(2 << 20, 64 << 10, 2);
    let table = SimilarityTable::uniform(master.segments(), 0.10);
    let snap = master.derive(&table, 9);

    let run = |svc: &dyn ChunkingService| {
        let mut server = BackupServer::new(test_config());
        server.backup_image(master.data(), svc).unwrap();
        server.backup_image(&snap, svc).unwrap()
    };
    let cpu = run(&cpu_service());
    let gpu = run(&gpu_service());

    // Identical chunking -> identical dedup decisions.
    assert_eq!(cpu.chunks, gpu.chunks);
    assert_eq!(cpu.new_chunks, gpu.new_chunks);
    assert_eq!(cpu.new_bytes, gpu.new_bytes);
    // ...but the GPU engine is faster end to end.
    assert!(
        gpu.bandwidth_gbps() > cpu.bandwidth_gbps(),
        "gpu {} !> cpu {}",
        gpu.bandwidth_gbps(),
        cpu.bandwidth_gbps()
    );
}

#[test]
fn min_max_chunk_sizes_enforced_in_backup() {
    let master = MasterImage::synthesize(2 << 20, 64 << 10, 3);
    let mut server = BackupServer::new(test_config());
    let report = server.backup_image(master.data(), &cpu_service()).unwrap();
    assert!(report.chunks > 0);

    let params = ChunkParams::backup();
    // Verify via the manifest: restore and re-chunk.
    let restored = server.site().restore(report.image_id).unwrap();
    let chunks = shredder::rabin::chunk_all(&restored, &params);
    for (i, c) in chunks.iter().enumerate() {
        assert!(c.len <= params.max_size);
        if i + 1 != chunks.len() {
            assert!(c.len >= params.min_size, "chunk {i}: {}", c.len);
        }
    }
}

#[test]
fn skewed_similarity_tables_dedup_accordingly() {
    let master = MasterImage::synthesize(4 << 20, 64 << 10, 4);
    // Hot 20% of segments change almost always; cold 80% almost never.
    let skewed = SimilarityTable::skewed(master.segments(), 0.2, 0.95, 0.01);
    let snap = master.derive(&skewed, 5);

    let mut server = BackupServer::new(test_config());
    server.backup_image(master.data(), &cpu_service()).unwrap();
    let report = server.backup_image(&snap, &cpu_service()).unwrap();

    let expected_change = skewed.expected_change();
    let new_fraction = report.new_bytes as f64 / report.image_bytes as f64;
    assert!(
        (new_fraction - expected_change).abs() < 0.15,
        "new fraction {new_fraction} vs expected change {expected_change}"
    );
    assert_eq!(server.site().restore(report.image_id).unwrap(), snap);
}

#[test]
fn index_statistics_track_dedup() {
    let image = shredder::workloads::compressible_bytes(1 << 20, 64, 6);
    let mut server = BackupServer::new(test_config());
    let first = server.backup_image(&image, &cpu_service()).unwrap();
    let lookups_after_first = server.index().lookups();
    assert_eq!(lookups_after_first, first.chunks as u64);

    let second = server.backup_image(&image, &cpu_service()).unwrap();
    assert_eq!(second.new_chunks, 0);
    assert_eq!(
        server.index().hits(),
        first.chunks as u64 - first.new_chunks as u64 + second.chunks as u64
    );
}
