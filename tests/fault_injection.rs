//! Acceptance: deterministic fault injection and integrity scenarios.
//!
//! The failure-model contract (DESIGN.md §7) in executable form. The
//! load-bearing property everywhere: faults are *timing-level* events,
//! and chunk identity is computed in the functional pass before the
//! timing simulation runs — so no fault schedule may ever change a
//! surviving session's chunks or digests. The scenarios:
//!
//! 1. GPU device death mid-buffer: in-flight work requeues to survivors,
//!    every session still completes bit-identically.
//! 2. Straggler device: `LeastLoaded` placement provably routes load
//!    around the slow device, again without touching chunk identity.
//! 3. Segment-log bit-flips: caught by the digest-verified `scrub` pass
//!    as a typed `StoreError::ScrubFailed`.
//! 4. Torn final log write: `recover()` truncates to the durable prefix
//!    and re-shipped chunks restore bit-identically.
//! 5. Brownout: `capacity_search` over a degraded pool finds a lower
//!    sustained rate, with shedding and p99 still gated by the SLO.
//!
//! 6. Node death in a sharded fleet: requests in flight on the dead
//!    node are reported lost, every surviving request's chunks stay
//!    bit-identical, bounded admission sheds are reported, and the
//!    node's segments repair from `R = 2` replicas when it rejoins.
//!
//! Plus the regression pinning the zero-overhead rule: an *empty*
//! `FaultPlan` is bit-identical — chunks, digests, and timings — to a
//! run with no fault config at all.

use shredder::core::{
    capacity_search, AdmissionControl, ChunkRequest, EngineOutcome, FaultPlan, MemorySource,
    ShredderConfig, ShredderEngine, ShredderService, SliceSource, TelemetryConfig, Workload,
};
use shredder::des::Dur;
use shredder::hash::{sha256, Digest};
use shredder::rabin::{chunk_all, ChunkParams};
use shredder::store::{ChunkStore, StoreError};
use shredder::workloads;

use proptest::prelude::*;

const GPUS: usize = 3;
const STREAMS: usize = 6;
const STREAM_BYTES: usize = 2 << 20;

/// A pool provisioned so the devices — not the SAN reader — set the
/// pace, with enough admission slots to keep every device fed.
fn pool_config() -> ShredderConfig {
    ShredderConfig::gpu_streams_memory()
        .with_buffer_size(256 << 10)
        .with_reader_bandwidth(32e9)
        .with_gpus(GPUS)
        .with_pipeline_depth(4 * GPUS)
}

fn tenant_streams() -> Vec<Vec<u8>> {
    (0..STREAMS)
        .map(|t| workloads::random_bytes(STREAM_BYTES, 0xfa17 + t as u64))
        .collect()
}

fn run_with(streams: &[Vec<u8>], config: ShredderConfig) -> EngineOutcome {
    let mut engine = ShredderEngine::new(config);
    for (t, data) in streams.iter().enumerate() {
        engine.open_named_session(format!("tenant-{t}"), 1, SliceSource::new(data));
    }
    engine.run().expect("engine run failed")
}

fn digests_of(outcome: &EngineOutcome, streams: &[Vec<u8>]) -> Vec<Vec<Digest>> {
    outcome
        .sessions
        .iter()
        .zip(streams)
        .map(|(s, data)| s.chunks.iter().map(|c| sha256(c.slice(data))).collect())
        .collect()
}

/// Asserts the fault-injected run's sessions are bit-identical to the
/// fault-free baseline: same chunk boundaries, same digests, and both
/// equal to a sequential CPU scan of each stream alone.
fn assert_sessions_identical(base: &EngineOutcome, faulted: &EngineOutcome, streams: &[Vec<u8>]) {
    let params = ChunkParams::paper();
    for ((a, b), data) in base.sessions.iter().zip(&faulted.sessions).zip(streams) {
        assert_eq!(a.chunks, b.chunks, "{} diverged under faults", a.name);
        assert_eq!(b.chunks, chunk_all(data, &params), "{}", b.name);
    }
    assert_eq!(digests_of(base, streams), digests_of(faulted, streams));
}

// ----- Scenario 1: device death mid-buffer -----

#[test]
fn device_death_mid_run_requeues_and_keeps_chunks_bit_identical() {
    let streams = tenant_streams();
    let base = run_with(&streams, pool_config());
    assert_eq!(base.report.faults, Default::default());

    // Kill device 1 a third of the way through the fault-free makespan:
    // buffers are in flight, sessions are mid-stream.
    let at = Dur::from_secs_f64(base.report.makespan.as_secs_f64() / 3.0);
    let plan = FaultPlan::new().device_death(at, 1);
    let faulted = run_with(&streams, pool_config().with_faults(plan));

    assert_sessions_identical(&base, &faulted, &streams);

    let faults = &faulted.report.faults;
    assert_eq!(faults.injected, 1);
    assert_eq!(faults.device_deaths, 1);
    assert_eq!(faults.dead_devices, vec![1]);
    assert!(
        faults.replaced_sessions > 0,
        "mid-run death re-placed no sessions: {faults:?}"
    );
    assert!(
        faults.requeued_buffers > 0,
        "mid-run death caught no buffers in flight: {faults:?}"
    );
    // Losing a device costs throughput, never correctness.
    assert!(faulted.report.makespan >= base.report.makespan);

    // Deterministic: the identical fault schedule replays identically.
    let again = run_with(
        &streams,
        pool_config().with_faults(FaultPlan::new().device_death(at, 1)),
    );
    assert_eq!(faulted.report, again.report);
    assert_eq!(faulted.sessions, again.sessions);
}

// ----- Scenario 2: straggler device -----

#[test]
fn least_loaded_placement_routes_around_a_straggler() {
    let streams = tenant_streams();
    let base = run_with(&streams, pool_config());

    // Device 0 runs kernels 4x slow from t=0; LeastLoaded placement
    // weighs load by the slowdown factor, so the straggler should carry
    // measurably fewer bytes than each healthy device.
    let plan = FaultPlan::new().straggler(Dur::ZERO, 0, 4.0);
    let faulted = run_with(&streams, pool_config().with_faults(plan));

    assert_sessions_identical(&base, &faulted, &streams);

    let faults = &faulted.report.faults;
    assert_eq!(faults.stragglers, 1);
    assert_eq!(faults.slowdowns, vec![(0, 4.0)]);
    assert!(faults.dead_devices.is_empty());

    let bytes: Vec<u64> = faulted.report.devices.iter().map(|d| d.bytes).collect();
    for (d, &b) in bytes.iter().enumerate().skip(1) {
        assert!(
            bytes[0] < b,
            "straggler device 0 ({} bytes) not routed around vs device {d} ({b} bytes)",
            bytes[0]
        );
    }
}

// ----- Scenario 3: segment-log corruption caught by scrub -----

#[test]
fn scrub_catches_bit_flips_in_chunked_stream() {
    let data = workloads::random_bytes(1 << 20, 0xc0de);
    let chunks = chunk_all(&data, &ChunkParams::paper());
    let mut store = ChunkStore::new();
    let digests: Vec<Digest> = chunks
        .iter()
        .map(|c| store.put(c.slice(&data).to_vec().into()))
        .collect();
    assert!(digests.len() > 3, "stream produced too few chunks to test");

    // A clean store scrubs clean, and the pass is deterministic.
    let clean = store.scrub().expect("clean store must scrub clean");
    assert_eq!(clean.chunks_scanned, store.chunk_count());
    assert_eq!(store.scrub().unwrap(), clean);

    // Flip one bit in the middle chunk: scrub returns the typed error
    // naming exactly that digest.
    let victim = digests[digests.len() / 2];
    assert!(store.corrupt_chunk(&victim, 9));
    match store.scrub() {
        Err(StoreError::ScrubFailed(r)) => {
            assert_eq!(r.corrupt, vec![victim]);
            assert_eq!(r.chunks_scanned, clean.chunks_scanned);
        }
        other => panic!("expected ScrubFailed, got {other:?}"),
    }
}

// ----- Scenario 4: crash-consistent recovery of a torn log tail -----

#[test]
fn torn_log_tail_recovers_and_reshipped_chunks_restore_bit_identically() {
    let data = workloads::random_bytes(1 << 20, 0x7012);
    let chunks = chunk_all(&data, &ChunkParams::paper());
    let mut store = ChunkStore::new();
    let mut recipe = Vec::new();
    for c in &chunks {
        let payload = c.slice(&data);
        recipe.push((store.put(payload.to_vec().into()), payload.len()));
    }
    let gen = store.commit_snapshot("vm", &recipe).unwrap();
    assert_eq!(store.restore("vm", gen).unwrap(), data);

    // Crash: the final segment write tears mid-chunk.
    let torn = store.tear_log_tail(10_000);
    assert!(torn > 0);

    // Reopen: recovery truncates to the durable prefix…
    let rec = store.recover();
    assert!(
        !rec.dropped_digests.is_empty(),
        "tearing 10kB dropped nothing: {rec:?}"
    );
    assert_eq!(rec.chunks_checked, recipe.len());
    // …after which the store is internally consistent again…
    store.scrub().expect("recovered store must scrub clean");
    // …and re-shipping the lost chunks (content-addressed, so the
    // re-put lands on the same digests) restores bit-identically.
    for c in &chunks {
        store.put(c.slice(&data).to_vec().into());
    }
    assert_eq!(store.restore("vm", gen).unwrap(), data);
}

// ----- Scenario 5: brownout capacity under a degraded pool -----

const REQUESTS: usize = 16;
const REQ_BYTES: usize = 1 << 20;

fn service_run(
    faults: FaultPlan,
    workload: &Workload,
) -> Result<shredder::core::ServiceReport, shredder::core::ChunkError> {
    // A fast SAN fabric and kernel-heavy requests so the device pool —
    // the thing the brownout degrades — sets the service's capacity.
    let cfg = ShredderConfig::gpu_streams_memory()
        .with_buffer_size(256 << 10)
        .with_reader_bandwidth(32e9)
        .with_gpus(2)
        .with_pipeline_depth(8)
        .with_faults(faults);
    let mut service = ShredderService::new(cfg)
        .with_admission(AdmissionControl::fifo(4).with_max_queue_delay(Dur::from_millis(1)));
    for t in 0..REQUESTS as u64 {
        service.submit(ChunkRequest::new(MemorySource::pseudo_random(REQ_BYTES, t)));
    }
    Ok(service.run(workload)?.service().clone())
}

#[test]
fn brownout_capacity_search_finds_lower_sustained_rate_with_p99_gated() {
    let mu = service_run(FaultPlan::new(), &Workload::Batch)
        .unwrap()
        .achieved_rps;
    let slo = Dur::from_millis(2);

    let search = |faults: fn() -> FaultPlan| {
        capacity_search(slo, 0.05 * mu, 2.0 * mu, 6, |rate| {
            service_run(faults(), &Workload::poisson(rate, 4242))
        })
        .expect("capacity search failed")
    };

    let healthy = search(FaultPlan::new);
    // Brownout: one of the two devices is dead from t=0.
    let degraded = search(|| FaultPlan::new().device_death(Dur::ZERO, 1));

    assert!(healthy.sustained_rps > 0.0, "healthy: {healthy:?}");
    assert!(degraded.sustained_rps > 0.0, "degraded: {degraded:?}");
    assert!(
        degraded.sustained_rps < healthy.sustained_rps,
        "losing half the pool must cost capacity: degraded {} !< healthy {}",
        degraded.sustained_rps,
        healthy.sustained_rps
    );
    // The sustained operating points still meet the latency SLO.
    for report in [&healthy, &degraded] {
        let p99 = report.p99_at_sustained.expect("passing trial records p99");
        assert!(p99 <= slo, "{p99} > {slo}");
    }
    // And the brownout pool genuinely sheds under a burst well past the
    // healthy pool's pace.
    let overloaded = service_run(
        FaultPlan::new().device_death(Dur::ZERO, 1),
        &Workload::poisson(4.0 * mu, 4242),
    )
    .unwrap();
    assert!(
        overloaded.shed > 0,
        "degraded pool at 4x healthy capacity never shed"
    );
    assert_eq!(overloaded.completed + overloaded.shed, REQUESTS);
}

// ----- Scenario 6: node death in a sharded fleet -----

use shredder::cluster::{FleetConfig, FleetOutcome, FleetRequest, MembershipPlan, ShredderFleet};

const FLEET_STREAMS: usize = 20;
const FLEET_STREAM_BYTES: usize = 256 << 10;

fn fleet_streams() -> Vec<Vec<u8>> {
    (0..FLEET_STREAMS)
        .map(|t| workloads::random_bytes(FLEET_STREAM_BYTES, 0xf1ee7 + t as u64))
        .collect()
}

/// A two-node fleet with serialized per-node pipelines and a bounded
/// admission queue, so a batch overloads each node deterministically
/// (sheds) and a mid-backlog death catches requests in flight (losses).
fn fleet_config() -> FleetConfig {
    FleetConfig::new(
        2,
        ShredderConfig::gpu_streams_memory().with_buffer_size(128 << 10),
    )
    .with_admission(AdmissionControl::fifo(1).with_queue_depth(6))
    .with_replication(2)
}

fn run_fleet(streams: &[Vec<u8>], config: FleetConfig) -> FleetOutcome {
    let mut fleet = ShredderFleet::new(config);
    for (t, data) in streams.iter().enumerate() {
        fleet.submit(
            FleetRequest::new(format!("tenant-{t}"), SliceSource::new(data))
                .named(format!("tenant-{t}")),
        );
    }
    fleet.run(&Workload::Batch).expect("fleet run failed")
}

#[test]
fn fleet_node_death_sheds_loses_in_flight_and_repairs_on_rejoin() {
    let streams = fleet_streams();
    let base = run_fleet(&streams, fleet_config());
    assert!(
        base.report.shed > 0,
        "bounded admission never shed under the batch: {:?}",
        base.report
    );
    assert_eq!(base.report.lost, 0);
    assert_eq!(
        base.report.completed + base.report.shed,
        FLEET_STREAMS,
        "fault-free fleet neither completes nor sheds some request"
    );

    // Kill node 0 a third of the way through its backlog, rejoin it
    // after everything else has drained.
    let full = base.report.makespan;
    let death_at = Dur::from_nanos(full.as_nanos() / 3);
    let rejoin_at = Dur::from_nanos(full.as_nanos() * 2);
    let faulted = run_fleet(
        &streams,
        fleet_config()
            .with_faults(FaultPlan::new().device_death(death_at, 0))
            .with_membership(MembershipPlan::new().join(rejoin_at, 0)),
    );
    let report = &faulted.report;

    // The death converts part of node 0's backlog into reported
    // losses; batch arrivals mean the shed set cannot change.
    assert!(
        report.lost > 0,
        "mid-backlog death caught nothing in flight"
    );
    assert_eq!(
        report.shed, base.report.shed,
        "sheds are pre-death admission decisions"
    );
    assert_eq!(report.completed + report.shed + report.lost, FLEET_STREAMS);
    assert_eq!(
        report.node(0).unwrap().lost,
        report.lost,
        "only the dead node loses"
    );

    // Surviving requests — on both nodes — are bit-identical to the
    // fault-free run, digests included.
    let mut survivors = 0;
    for ((faulted_req, base_req), data) in faulted.requests.iter().zip(&base.requests).zip(&streams)
    {
        if let Some(session) = faulted_req.outcome.completed() {
            let base_session = base_req
                .outcome
                .completed()
                .expect("faulted completion implies baseline completion under batch arrivals");
            assert_eq!(
                session, base_session,
                "{} diverged under the death",
                faulted_req.name
            );
            let d1: Vec<Digest> = session
                .chunks
                .iter()
                .map(|c| sha256(c.slice(data)))
                .collect();
            let d2: Vec<Digest> = base_session
                .chunks
                .iter()
                .map(|c| sha256(c.slice(data)))
                .collect();
            assert_eq!(d1, d2);
            survivors += 1;
        }
    }
    assert_eq!(survivors, report.completed);

    // On rejoin, replicas repair the dead node's segments: every
    // generation the fleet still holds lands back on node 0's fresh
    // store and restores digest-verified.
    assert_eq!(report.repair.events, 1);
    assert!(
        report.repair.snapshots_installed > 0,
        "rejoin repaired nothing: {:?}",
        report.repair
    );
    let repaired = faulted.store(0).expect("node 0 exists");
    let repaired = repaired.borrow();
    repaired.scrub().expect("repaired store must scrub clean");
    let mut restored = 0;
    for (req, data) in faulted.requests.iter().zip(&streams) {
        for generation in repaired.generations(&req.store_stream) {
            let bytes = repaired
                .restore(&req.store_stream, generation)
                .expect("repaired generation failed digest-verified restore");
            assert_eq!(
                sha256(&bytes),
                sha256(data),
                "{} corrupt after repair",
                req.store_stream
            );
            restored += 1;
        }
    }
    assert!(restored > 0, "node 0 holds nothing after repair");

    // Determinism: the same death/rejoin schedule replays identically.
    let again = run_fleet(
        &streams,
        fleet_config()
            .with_faults(FaultPlan::new().device_death(death_at, 0))
            .with_membership(MembershipPlan::new().join(rejoin_at, 0)),
    );
    assert_eq!(again.report, faulted.report);
}

/// Dumps the fleet node-death scenario's headline numbers as JSON to
/// the path named by `SHREDDER_FLEET_JSON` (no-op when unset). The CI
/// fault-matrix job uploads the dump next to the per-seed device-level
/// fault reports, so every run leaves an auditable record of the
/// cluster failure model: losses, sheds, repair traffic, replication
/// amplification.
#[test]
fn fleet_fault_matrix_dump() {
    if std::env::var("SHREDDER_FLEET_JSON").map_or(true, |p| p.is_empty()) {
        return;
    }
    let streams = fleet_streams();
    let base = run_fleet(&streams, fleet_config());
    let full = base.report.makespan;
    let faulted = run_fleet(
        &streams,
        fleet_config()
            .with_faults(FaultPlan::new().device_death(Dur::from_nanos(full.as_nanos() / 3), 0))
            .with_membership(MembershipPlan::new().join(Dur::from_nanos(full.as_nanos() * 2), 0)),
    );
    let r = &faulted.report;
    let json = format!(
        concat!(
            "{{\"nodes\":2,\"replication\":{},\"completed\":{},\"shed\":{},",
            "\"lost\":{},\"repair_snapshots\":{},\"repair_bytes\":{},",
            "\"replication_logical_bytes\":{},\"replication_physical_bytes\":{},",
            "\"replication_amplification\":{:.6},\"rebalance_bytes\":{},",
            "\"makespan_ms\":{:.6},\"baseline_makespan_ms\":{:.6}}}"
        ),
        r.replication.factor,
        r.completed,
        r.shed,
        r.lost,
        r.repair.snapshots_installed,
        r.repair.bytes_copied,
        r.replication.logical_bytes,
        r.replication.physical_bytes,
        r.replication_amplification(),
        r.rebalance.bytes_moved,
        r.makespan.as_millis_f64(),
        base.report.makespan.as_millis_f64(),
    );
    if let Some(path) = shredder::telemetry::dump_json("SHREDDER_FLEET_JSON", &json) {
        println!("fleet fault report written to {path}");
    }
}

// ----- Regression: the empty plan is the zero-overhead no-op -----

#[test]
fn empty_fault_plan_is_bit_identical_to_no_fault_config() {
    let streams = tenant_streams();
    let plain = run_with(&streams, pool_config());
    let empty = run_with(&streams, pool_config().with_faults(FaultPlan::new()));

    // Not just the chunks: the *entire* report — timings, utilization,
    // queue waits, device accounting — must match bit-for-bit.
    assert_eq!(plain.sessions, empty.sessions);
    assert_eq!(plain.report, empty.report);
    assert_eq!(empty.report.faults, Default::default());
}

// ----- Property: no fault schedule changes surviving sessions -----

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random seeded fault schedules — deaths and stragglers at random
    /// instants — never change any surviving session's chunks or
    /// digests. (`FaultPlan::random` never kills the last device, and
    /// death requeues rather than kills, so *every* session survives.)
    #[test]
    fn random_fault_schedules_never_change_surviving_sessions(seed in 0u64..1024) {
        let streams: Vec<Vec<u8>> = (0..3)
            .map(|t| workloads::random_bytes(1 << 20, 0x9e37 + t as u64))
            .collect();
        let base = run_with(&streams, pool_config());
        let horizon = base.report.makespan;
        let plan = FaultPlan::random(seed, GPUS, horizon);
        prop_assert!(!plan.is_empty());

        let faulted = run_with(&streams, pool_config().with_faults(plan.clone()));
        prop_assert_eq!(faulted.sessions.len(), streams.len());
        for ((a, b), data) in base.sessions.iter().zip(&faulted.sessions).zip(&streams) {
            prop_assert_eq!(&a.chunks, &b.chunks, "{} diverged under {:?}", a.name, plan);
            let d1: Vec<Digest> = a.chunks.iter().map(|c| sha256(c.slice(data))).collect();
            let d2: Vec<Digest> = b.chunks.iter().map(|c| sha256(c.slice(data))).collect();
            prop_assert_eq!(d1, d2);
        }
        prop_assert_eq!(faulted.report.faults.injected, plan.len());
    }
}

// ----- CI fault-matrix artifact -----

/// Runs one seeded fault schedule end to end and dumps the fault report
/// as JSON to the path named by `SHREDDER_FAULT_JSON` (no-op when
/// unset). `SHREDDER_FAULT_SEED` selects the schedule; the CI
/// fault-matrix job runs this under several seeds and uploads the
/// dumps as artifacts. When `SHREDDER_TRACE_JSON` also names a path,
/// the same schedule reruns with telemetry on and its Chrome trace is
/// dumped there too.
#[test]
fn fault_matrix_report_dump() {
    let seed: u64 = std::env::var("SHREDDER_FAULT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let streams = tenant_streams();
    let base = run_with(&streams, pool_config());
    let plan = FaultPlan::random(seed, GPUS, base.report.makespan);
    let faulted = run_with(&streams, pool_config().with_faults(plan.clone()));
    assert_sessions_identical(&base, &faulted, &streams);

    let f = &faulted.report.faults;
    let slowdowns: Vec<String> = f
        .slowdowns
        .iter()
        .map(|(d, s)| format!("{{\"device\":{d},\"slowdown\":{s}}}"))
        .collect();
    let dead: Vec<String> = f.dead_devices.iter().map(|d| d.to_string()).collect();
    let json = format!(
        concat!(
            "{{\"seed\":{},\"injected\":{},\"device_deaths\":{},",
            "\"deaths_skipped\":{},\"stragglers\":{},\"requeued_buffers\":{},",
            "\"replaced_sessions\":{},\"dead_devices\":[{}],\"slowdowns\":[{}],",
            "\"makespan_ms\":{:.6},\"baseline_makespan_ms\":{:.6},",
            "\"sessions_bit_identical\":true}}"
        ),
        seed,
        f.injected,
        f.device_deaths,
        f.deaths_skipped,
        f.stragglers,
        f.requeued_buffers,
        f.replaced_sessions,
        dead.join(","),
        slowdowns.join(","),
        faulted.report.makespan.as_millis_f64(),
        base.report.makespan.as_millis_f64(),
    );
    if let Some(path) = shredder::telemetry::dump_json("SHREDDER_FAULT_JSON", &json) {
        println!("fault report written to {path}");
    }

    if std::env::var("SHREDDER_TRACE_JSON").is_ok_and(|p| !p.is_empty()) {
        let traced = run_with(
            &streams,
            pool_config()
                .with_faults(plan)
                .with_telemetry(TelemetryConfig::enabled()),
        );
        let telemetry = traced
            .report
            .telemetry
            .expect("telemetry-on run carries a report");
        if let Some(path) =
            shredder::telemetry::dump_json("SHREDDER_TRACE_JSON", &telemetry.to_chrome_json())
        {
            println!("chrome trace written to {path}");
        }
    }
}
