//! Integration: every chunking engine in the workspace produces
//! bit-identical chunk boundaries.
//!
//! This is the load-bearing correctness property of the reproduction:
//! the GPU kernels, the parallel SPMD host chunker, the streaming
//! chunker and the batch chunker must all agree, with and without
//! min/max constraints, on every kind of workload.

use shredder::core::{ChunkingService, HostChunker, HostChunkerConfig, Shredder, ShredderConfig};
use shredder::gpu::kernel::{ChunkKernel, KernelVariant};
use shredder::gpu::DeviceConfig;
use shredder::rabin::chunker::raw_cuts;
use shredder::rabin::{chunk_all, chunk_parallel, ChunkParams};
use shredder::workloads;

fn workloads_under_test() -> Vec<(&'static str, Vec<u8>)> {
    vec![
        ("random", workloads::random_bytes(2 << 20, 1)),
        (
            "compressible",
            workloads::compressible_bytes(2 << 20, 64, 2),
        ),
        ("text", workloads::words_corpus(2 << 20, 500, 3)),
        ("zeros", vec![0u8; 1 << 20]),
        ("tiny", workloads::random_bytes(100, 4)),
        ("empty", Vec::new()),
    ]
}

#[test]
fn all_engines_agree_on_boundaries() {
    let params = ChunkParams::paper();
    for (name, data) in workloads_under_test() {
        let reference = chunk_all(&data, &params);

        let parallel = chunk_parallel(&data, &params, 8);
        assert_eq!(parallel, reference, "{name}: parallel CPU");

        for preset in [
            ShredderConfig::gpu_basic(),
            ShredderConfig::gpu_streams(),
            ShredderConfig::gpu_streams_memory(),
        ] {
            let label = format!("{name}: {:?}", preset.kernel);
            let out = Shredder::new(preset.with_buffer_size(256 << 10))
                .chunk_stream(&data)
                .unwrap();
            assert_eq!(out.chunks, reference, "{label}");
        }

        let host = HostChunker::with_defaults().chunk_stream(&data).unwrap();
        assert_eq!(host.chunks, reference, "{name}: host service");
    }
}

#[test]
fn engines_agree_with_min_max_constraints() {
    let params = ChunkParams::backup();
    for (name, data) in workloads_under_test() {
        let reference = chunk_all(&data, &params);

        let host = HostChunker::new(HostChunkerConfig {
            params: params.clone(),
            ..HostChunkerConfig::optimized()
        })
        .chunk_stream(&data)
        .unwrap();
        assert_eq!(host.chunks, reference, "{name}: host");

        let gpu = Shredder::new(
            ShredderConfig::gpu_streams_memory()
                .with_params(params.clone())
                .with_buffer_size(256 << 10),
        )
        .chunk_stream(&data)
        .unwrap();
        assert_eq!(gpu.chunks, reference, "{name}: gpu");
    }
}

#[test]
fn gpu_kernels_agree_with_sequential_raw_cuts() {
    let params = ChunkParams::paper();
    let cfg = DeviceConfig::tesla_c2050();
    for (name, data) in workloads_under_test() {
        let reference = raw_cuts(&data, &params);
        for variant in KernelVariant::ALL {
            let kernel = ChunkKernel::new(params.clone(), variant);
            let sequential = kernel.boundary().raw_cuts(&data);
            let out = kernel.run(&cfg, &data).expect("kernel");
            assert_eq!(out.raw_cuts, sequential, "{name}: {variant}");
            if !variant.is_gear() {
                assert_eq!(out.cut_offsets(), reference, "{name}: {variant}");
            }
        }
    }
}

#[test]
fn gear_engine_matches_sequential_gear_chunks() {
    // A Gear-configured engine must agree with the sequential Gear
    // kernel (FastCDC policy included) exactly as the Rabin engines
    // agree with `chunk_all`, on every workload and buffer size.
    use shredder::rabin::{BoundaryKernel, GearKernel};
    let params = ChunkParams::paper();
    let gear = GearKernel::matched(&params);
    for (name, data) in workloads_under_test() {
        let reference = gear.chunks(&data);
        for buffer in [64 << 10, 1 << 20] {
            let out = Shredder::new(
                ShredderConfig::gpu_streams_memory()
                    .with_params(params.clone())
                    .with_chunk_kernel(KernelVariant::GearCoalesced)
                    .with_buffer_size(buffer),
            )
            .chunk_stream(&data)
            .unwrap();
            assert_eq!(out.chunks, reference, "{name}: gear buffer {buffer}");
        }
    }
}

#[test]
fn buffer_size_does_not_change_boundaries() {
    let data = workloads::random_bytes(3 << 20, 9);
    let params = ChunkParams::paper();
    let reference = chunk_all(&data, &params);
    for buffer in [64 << 10, 256 << 10, 1 << 20, 4 << 20] {
        let out = Shredder::new(ShredderConfig::gpu_streams_memory().with_buffer_size(buffer))
            .chunk_stream(&data)
            .unwrap();
        assert_eq!(out.chunks, reference, "buffer {buffer}");
    }
}

#[test]
fn chunk_digests_are_engine_independent() {
    let data = workloads::compressible_bytes(1 << 20, 32, 10);
    let gpu = Shredder::new(ShredderConfig::default().with_buffer_size(256 << 10))
        .chunk_stream(&data)
        .unwrap();
    let cpu = HostChunker::with_defaults().chunk_stream(&data).unwrap();
    assert_eq!(gpu.digests(&data), cpu.digests(&data));
}
