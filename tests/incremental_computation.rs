//! Integration: case study I end to end.
//!
//! Inc-HDFS uploads with content-defined chunking feed the incremental
//! MapReduce engine; across input versions, unchanged splits
//! deduplicate at the storage level and their map tasks are memoized —
//! while incremental outputs remain bit-identical to from-scratch runs.

use shredder::core::{HostChunker, HostChunkerConfig};
use shredder::hdfs::{IncHdfs, TextInputFormat};
use shredder::mapreduce::apps::{Cooccurrence, KMeans, KMeansDriver, WordCount};
use shredder::mapreduce::{ClusterConfig, IncrementalRunner};
use shredder::rabin::ChunkParams;
use shredder::workloads::{self, MutationSpec};

fn service() -> HostChunker {
    HostChunker::new(HostChunkerConfig {
        params: ChunkParams::paper().with_expected_size(32 << 10),
        ..HostChunkerConfig::optimized()
    })
}

fn corpus() -> Vec<u8> {
    workloads::words_corpus(3 << 20, 1500, 0xcafe)
}

#[test]
fn wordcount_incremental_pipeline() {
    let v1 = corpus();
    let v2 = workloads::mutate(
        &v1,
        &MutationSpec {
            span_bytes: 512 << 10, // localized edits, well above split size
            ..MutationSpec::replace(0.05, 1)
        },
    );
    let svc = service();

    let mut fs = IncHdfs::new(20);
    fs.copy_from_local_gpu("/in", &v1, &svc, &TextInputFormat)
        .unwrap();

    let mut runner = IncrementalRunner::new(WordCount, ClusterConfig::paper());
    runner.run(&fs.splits("/in").unwrap());

    let up2 = fs
        .copy_from_local_gpu("/in", &v2, &svc, &TextInputFormat)
        .unwrap();
    assert!(
        up2.dedup_fraction() > 0.6,
        "storage dedup too low: {}",
        up2.dedup_fraction()
    );

    let splits = fs.splits("/in").unwrap();
    let incremental = runner.run(&splits);
    let full = IncrementalRunner::new(WordCount, ClusterConfig::paper()).run(&splits);

    assert_eq!(incremental.output, full.output);
    assert!(
        incremental.stats.memo_hits as f64 > 0.6 * splits.len() as f64,
        "memo hits {}/{}",
        incremental.stats.memo_hits,
        splits.len()
    );
    assert!(
        incremental.stats.timing.total < full.stats.timing.total,
        "incremental not faster"
    );
}

#[test]
fn cooccurrence_outputs_stable_across_versions() {
    let v1 = corpus();
    let v2 = workloads::mutate(
        &v1,
        &MutationSpec {
            span_bytes: 512 << 10,
            ..MutationSpec::replace(0.10, 2)
        },
    );
    let svc = service();

    let mut fs = IncHdfs::new(20);
    fs.copy_from_local_gpu("/in", &v1, &svc, &TextInputFormat)
        .unwrap();
    let mut runner = IncrementalRunner::new(Cooccurrence::default(), ClusterConfig::paper());
    runner.run(&fs.splits("/in").unwrap());

    fs.copy_from_local_gpu("/in", &v2, &svc, &TextInputFormat)
        .unwrap();
    let splits = fs.splits("/in").unwrap();
    let incremental = runner.run(&splits);
    let full = IncrementalRunner::new(Cooccurrence::default(), ClusterConfig::paper()).run(&splits);
    assert_eq!(incremental.output, full.output);
    assert!(incremental.stats.memo_hits > 0);
}

#[test]
fn kmeans_incremental_matches_fresh() {
    let pts = workloads::kmeans_points(20_000, 4, 5);
    let v1 = workloads::points_to_records(&pts);
    let svc = service();
    let driver = KMeansDriver {
        max_iterations: 4,
        tolerance: 0.01,
    };

    let mut fs = IncHdfs::new(20);
    fs.copy_from_local_gpu("/pts", &v1, &svc, &TextInputFormat)
        .unwrap();
    let splits = fs.splits("/pts").unwrap();

    let mut runner = IncrementalRunner::new(KMeans::new(4), ClusterConfig::paper());
    let first = driver.run(&mut runner, &splits);

    // Re-run from the same deterministic init with the primed memo.
    runner
        .job_mut()
        .set_centroids(KMeans::new(4).centroids().to_vec());
    let second = driver.run(&mut runner, &splits);

    assert_eq!(first.centroids, second.centroids);
    assert!(
        second.total_time < first.total_time,
        "memoized rerun not faster"
    );
    assert_eq!(second.runs[0].memo_hits, splits.len());
}

#[test]
fn fixed_size_uploads_defeat_memoization() {
    // The §6.2 motivation: with plain HDFS fixed-size splits, an
    // insertion shifts every split and the memo table is useless.
    let v1 = corpus();
    let mut v2 = b"one inserted record\n".to_vec();
    v2.extend_from_slice(&v1);

    let mut fs = IncHdfs::new(20);
    fs.copy_from_local("/in", &v1, 32 << 10);
    let mut runner = IncrementalRunner::new(WordCount, ClusterConfig::paper());
    runner.run(&fs.splits("/in").unwrap());

    fs.copy_from_local("/in", &v2, 32 << 10);
    let splits = fs.splits("/in").unwrap();
    let rerun = runner.run(&splits);
    assert!(
        (rerun.stats.memo_hits as f64) < 0.05 * splits.len() as f64,
        "fixed-size splits unexpectedly memoized: {}/{}",
        rerun.stats.memo_hits,
        splits.len()
    );
}

#[test]
fn semantic_chunking_preserves_record_integrity() {
    // Uploading through the InputFormat, every split holds whole records
    // so per-split word counts sum to the whole-file counts.
    let v1 = corpus();
    let svc = service();
    let mut fs = IncHdfs::new(4);
    fs.copy_from_local_gpu("/in", &v1, &svc, &TextInputFormat)
        .unwrap();

    let mut from_splits = std::collections::BTreeMap::new();
    for split in fs.splits("/in").unwrap() {
        for (w, c) in shredder::mapreduce::MapReduceJob::map(&WordCount, &split.bytes) {
            *from_splits.entry(w).or_insert(0u64) += c;
        }
    }
    let mut whole = std::collections::BTreeMap::new();
    for w in String::from_utf8(v1).unwrap().split_whitespace() {
        *whole.entry(w.to_string()).or_insert(0u64) += 1;
    }
    assert_eq!(from_splits, whole);
}
