//! End-to-end generation lifecycle: N mutated generations ingested
//! through `StoreSink` sessions on the engine, bounded physical growth,
//! bit-identical digest-verified restore of every live generation, and
//! GC reclaim of exactly the bytes unique to expired generations.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use shredder::core::{
    ShredderConfig, ShredderEngine, SliceSource, StageKind, StoreSink, StoreSinkConfig,
};
use shredder::hash::Digest;
use shredder::store::ChunkStore;
use shredder::workloads::{mutate, MutationSpec};
use shredder_rabin::ChunkParams;

const GENERATIONS: usize = 8;

fn config() -> ShredderConfig {
    ShredderConfig::gpu_streams_memory()
        .with_params(ChunkParams {
            min_size: 1 << 10,
            max_size: 16 << 10,
            ..ChunkParams::paper().with_expected_size(4 << 10)
        })
        .with_buffer_size(256 << 10)
        .with_segment_bytes(256 << 10)
        // Aggressive compaction: any segment with a dead byte is
        // rewritten, so GC reclaims expired bytes immediately (a lower
        // threshold defers reclaim until segments are mostly dead).
        .with_gc_threshold(1.0)
}

/// Digest → bytes map of one generation's manifest (for the oracle).
fn manifest_digests(store: &ChunkStore, gen: u64) -> HashMap<Digest, u64> {
    store
        .manifest("vm", gen)
        .expect("live manifest")
        .entries
        .iter()
        .map(|e| (e.digest, e.len as u64))
        .collect()
}

#[test]
fn eight_generations_ingest_restore_expire_gc() {
    let cfg = config();
    let store = Rc::new(RefCell::new(ChunkStore::with_config(cfg.store_config())));

    let mut data = shredder::workloads::compressible_bytes(2 << 20, 256, 0xe2e);
    let mut kept: Vec<(u64, Vec<u8>)> = Vec::new();
    let mut total_new_bytes = 0u64;
    let mut total_logical = 0u64;
    let mut unique_fraction_after_first = Vec::new();

    for g in 0..GENERATIONS {
        let mut sink = StoreSink::new("vm", StoreSinkConfig::default(), store.clone());
        let report = {
            let mut engine = ShredderEngine::new(cfg.clone());
            engine.open_sink_session(format!("gen-{g}"), 1, SliceSource::new(&data), &mut sink);
            engine.run().expect("engine run").report
        };
        // The store commit ran as an in-simulation stage of the engine.
        let stage = report
            .sink_stage("store-commit")
            .expect("store stage reported");
        assert_eq!(stage.kind, StageKind::Store);
        assert!(stage.busy > shredder::des::Dur::ZERO);
        assert!(report.sink_stage("fingerprint").is_some());

        let generation = sink.generation().expect("committed at stream end");
        assert_eq!(generation, g as u64);
        assert_eq!(sink.new_bytes() + sink.dedup_bytes(), data.len() as u64);
        total_new_bytes += sink.new_bytes();
        total_logical += data.len() as u64;
        if g > 0 {
            unique_fraction_after_first.push(sink.new_bytes() as f64 / data.len() as f64);
        }
        kept.push((generation, data.clone()));
        data = mutate(&data, &MutationSpec::replace(0.05, 0xbeef + g as u64));
    }

    // Physical growth == the unique bytes each generation shipped, i.e.
    // logical growth × unique-data ratio, exactly.
    let store_ref = store.borrow();
    assert_eq!(store_ref.physical_bytes(), total_new_bytes);
    assert_eq!(store_ref.logical_bytes(), total_logical);
    assert!(store_ref.physical_bytes() < total_logical);
    // 5% localized mutations: incremental generations stay mostly dedup.
    for (i, f) in unique_fraction_after_first.iter().enumerate() {
        assert!(
            *f < 0.5,
            "generation {} shipped {:.0}% unique",
            i + 1,
            f * 100.0
        );
    }

    // Every live generation restores bit-identical (restore() verifies
    // every digest against the re-hashed payload internally).
    for (generation, expected) in &kept {
        assert_eq!(&store_ref.restore("vm", *generation).unwrap(), expected);
    }

    // Oracle for the expiry half: bytes referenced ONLY by the first
    // half's manifests.
    let half = GENERATIONS / 2;
    let mut expired_refs: HashMap<Digest, u64> = HashMap::new();
    let mut live_refs: HashSet<Digest> = HashSet::new();
    for (generation, _) in &kept[..half] {
        expired_refs.extend(manifest_digests(&store_ref, *generation));
    }
    for (generation, _) in &kept[half..] {
        live_refs.extend(manifest_digests(&store_ref, *generation).into_keys());
    }
    let unique_expired_bytes: u64 = expired_refs
        .iter()
        .filter(|(d, _)| !live_refs.contains(*d))
        .map(|(_, len)| *len)
        .sum();
    assert!(
        unique_expired_bytes > 0,
        "mutations must create unique data"
    );
    drop(store_ref);

    // Expire the first half; GC must reclaim at least the bytes unique
    // to it (here: exactly — the freed set IS the unique set).
    let expired = store.borrow_mut().expire("vm", (half - 1) as u64);
    assert_eq!(expired, half);
    let gc = store.borrow_mut().gc();
    assert_eq!(gc.freed_bytes, unique_expired_bytes);
    // The acceptance bar: GC reclaims at least the bytes unique to the
    // expired generations (at threshold 1.0, exactly: the footprint
    // drops to the live bytes).
    assert!(
        gc.reclaimed_bytes() >= unique_expired_bytes,
        "reclaimed {} < unique-to-expired {unique_expired_bytes}",
        gc.reclaimed_bytes()
    );
    assert_eq!(store.borrow().physical_bytes(), store.borrow().live_bytes());

    // ... and the reclaim is reported in the StoreReport.
    let report = store.borrow().report();
    assert_eq!(report.gc_runs, 1);
    assert_eq!(report.freed_bytes_total, unique_expired_bytes);
    assert_eq!(report.freed_chunks_total as usize, gc.freed_chunks);
    assert_eq!(report.snapshots, GENERATIONS - half);

    // Survivors restore bit-identical after compaction moved payloads;
    // expired generations are gone.
    let store_ref = store.borrow();
    for (generation, expected) in &kept[half..] {
        assert_eq!(&store_ref.restore("vm", *generation).unwrap(), expected);
    }
    for (generation, _) in &kept[..half] {
        assert!(store_ref.restore("vm", *generation).is_err());
    }
}

#[test]
fn batched_generations_share_one_engine_and_store() {
    // Two streams ("vm-a", "vm-b") ingested as sessions of ONE engine
    // run, committing into one shared store: cross-stream dedup works
    // and each stream restores independently.
    let cfg = config();
    let store = Rc::new(RefCell::new(ChunkStore::with_config(cfg.store_config())));
    let a = shredder::workloads::compressible_bytes(1 << 20, 256, 77);
    let b = mutate(&a, &MutationSpec::replace(0.1, 78));

    let mut sink_a = StoreSink::new("vm-a", StoreSinkConfig::default(), store.clone());
    let mut sink_b = StoreSink::new("vm-b", StoreSinkConfig::default(), store.clone());
    {
        let mut engine = ShredderEngine::new(cfg);
        engine.open_sink_session("a", 1, SliceSource::new(&a), &mut sink_a);
        engine.open_sink_session("b", 1, SliceSource::new(&b), &mut sink_b);
        engine.run().expect("engine run");
    }
    let gen_a = sink_a.generation().unwrap();
    let gen_b = sink_b.generation().unwrap();

    let s = store.borrow();
    assert_eq!(s.restore("vm-a", gen_a).unwrap(), a);
    assert_eq!(s.restore("vm-b", gen_b).unwrap(), b);
    // Stream b deduplicated against stream a's chunks in the same run.
    assert!(sink_b.dedup_bytes() > 0, "cross-stream dedup");
    assert!(s.physical_bytes() < (a.len() + b.len()) as u64);
}
