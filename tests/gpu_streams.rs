//! Integration: CUDA-style streams reproduce the Figure 4 timeline on
//! top of the shared device engines.

use shredder::des::{Dur, Simulation};
use shredder::gpu::stream::Stream;
use shredder::gpu::{DeviceConfig, GpuExecutor, HostMemKind};

#[test]
fn one_stream_serializes_two_streams_overlap() {
    let run = |streams: usize, buffers: usize| {
        let mut sim = Simulation::new();
        let gpu = GpuExecutor::new(&DeviceConfig::tesla_c2050());
        let pool: Vec<Stream> = (0..streams).map(|_| Stream::new(&gpu)).collect();
        for i in 0..buffers {
            let s = &pool[i % streams];
            s.enqueue_h2d(&mut sim, 64 << 20, HostMemKind::Pinned);
            s.enqueue_kernel(&mut sim, Dur::from_millis(40));
        }
        sim.run().as_millis_f64()
    };

    let serialized = run(1, 6);
    let double_buffered = run(2, 6);
    // Single stream: 6 × (12.4 + 40); two streams: ~12.4 + 6 × 40.
    assert!(serialized > 300.0, "{serialized}");
    assert!(double_buffered < serialized * 0.85, "{double_buffered}");
    assert!((double_buffered - (12.4 + 240.0)).abs() < 15.0);
}

#[test]
fn events_order_work_across_streams() {
    let mut sim = Simulation::new();
    let gpu = GpuExecutor::new(&DeviceConfig::tesla_c2050());
    let producer = Stream::new(&gpu);
    let consumer = Stream::new(&gpu);

    // Producer copies data in; consumer must not start its kernel before
    // the copy has landed.
    producer.enqueue_h2d(&mut sim, 128 << 20, HostMemKind::Pinned); // ~24.8ms
    let ready = producer.record_event(&mut sim);
    consumer.wait_event(&mut sim, &ready);
    consumer.enqueue_kernel(&mut sim, Dur::from_millis(10));

    let end = sim.run().as_millis_f64();
    assert!(ready.is_fired());
    assert!(end > 34.0 && end < 37.0, "{end}ms");
    assert_eq!(consumer.completed(), 2); // wait + kernel
}

#[test]
fn stream_counters_track_operations() {
    let mut sim = Simulation::new();
    let gpu = GpuExecutor::new(&DeviceConfig::tesla_c2050());
    let s = Stream::new(&gpu);
    for _ in 0..5 {
        s.enqueue_kernel(&mut sim, Dur::from_micros(10));
    }
    assert_eq!(s.issued(), 5);
    sim.run();
    assert_eq!(s.completed(), 5);
}
