//! Integration: the online service frontend (the acceptance surface of
//! the open-loop redesign).
//!
//! The service must (a) sustain an open-loop Poisson workload below
//! capacity with a finite, stable p99 and no shedding, (b) shed under
//! overload with *bounded* queue delay, without corrupting accepted
//! requests' chunk streams, and (c) leave the legacy closed-batch
//! `open_session` + `run()` path bit-identical to a sequential scan.

use shredder::core::{
    capacity_search, AdmissionControl, ChunkError, ChunkRequest, MemorySource, ShredderConfig,
    ShredderEngine, ShredderService, SliceSource, Workload,
};
use shredder::des::Dur;
use shredder::hash::sha256;
use shredder::rabin::{chunk_all, ChunkParams};
use shredder::workloads;

const REQUESTS: usize = 24;
const REQ_BYTES: usize = 256 << 10;

fn cfg() -> ShredderConfig {
    ShredderConfig::gpu_streams_memory().with_buffer_size(64 << 10)
}

fn service_with_requests<'a>() -> ShredderService<'a> {
    let mut service = ShredderService::new(cfg());
    for t in 0..REQUESTS as u64 {
        service.submit(ChunkRequest::new(MemorySource::pseudo_random(REQ_BYTES, t)));
    }
    service
}

/// Measured service capacity in req/s: a closed batch through the same
/// admission slots, completed count over makespan.
fn measured_capacity() -> f64 {
    let mut service = service_with_requests().with_admission(AdmissionControl::fifo(4));
    let out = service.run(&Workload::Batch).unwrap();
    let svc = out.service();
    assert_eq!(svc.completed, REQUESTS);
    svc.achieved_rps
}

#[test]
fn poisson_at_80_percent_of_capacity_meets_slo_and_is_stable() {
    let mu = measured_capacity();
    let rate = 0.8 * mu;
    let run = || {
        let mut service = service_with_requests().with_admission(AdmissionControl::fifo(4));
        service.run(&Workload::poisson(rate, 1234)).unwrap()
    };
    let first = run();
    let svc = first.service();

    // Below capacity: nothing sheds, every request completes, and p99
    // is finite (positive and far below the whole run's span).
    assert_eq!(svc.shed, 0);
    assert_eq!(svc.completed, REQUESTS);
    let p99 = svc.p99();
    assert!(p99 > Dur::ZERO);
    assert!(
        p99 < first.report.makespan,
        "p99 {p99} not finite relative to makespan {}",
        first.report.makespan
    );
    // The queue does not grow without bound below capacity.
    assert!(
        svc.max_queue_depth < REQUESTS / 2,
        "queue depth {} blew up below capacity",
        svc.max_queue_depth
    );
    // Offered ≈ configured rate; achieved keeps up with offered.
    assert!(
        (svc.offered_rps - rate).abs() / rate < 0.5,
        "offered {} vs configured {rate}",
        svc.offered_rps
    );

    // Stable: the identical workload replays to the identical report —
    // latencies, timelines, queue-depth samples, everything.
    let second = run();
    assert_eq!(first.report, second.report);
    for (a, b) in first.requests.iter().zip(&second.requests) {
        assert_eq!(a.outcome.as_ref().unwrap(), b.outcome.as_ref().unwrap());
    }
}

#[test]
fn poisson_at_120_percent_of_capacity_sheds_with_bounded_queue_delay() {
    let mu = measured_capacity();
    let bound = Dur::from_micros(800);
    let mut service = service_with_requests()
        .with_admission(AdmissionControl::fifo(4).with_max_queue_delay(bound));
    let out = service.run(&Workload::poisson(1.2 * mu, 99)).unwrap();
    let svc = out.service();

    // Overload: the delay bound trips and sheds some of the offered
    // traffic, but the rest completes.
    assert!(
        svc.shed > 0,
        "120% of capacity must shed (max delay {})",
        svc.max_queue_delay()
    );
    assert!(svc.completed > 0);
    assert_eq!(svc.completed + svc.shed, REQUESTS);

    // Queue delay is bounded for *everyone*: admitted requests waited
    // at most the bound (they would have been shed otherwise), shed
    // requests were cut exactly at the bound.
    for r in &svc.requests {
        assert!(
            r.queue_delay() <= bound,
            "request {} queue delay {} exceeds bound {bound}",
            r.id,
            r.queue_delay()
        );
    }
    assert!(svc.max_queue_delay() <= bound);

    // Shed requests surface as Overloaded with their queueing time.
    for r in &out.requests {
        if let Err(e) = &r.outcome {
            assert!(matches!(e, ChunkError::Overloaded { .. }), "{e:?}");
        }
    }

    // Accepted requests' chunks are still bit-identical to sequential
    // scans of their own streams — overload isolation.
    for (result, outcome) in out.completed() {
        let mut src = MemorySource::pseudo_random(REQ_BYTES, result.id.index() as u64);
        let mut data = Vec::new();
        let mut buf = [0u8; 8192];
        loop {
            let n = shredder::core::StreamSource::read(&mut src, &mut buf);
            if n == 0 {
                break;
            }
            data.extend_from_slice(&buf[..n]);
        }
        assert_eq!(outcome.chunks, chunk_all(&data, &ChunkParams::paper()));
        // Digest spot check on the first chunk.
        if let Some(c) = outcome.chunks.first() {
            let _ = sha256(c.slice(&data));
        }
    }
}

#[test]
fn queue_depth_bound_sheds_excess_burst() {
    let mut service =
        service_with_requests().with_admission(AdmissionControl::fifo(2).with_queue_depth(4));
    let out = service.run(&Workload::Batch).unwrap();
    let svc = out.service();
    // A batch burst of 24 into 2 slots + 4 queue seats: exactly the
    // overflow sheds at arrival with zero queueing.
    assert_eq!(svc.completed, 6);
    assert_eq!(svc.shed, REQUESTS - 6);
    assert!(svc.max_queue_depth <= 4);
    for r in &svc.requests {
        if r.is_shed() {
            assert_eq!(r.queue_delay(), Dur::ZERO, "queue-full sheds are immediate");
        }
    }

    // Degenerate depth 0: the bound only applies to requests that would
    // actually wait — with a free dispatch slot an arrival still goes
    // straight through, so exactly the slot-holders complete.
    let mut service =
        service_with_requests().with_admission(AdmissionControl::fifo(2).with_queue_depth(0));
    let out = service.run(&Workload::Batch).unwrap();
    assert_eq!(out.service().completed, 2);
    assert_eq!(out.service().shed, REQUESTS - 2);
}

#[test]
fn closed_loop_self_throttles_and_never_sheds() {
    let clients = 4;
    let mut service = service_with_requests().with_admission(AdmissionControl::fifo(clients));
    let out = service
        .run(&Workload::closed_loop(clients, Dur::from_micros(200)))
        .unwrap();
    let svc = out.service();
    // Closed loop: offered load follows completions, so with as many
    // dispatch slots as clients nothing ever queues or sheds.
    assert_eq!(svc.completed, REQUESTS);
    assert_eq!(svc.shed, 0);
    assert!(
        svc.max_queue_depth <= 1,
        "closed loop queued: {}",
        svc.max_queue_depth
    );
    // Arrivals genuinely spread over time (not a batch): later requests
    // arrive after earlier ones complete.
    let arrivals: Vec<_> = svc.requests.iter().map(|r| r.arrival).collect();
    assert!(arrivals[clients] > arrivals[0]);
    // Each client's requests are serialized: think time separates a
    // completion from the next arrival.
    for i in clients..REQUESTS {
        let prev = &svc.requests[i - clients];
        let next = &svc.requests[i];
        let prev_end = prev.done.or(prev.shed_at).unwrap();
        assert_eq!(
            next.arrival.saturating_since(prev_end),
            Dur::from_micros(200)
        );
    }
}

#[test]
fn capacity_search_finds_a_sustained_rate_meeting_the_slo() {
    let mu = measured_capacity();
    let slo = Dur::from_millis(2);
    let report = capacity_search(slo, 0.1 * mu, 3.0 * mu, 6, |rate| {
        let mut service = service_with_requests()
            .with_admission(AdmissionControl::fifo(4).with_max_queue_delay(Dur::from_millis(4)));
        let out = service.run(&Workload::poisson(rate, 4242))?;
        Ok(out.service().clone())
    })
    .unwrap();

    // The knee exists: a positive sustained rate below the (failing)
    // upper probe, meeting the SLO.
    assert!(
        report.sustained_rps > 0.0,
        "no sustained rate found: {report:?}"
    );
    assert!(report.sustained_rps < 3.0 * mu);
    let p99 = report.p99_at_sustained.expect("passing trial records p99");
    assert!(p99 <= slo);
    // Deterministic: the same search replays identically.
    let again = capacity_search(slo, 0.1 * mu, 3.0 * mu, 6, |rate| {
        let mut service = service_with_requests()
            .with_admission(AdmissionControl::fifo(4).with_max_queue_delay(Dur::from_millis(4)));
        let out = service.run(&Workload::poisson(rate, 4242))?;
        Ok(out.service().clone())
    })
    .unwrap();
    assert_eq!(report, again);
}

#[test]
fn legacy_batch_run_is_bit_identical_to_sequential_scans() {
    // The acceptance bar for the redesign: every existing caller of
    // `open_session` + `run()` sees exactly the chunks and digests it
    // saw before the service frontend existed.
    let streams: Vec<Vec<u8>> = (0..4)
        .map(|t| workloads::random_bytes(1 << 20, 777 + t as u64))
        .collect();
    let mut engine = ShredderEngine::new(cfg());
    for s in &streams {
        engine.open_session(SliceSource::new(s));
    }
    let out = engine.run().unwrap();
    for (session, data) in out.sessions.iter().zip(&streams) {
        assert_eq!(session.chunks, chunk_all(data, &ChunkParams::paper()));
        let digests: Vec<_> = session
            .chunks
            .iter()
            .map(|c| sha256(c.slice(data)))
            .collect();
        assert_eq!(digests.len(), session.chunks.len());
    }
    // The closed-batch path reports no service frontend.
    assert!(out.report.service.is_none());
    // And the batch service run of the same streams yields the same
    // chunks (the run() path *is* the batch workload).
    let mut service = ShredderService::new(cfg());
    for (t, s) in streams.iter().enumerate() {
        service.submit(ChunkRequest::new(MemorySource::new(s.clone())).named(format!("t{t}")));
    }
    let svc_out = service.run(&Workload::Batch).unwrap();
    for (r, session) in svc_out.requests.iter().zip(&out.sessions) {
        assert_eq!(r.outcome.as_ref().unwrap().chunks, session.chunks);
    }
}
