//! Integration: the session-based multi-stream engine (the acceptance
//! surface of the multi-tenant refactor).
//!
//! ≥4 concurrent streams through one engine must (a) produce chunks
//! bit-identical per stream to a sequential CPU scan, (b) report
//! aggregate throughput above the single-stream throughput of the same
//! configuration, and (c) behave deterministically.

use shredder::backup::{BackupConfig, BackupServer};
use shredder::core::{
    AdmissionPolicy, ChunkingService, Shredder, ShredderConfig, ShredderEngine, SliceSource,
};
use shredder::hdfs::{IncHdfs, TextInputFormat};
use shredder::rabin::{chunk_all, ChunkParams};
use shredder::workloads;

fn tenant_streams(n: usize, bytes: usize) -> Vec<Vec<u8>> {
    (0..n)
        .map(|t| workloads::random_bytes(bytes, 0xabc + t as u64))
        .collect()
}

fn cfg() -> ShredderConfig {
    ShredderConfig::gpu_streams_memory().with_buffer_size(1 << 20)
}

#[test]
fn four_concurrent_streams_bit_identical_and_faster_in_aggregate() {
    let streams = tenant_streams(4, 4 << 20);

    // Single-stream baseline.
    let solo = Shredder::new(cfg());
    let solo_gbps: Vec<f64> = streams
        .iter()
        .map(|d| solo.chunk_stream(d).unwrap().report.throughput_gbps())
        .collect();
    let solo_best = solo_gbps.iter().cloned().fold(f64::MIN, f64::max);

    // One engine, four sessions.
    let mut engine = ShredderEngine::new(cfg());
    for data in &streams {
        engine.open_session(SliceSource::new(data));
    }
    let out = engine.run().unwrap();

    let params = ChunkParams::paper();
    for (session, data) in out.sessions.iter().zip(&streams) {
        assert_eq!(session.chunks, chunk_all(data, &params));
    }
    let aggregate = out.report.aggregate_gbps();
    assert!(
        aggregate > solo_best,
        "aggregate {aggregate:.3} GB/s !> best single-stream {solo_best:.3} GB/s"
    );
}

#[test]
fn contention_is_visible_in_reports() {
    let streams = tenant_streams(4, 2 << 20);
    let mut engine = ShredderEngine::new(cfg());
    for data in &streams {
        engine.open_session(SliceSource::new(data));
    }
    let out = engine.run().unwrap();
    // Under a shared admission pool, later-arriving buffers wait.
    assert!(!out.report.queue_wait.is_zero());
    // Per-stream makespans and first-admit timestamps are populated.
    for r in &out.report.sessions {
        assert!(r.completion > r.first_admit);
        assert_eq!(r.timeline.len(), r.buffers);
    }
    // Aggregate accounting matches the per-session reports.
    assert_eq!(
        out.report.bytes,
        out.report.sessions.iter().map(|r| r.bytes).sum::<u64>()
    );
}

#[test]
fn policies_change_schedule_not_chunks() {
    let streams = tenant_streams(5, 1 << 20);
    let run = |policy: AdmissionPolicy| {
        let mut engine = ShredderEngine::new(cfg().with_buffer_size(256 << 10)).with_policy(policy);
        for (i, data) in streams.iter().enumerate() {
            engine.open_named_session(format!("t{i}"), (i as u32 % 3) + 1, SliceSource::new(data));
        }
        engine.run().unwrap()
    };
    let rr = run(AdmissionPolicy::RoundRobin);
    let weighted = run(AdmissionPolicy::Weighted);
    let ordered = run(AdmissionPolicy::SessionOrder);
    for ((a, b), c) in rr
        .sessions
        .iter()
        .zip(&weighted.sessions)
        .zip(&ordered.sessions)
    {
        assert_eq!(a.chunks, b.chunks);
        assert_eq!(b.chunks, c.chunks);
    }
    // But the schedules differ: session-order serializes stream starts.
    assert!(ordered.report.sessions[4].first_admit > rr.report.sessions[4].first_admit);
}

#[test]
fn engine_is_deterministic_end_to_end() {
    let streams = tenant_streams(4, 1 << 20);
    let run = || {
        let mut engine = ShredderEngine::new(cfg().with_buffer_size(512 << 10))
            .with_policy(AdmissionPolicy::Weighted);
        for (i, data) in streams.iter().enumerate() {
            engine.open_named_session(format!("t{i}"), 1 + i as u32, SliceSource::new(data));
        }
        engine.run().unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.report, b.report);
    assert_eq!(a.sessions, b.sessions);
}

#[test]
fn backup_batch_consolidates_sites_through_one_engine() {
    let sites = tenant_streams(4, 2 << 20);
    let images: Vec<&[u8]> = sites.iter().map(|s| s.as_slice()).collect();
    let gpu = Shredder::new(
        ShredderConfig::gpu_streams_memory()
            .with_params(ChunkParams::backup())
            .with_buffer_size(512 << 10),
    );
    let mut server = BackupServer::new(BackupConfig {
        buffer_size: 512 << 10,
        ..BackupConfig::paper()
    });
    let batch = server.backup_batch(&images, &gpu).unwrap();
    assert_eq!(batch.reports.len(), 4);
    for (report, site) in batch.reports.iter().zip(&sites) {
        assert_eq!(server.site().restore(report.image_id).unwrap(), *site);
    }
    assert_eq!(batch.engine.sessions.len(), 4);
    assert!(batch.aggregate_bandwidth_gbps() > 0.0);
}

#[test]
fn hdfs_batch_ingestion_through_one_engine() {
    let mut fs = IncHdfs::new(4);
    let files: Vec<Vec<u8>> = (0..4)
        .map(|i| workloads::words_corpus(400_000, 300, 50 + i))
        .collect();
    let named: Vec<(&str, &[u8])> = vec![
        ("/logs/a", files[0].as_slice()),
        ("/logs/b", files[1].as_slice()),
        ("/logs/c", files[2].as_slice()),
        ("/logs/d", files[3].as_slice()),
    ];
    let shredder = Shredder::new(
        ShredderConfig::gpu_streams_memory()
            .with_params(ChunkParams::paper().with_expected_size(4096))
            .with_buffer_size(256 << 10),
    );
    let reports = fs
        .copy_many_gpu(&named, &shredder, &TextInputFormat)
        .unwrap();
    assert_eq!(reports.len(), 4);
    for (path, data) in &named {
        assert_eq!(&fs.read(path).unwrap(), data);
    }
}
