//! Integration: the multi-GPU device pool scales aggregate throughput
//! while keeping every stream's chunks bit-identical.
//!
//! The pool generalizes the paper's single-C2050 pipeline the way "GPUs
//! as Storage System Accelerators" does: N devices, each with its own
//! DMA engines, twin buffers and pinned staging ring, fed by one shared
//! SAN reader and drained by one Store thread. The tests pin the three
//! load-bearing properties: correctness is placement-invariant,
//! throughput scales once the reader is not the bottleneck, and the
//! report exposes per-device utilization and copy–compute overlap.

use shredder::core::{
    ChunkingService, PlacementPolicy, Shredder, ShredderConfig, ShredderEngine, SliceSource,
};
use shredder::hash::sha256;
use shredder::rabin::{chunk_all, ChunkParams};
use shredder::workloads;

/// A multi-GPU deployment provisions a SAN fabric faster than one
/// device can chunk, so the pool — not the reader — sets the pace.
fn pool_config(gpus: usize) -> ShredderConfig {
    ShredderConfig::gpu_streams_memory()
        .with_buffer_size(1 << 20)
        .with_reader_bandwidth(32e9)
        .with_gpus(gpus)
        .with_pipeline_depth(4 * gpus)
}

fn tenant_streams(n: usize) -> Vec<Vec<u8>> {
    (0..n)
        .map(|t| workloads::random_bytes(3 << 20, 0x960 + t as u64))
        .collect()
}

fn run_pool(streams: &[Vec<u8>], gpus: usize) -> shredder::core::EngineOutcome {
    let mut engine = ShredderEngine::new(pool_config(gpus));
    for (t, data) in streams.iter().enumerate() {
        engine.open_named_session(format!("tenant-{t}"), 1, SliceSource::new(data));
    }
    engine.run().expect("engine run failed")
}

#[test]
fn two_device_pool_outscales_one_with_identical_chunks_and_digests() {
    let streams = tenant_streams(6);
    let one = run_pool(&streams, 1);
    let two = run_pool(&streams, 2);

    // Aggregate throughput: the second device genuinely adds capacity.
    let (g1, g2) = (one.report.aggregate_gbps(), two.report.aggregate_gbps());
    assert!(
        g2 > g1 * 1.3,
        "2 devices {g2:.3} GB/s !> 1.3 × {g1:.3} GB/s"
    );

    // Bit-identical per-stream chunk boundaries — against the 1-device
    // run AND against a sequential CPU scan of each stream alone.
    let params = ChunkParams::paper();
    for ((a, b), data) in one.sessions.iter().zip(&two.sessions).zip(&streams) {
        assert_eq!(a.chunks, b.chunks, "{} diverged across pool sizes", a.name);
        assert_eq!(b.chunks, chunk_all(data, &params), "{}", b.name);
    }

    // Bit-identical digests: the dedup identity is placement-invariant.
    for ((a, b), data) in one.sessions.iter().zip(&two.sessions).zip(&streams) {
        let d1: Vec<_> = a.chunks.iter().map(|c| sha256(c.slice(data))).collect();
        let d2: Vec<_> = b.chunks.iter().map(|c| sha256(c.slice(data))).collect();
        assert_eq!(d1, d2);
    }

    // Both devices carried sessions and report live utilization and
    // copy–compute overlap.
    assert_eq!(two.report.devices.len(), 2);
    for d in &two.report.devices {
        assert!(d.sessions > 0, "device {} got no sessions", d.id);
        assert!(d.buffers > 0 && d.bytes > 0);
        assert!(
            d.utilization > 0.2 && d.utilization <= 1.0,
            "device {} utilization {}",
            d.id,
            d.utilization
        );
        assert!(
            d.overlap > 0.2 && d.overlap <= 1.0,
            "device {} overlap fraction {}",
            d.id,
            d.overlap
        );
    }
    // The pool split the bytes: no device saw everything.
    let total: u64 = streams.iter().map(|s| s.len() as u64).sum();
    for d in &two.report.devices {
        assert!(d.bytes < total);
    }
    assert_eq!(
        two.report.devices.iter().map(|d| d.bytes).sum::<u64>(),
        total
    );
}

#[test]
fn four_devices_keep_scaling_until_the_host_bounds() {
    let streams = tenant_streams(8);
    let g2 = run_pool(&streams, 2).report.aggregate_gbps();
    let g4 = run_pool(&streams, 4).report.aggregate_gbps();
    // More devices never hurt; the shared host stages (reader, store
    // thread) eventually cap the curve, so demand monotonicity rather
    // than 2×.
    assert!(g4 > g2, "4 devices {g4:.3} GB/s !> 2 devices {g2:.3} GB/s");
}

#[test]
fn reader_bound_pool_gains_nothing_from_devices() {
    // With the paper's 2 GB/s SAN the single device already keeps up:
    // adding devices must not change aggregate throughput (and must not
    // change chunks).
    let streams = tenant_streams(4);
    let run = |gpus: usize| {
        let mut engine = ShredderEngine::new(
            ShredderConfig::gpu_streams_memory()
                .with_buffer_size(1 << 20)
                .with_gpus(gpus)
                .with_pipeline_depth(4 * gpus),
        );
        for (t, data) in streams.iter().enumerate() {
            engine.open_named_session(format!("tenant-{t}"), 1, SliceSource::new(data));
        }
        engine.run().expect("engine run failed")
    };
    let one = run(1);
    let two = run(2);
    let (g1, g2) = (one.report.aggregate_gbps(), two.report.aggregate_gbps());
    assert!(
        (g2 - g1).abs() / g1 < 0.05,
        "reader-bound: {g1:.3} vs {g2:.3} GB/s should match"
    );
    for (a, b) in one.sessions.iter().zip(&two.sessions) {
        assert_eq!(a.chunks, b.chunks);
    }
}

#[test]
fn placement_policies_shard_sessions_deterministically() {
    let streams = tenant_streams(5);
    let run = |policy: PlacementPolicy| {
        let mut engine = ShredderEngine::new(pool_config(2).with_placement(policy));
        for (t, data) in streams.iter().enumerate() {
            engine.open_named_session(format!("tenant-{t}"), 1, SliceSource::new(data));
        }
        engine.run().expect("engine run failed")
    };
    let rr = run(PlacementPolicy::RoundRobin);
    let devs: Vec<usize> = rr.report.sessions.iter().map(|r| r.device).collect();
    assert_eq!(devs, vec![0, 1, 0, 1, 0]);

    // Equal-sized streams: least-loaded alternates too, by load.
    let ll = run(PlacementPolicy::LeastLoaded);
    let devs: Vec<usize> = ll.report.sessions.iter().map(|r| r.device).collect();
    assert_eq!(devs, vec![0, 1, 0, 1, 0]);

    // Same inputs, same policy → identical report, chunk for chunk.
    let rr2 = run(PlacementPolicy::RoundRobin);
    assert_eq!(rr.report, rr2.report);
    assert_eq!(rr.sessions, rr2.sessions);
}

#[test]
fn pinned_placement_isolates_a_tenant() {
    let streams = tenant_streams(3);
    let mut engine = ShredderEngine::new(pool_config(2).with_placement(PlacementPolicy::Pinned));
    engine.open_pinned_session("isolated", 1, 1, SliceSource::new(&streams[0]));
    engine.open_named_session("bulk-a", 1, SliceSource::new(&streams[1]));
    engine.open_named_session("bulk-b", 1, SliceSource::new(&streams[2]));
    let out = engine.run().expect("engine run failed");
    assert_eq!(out.report.sessions[0].device, 1);
    // The fallback packs unpinned tenants onto the other, lighter device.
    assert_eq!(out.report.sessions[1].device, 0);
    assert_eq!(out.report.sessions[2].device, 0);
}

#[test]
fn single_stream_convenience_is_a_one_device_pool() {
    // The legacy Shredder service runs on a pool of one; its report
    // still carries the device view.
    let data = workloads::random_bytes(4 << 20, 0x977);
    let shredder = Shredder::new(ShredderConfig::gpu_streams_memory().with_buffer_size(1 << 20));
    let engine_out = {
        let mut engine = shredder.engine();
        engine.open_session(SliceSource::new(&data));
        engine.run().expect("engine run failed")
    };
    assert_eq!(engine_out.report.devices.len(), 1);
    let out = shredder.chunk_stream(&data).expect("chunking failed");
    assert_eq!(out.chunks, engine_out.sessions[0].chunks);
}
