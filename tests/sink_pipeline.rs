//! Integration: the staged sink API (the acceptance surface of the
//! collect-then-postprocess → in-simulation consumer redesign).
//!
//! * The sink path yields **bit-identical chunks and digests** to the
//!   legacy collect path.
//! * `BackupServer::backup_batch` reports per-stage (chunk/hash/dedup/
//!   ship) busy + queue-wait times from the one shared simulation.
//! * Hash-stage work demonstrably **overlaps** chunking: the end-to-end
//!   makespan is smaller than the sum of the stage busy times, and
//!   smaller than "chunking finished, then hashing ran".

use std::cell::RefCell;
use std::collections::HashSet;
use std::rc::Rc;

use shredder::backup::{BackupConfig, BackupServer};
use shredder::core::{
    ChunkSink, ChunkingService, DedupSink, DedupSinkConfig, FingerprintStage, HostChunker,
    HostChunkerConfig, Shredder, ShredderConfig, SinkPipelineHints, StageKind, StageSpec,
};
use shredder::des::{Dur, SimTime};
use shredder::hash::sha256;
use shredder::rabin::{Chunk, ChunkParams};
use shredder::workloads;

/// A sink that records deliveries and fingerprints them in-simulation.
struct HashSink {
    fingerprint: FingerprintStage,
    delivered: Vec<Chunk>,
}

impl HashSink {
    fn new() -> Self {
        HashSink {
            fingerprint: FingerprintStage::new(1.5e9),
            delivered: Vec::new(),
        }
    }
}

impl ChunkSink for HashSink {
    fn stages(&self) -> Vec<StageSpec> {
        vec![self.fingerprint.spec()]
    }

    fn accept(&mut self, chunk: Chunk, payload: &[u8]) -> Vec<Dur> {
        let (_digest, service) = self.fingerprint.process(payload);
        self.delivered.push(chunk);
        vec![service]
    }
}

fn gpu_service() -> Shredder {
    Shredder::new(
        ShredderConfig::gpu_streams_memory()
            .with_params(ChunkParams::backup())
            .with_buffer_size(1 << 20),
    )
}

#[test]
fn sink_path_is_bit_identical_to_collect_path() {
    let data = workloads::compressible_bytes(6 << 20, 64, 0x51);
    for service in [
        Box::new(gpu_service()) as Box<dyn ChunkingService>,
        Box::new(HostChunker::new(HostChunkerConfig {
            params: ChunkParams::backup(),
            ..HostChunkerConfig::optimized()
        })),
    ] {
        let name = service.service_name();

        let mut sink = HashSink::new();
        service.chunk_stream_sink(&data, &mut sink).unwrap();
        let collected = service.chunk_stream(&data).unwrap();

        assert_eq!(sink.delivered, collected.chunks, "{name}: chunks");
        assert_eq!(
            sink.fingerprint.digests(),
            collected.digests(&data).as_slice(),
            "{name}: digests"
        );
    }
}

#[test]
fn dedup_sink_decisions_equal_legacy_postprocessing() {
    // The in-simulation dedup graph makes exactly the decisions the old
    // collect-then-ingest loop made: hash every chunk, dedup against
    // the accumulated index in stream order.
    let first = workloads::compressible_bytes(2 << 20, 128, 0x52);
    let second = {
        let mut s = first.clone();
        // Localized edit.
        for b in &mut s[1 << 20..(1 << 20) + 4096] {
            *b ^= 0xa5;
        }
        s
    };

    let service = gpu_service();
    let index: Rc<RefCell<HashSet<_>>> = Rc::default();
    let sink_config = DedupSinkConfig {
        hash_bw: 1.5e9,
        index_lookup: Dur::from_micros(7),
        index_insert: Dur::from_micros(10),
        ship_bw: 0.9e9,
        pointer_bytes: 40,
        ship_chunk_overhead: Dur::from_micros(2),
        hints: SinkPipelineHints::default(),
    };

    // Reference: collect, then hash + dedup by hand.
    let mut reference_index = HashSet::new();
    let mut reference: Vec<(Chunk, bool)> = Vec::new();
    for image in [&first, &second] {
        for chunk in service.chunk_stream(image).unwrap().chunks {
            let digest = sha256(chunk.slice(image));
            let duplicate = !reference_index.insert(digest);
            reference.push((chunk, duplicate));
        }
    }

    // Sink path.
    let mut decisions: Vec<(Chunk, bool)> = Vec::new();
    for image in [&first, &second] {
        let mut sink = DedupSink::new(sink_config, index.clone());
        service.chunk_stream_sink(image, &mut sink).unwrap();
        decisions.extend(sink.verdicts().iter().map(|v| (v.chunk, v.duplicate)));
    }
    assert_eq!(decisions, reference);
}

#[test]
fn backup_batch_reports_overlapping_stages() {
    // Four remote sites, one shared engine: chunking, fingerprinting,
    // index lookup and shipping all in one simulation.
    let sites: Vec<Vec<u8>> = (0..4)
        .map(|s| workloads::compressible_bytes(4 << 20, 256, 0x60 + s))
        .collect();
    let images: Vec<&[u8]> = sites.iter().map(|s| s.as_slice()).collect();
    let mut server = BackupServer::new(BackupConfig {
        buffer_size: 512 << 10,
        ..BackupConfig::paper()
    });
    let batch = server.backup_batch(&images, &gpu_service()).unwrap();
    let engine = &batch.engine;

    // Per-stage busy + queue-wait times are reported from the shared
    // simulation for the full graph: chunk (pipeline) + hash/dedup/ship.
    for name in ["fingerprint", "dedup", "ship"] {
        let stage = engine
            .sink_stage(name)
            .unwrap_or_else(|| panic!("stage {name} missing from {:?}", engine.sink_stages));
        assert!(stage.busy > Dur::ZERO, "{name} busy");
        assert_eq!(stage.jobs as usize, engine.buffers, "{name} jobs");
    }
    assert_eq!(
        engine.sink_stage("fingerprint").unwrap().kind,
        StageKind::Fingerprint
    );
    // Contention on the shared downstream stages is visible.
    let total_stage_wait: Dur = engine.sink_stages.iter().map(|s| s.queue_wait).sum();
    assert!(total_stage_wait > Dur::ZERO, "no queueing on sink stages");
    // The chunking pipeline's own stages are accounted as before.
    assert!(engine.stage_busy.kernel > Dur::ZERO);
    assert!(engine.stage_busy.read > Dur::ZERO);

    // Overlap, criterion 1: end-to-end makespan < sum of stage busy
    // times (were the stages serialized, the makespan would be at least
    // that sum).
    let busy_sum = engine.stage_busy.read
        + engine.stage_busy.transfer
        + engine.stage_busy.kernel
        + engine.stage_busy.store
        + engine.sink_stages.iter().map(|s| s.busy).sum::<Dur>();
    assert!(
        engine.makespan < busy_sum,
        "no overlap: makespan {} >= busy sum {}",
        engine.makespan,
        busy_sum
    );

    // Overlap, criterion 2: hashing did not simply run after chunking.
    // If it had, the makespan would be at least "last chunk stored" +
    // the full hash busy time.
    let chunk_completion: Dur = engine
        .sessions
        .iter()
        .filter_map(|r| r.timeline.last())
        .map(|t| t.store_end.saturating_since(SimTime::ZERO))
        .max()
        .unwrap();
    let hash_busy = engine.sink_stage("fingerprint").unwrap().busy;
    assert!(
        engine.makespan < chunk_completion + hash_busy,
        "hashing serialized after chunking: {} >= {} + {}",
        engine.makespan,
        chunk_completion,
        hash_busy
    );

    // And the batch remains functionally correct: every site restores.
    for (report, site) in batch.reports.iter().zip(&sites) {
        assert_eq!(&server.site().restore(report.image_id).unwrap(), site);
    }
}

#[test]
fn sink_backpressure_extends_session_completion() {
    // A session with a (costly) sink finishes later than the same
    // stream without one, and its completion includes the sink stages.
    let data = workloads::random_bytes(4 << 20, 0x71);
    let service = gpu_service();

    let plain = service.chunk_stream(&data).unwrap();
    let mut sink = HashSink::new();
    let staged = service.chunk_stream_sink(&data, &mut sink).unwrap();

    assert_eq!(staged.stages.len(), 1);
    assert!(staged.stages[0].busy > Dur::ZERO);
    assert!(
        staged.makespan > plain.report.makespan(),
        "sink stages are free? {} !> {}",
        staged.makespan,
        plain.report.makespan()
    );
}
