//! Quickstart: chunk a stream with Shredder and inspect the results.
//!
//! Run with `cargo run --release --example quickstart`.
//!
//! This walks the core API end to end: build a GPU-accelerated chunking
//! service, chunk a data stream, compare against the host-only baseline,
//! read the per-stage pipeline report, and scale the same workload onto
//! a multi-GPU device pool with `gpus = N`.

use shredder::core::{
    ChunkingService, HostChunker, Shredder, ShredderConfig, ShredderEngine, SliceSource,
};
use shredder::gpu::kernel::KernelVariant;
use shredder::workloads;

fn main() {
    // 64 MiB of seeded pseudo-random data standing in for a SAN stream.
    let data = workloads::random_bytes(64 << 20, 42);

    // The fully optimized Shredder pipeline of the paper's §4: double
    // buffering, pinned ring buffers, 4-stage pipeline, coalesced kernel.
    let gpu = Shredder::new(ShredderConfig::gpu_streams_memory().with_buffer_size(16 << 20));
    let outcome = gpu.chunk_stream(&data).expect("chunking failed");

    println!("engine           : {}", gpu.service_name());
    println!("input            : {} MiB", data.len() >> 20);
    println!("chunks           : {}", outcome.chunks.len());
    println!("mean chunk size  : {:.0} bytes", outcome.mean_chunk_size());
    println!(
        "simulated speed  : {:.2} GB/s",
        outcome.report.throughput_gbps()
    );

    if let Some(pipeline) = outcome.report.as_pipeline() {
        println!("\nper-stage busy time over {} buffers:", pipeline.buffers);
        println!(
            "  reader   : {:.1} ms",
            pipeline.stage_busy.read.as_millis_f64()
        );
        println!(
            "  transfer : {:.1} ms",
            pipeline.stage_busy.transfer.as_millis_f64()
        );
        println!(
            "  kernel   : {:.1} ms",
            pipeline.stage_busy.kernel.as_millis_f64()
        );
        println!(
            "  store    : {:.1} ms",
            pipeline.stage_busy.store.as_millis_f64()
        );
    }

    // The host-only pthreads baseline produces identical boundaries.
    let cpu = HostChunker::with_defaults();
    let cpu_outcome = cpu.chunk_stream(&data).expect("chunking failed");
    assert_eq!(cpu_outcome.chunks, outcome.chunks);
    println!(
        "\nhost baseline    : {:.2} GB/s ({})",
        cpu_outcome.report.throughput_gbps(),
        cpu.service_name()
    );
    println!(
        "gpu speedup      : {:.1}x",
        outcome.report.throughput_gbps() / cpu_outcome.report.throughput_gbps()
    );

    // The same pipeline with the Gear/FastCDC kernel (chunk_kernel =
    // GearCoalesced): a table-shift-add per byte instead of the Rabin
    // polynomial update, roughly halving the kernel's per-byte cost.
    // Boundaries differ from Rabin's but stay content-defined.
    let gear = Shredder::new(
        ShredderConfig::gpu_streams_memory()
            .with_buffer_size(16 << 20)
            .with_chunk_kernel(KernelVariant::GearCoalesced),
    );
    let gear_outcome = gear.chunk_stream(&data).expect("chunking failed");
    println!(
        "\ngear kernel      : {:.2} GB/s ({} chunks, mean {:.0} bytes)",
        gear_outcome.report.throughput_gbps(),
        gear_outcome.chunks.len(),
        gear_outcome.mean_chunk_size()
    );

    // Chunk digests (the dedup identity) for the first few chunks.
    println!("\nfirst chunks:");
    for (chunk, digest) in outcome.chunks.iter().zip(outcome.digests(&data)).take(5) {
        println!(
            "  [{:>9} +{:>6}] {}",
            chunk.offset,
            chunk.len,
            &digest.to_hex()[..16]
        );
    }

    // Scale out: the same pipeline over a pool of devices (`gpus = N`).
    // Sessions shard across devices (least-loaded by default); a faster
    // SAN fabric keeps the reader from capping the pool. Chunks stay
    // bit-identical to the single-device run.
    println!("\nmulti-GPU pool (same tenants, gpus = 1 vs 2):");
    let tenants: Vec<Vec<u8>> = (0..4)
        .map(|t| workloads::random_bytes(8 << 20, 7 + t))
        .collect();
    for gpus in [1usize, 2] {
        let cfg = ShredderConfig::gpu_streams_memory()
            .with_buffer_size(2 << 20)
            .with_reader_bandwidth(32e9) // multi-GPU testbeds provision the fabric
            .with_gpus(gpus)
            .with_pipeline_depth(4 * gpus);
        let mut engine = ShredderEngine::new(cfg);
        for (t, stream) in tenants.iter().enumerate() {
            engine.open_named_session(format!("tenant-{t}"), 1, SliceSource::new(stream));
        }
        let out = engine.run().expect("chunking failed");
        let per_device: Vec<String> = out
            .report
            .devices
            .iter()
            .map(|d| {
                format!(
                    "dev{}: util {:.2} overlap {:.2}",
                    d.id, d.utilization, d.overlap
                )
            })
            .collect();
        println!(
            "  gpus = {gpus}: {:.2} GB/s aggregate ({})",
            out.report.aggregate_gbps(),
            per_device.join(", ")
        );
    }
}
