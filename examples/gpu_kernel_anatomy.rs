//! Anatomy of the GPU chunking kernel: why coalescing matters (§4.3).
//!
//! Run with `cargo run --release --example gpu_kernel_anatomy`.
//!
//! Launches the basic and coalesced chunking kernels on the same buffer
//! and dissects where the time goes: memory transactions, expected bank
//! conflicts (row switches), compute cycles, and occupancy — the
//! quantities behind Figure 11's 8x.

use shredder::gpu::coalesce::{classify_half_warp, cooperative_addresses, substream_addresses};
use shredder::gpu::kernel::{ChunkKernel, KernelVariant};
use shredder::gpu::{Device, DeviceConfig};
use shredder::rabin::ChunkParams;
use shredder::workloads;

fn main() {
    let cfg = DeviceConfig::tesla_c2050();
    println!(
        "device: {} SMs x {} SPs @ {:.2} GHz, {} GB/s GDDR5, {} banks",
        cfg.sms,
        cfg.sps_per_sm,
        cfg.clock_hz / 1e9,
        cfg.mem_bandwidth / 1e9,
        cfg.dram_banks
    );

    // Stage the buffer in device global memory.
    let data = workloads::random_bytes(64 << 20, 7);
    let mut device = Device::new(cfg.clone());
    let buf = device.alloc(data.len()).expect("device allocation");
    device.memcpy_h2d(buf, &data).expect("H2D memcpy");

    for variant in KernelVariant::ALL {
        let kernel = ChunkKernel::new(ChunkParams::paper(), variant);
        let out = kernel.launch(&device, buf).expect("kernel launch");
        let s = &out.stats;
        println!("\n--- {variant} kernel ---");
        println!("  threads            : {}", s.threads);
        println!("  cuts found         : {}", s.cuts_found);
        println!("  memory transactions: {}", s.mem.transactions);
        println!("  bytes moved on bus : {} MiB", s.mem.bytes_moved >> 20);
        println!("  expected row misses: {:.0}", s.mem.row_switches);
        println!(
            "  memory time        : {:.2} ms",
            s.simt.memory_time.as_millis_f64()
        );
        println!(
            "  compute time       : {:.2} ms",
            s.simt.compute_time.as_millis_f64()
        );
        println!(
            "  total duration     : {:.2} ms",
            s.duration.as_millis_f64()
        );
        println!(
            "  effective bandwidth: {:.2} GB/s",
            s.effective_bandwidth() / 1e9
        );
    }

    // The half-warp access patterns, classified by the §4.3 rules.
    let lanes = cfg.half_warp() as usize;
    let scattered = substream_addresses(0, lanes, (data.len() / 28_672) as u64);
    let cooperative = cooperative_addresses(4096, lanes, 4);
    println!("\naccess-pattern classification (16-lane half-warp):");
    println!(
        "  per-thread sub-streams -> {:?}",
        classify_half_warp(&scattered, 1)
    );
    println!(
        "  cooperative tile fetch -> {:?}",
        classify_half_warp(&cooperative, 4)
    );
}
