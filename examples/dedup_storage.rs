//! Content-defined vs fixed-size chunking for versioned storage.
//!
//! Run with `cargo run --release --example dedup_storage`.
//!
//! The motivating contrast of §6.2: store three evolving versions of a
//! file in Inc-HDFS twice — once with plain fixed-size splits
//! (`copyFromLocal`) and once with Shredder's content-based splits
//! (`copyFromLocalGPU`) — and compare how much each upload actually had
//! to store after an insertion shifts all downstream offsets.

use shredder::core::{HostChunker, HostChunkerConfig};
use shredder::hdfs::{IncHdfs, TextInputFormat};
use shredder::rabin::ChunkParams;
use shredder::workloads;

fn main() {
    // Version 1: a 32 MiB record-oriented corpus.
    let v1 = workloads::words_corpus(32 << 20, 3000, 21);
    // Version 2: a few records inserted near the front — every byte
    // after the insertion shifts.
    let mut v2 = b"a handful of freshly inserted records\n".to_vec();
    v2.extend_from_slice(&v1);
    // Version 3: plus localized edits across the file.
    let v3 = workloads::mutate(
        &v2,
        &workloads::MutationSpec {
            span_bytes: 512 << 10, // localized edits
            ..workloads::MutationSpec::replace(0.03, 5)
        },
    );

    let service = HostChunker::new(HostChunkerConfig {
        params: ChunkParams::paper().with_expected_size(64 << 10),
        ..HostChunkerConfig::optimized()
    });

    let mut fixed = IncHdfs::new(8);
    let mut cdc = IncHdfs::new(8);

    println!(
        "{:<10}{:>22}{:>22}",
        "", "fixed-size splits", "content-based splits"
    );
    for (name, version) in [("v1", &v1), ("v2", &v2), ("v3", &v3)] {
        let fr = fixed.copy_from_local("/file", version, 64 << 10);
        let cr = cdc
            .copy_from_local_gpu("/file", version, &service, &TextInputFormat)
            .unwrap();
        println!(
            "{name:<10}{:>14} MiB new{:>14} MiB new",
            fr.new_bytes >> 20,
            cr.new_bytes >> 20
        );
        // Both store the data faithfully.
        assert_eq!(fixed.read("/file").unwrap(), *version);
        assert_eq!(cdc.read("/file").unwrap(), *version);
    }

    println!(
        "\nphysical bytes stored: fixed {} MiB vs content-based {} MiB",
        fixed.physical_bytes() >> 20,
        cdc.physical_bytes() >> 20
    );
    println!(
        "content-based chunking stored {:.1}x less data across versions",
        fixed.physical_bytes() as f64 / cdc.physical_bytes() as f64
    );
}
