//! Multi-tenant chunking: many client streams, one GPU pipeline.
//!
//! Run with `cargo run --release --example multi_stream`.
//!
//! A consolidated server (the paper's §7.2 backup scenario) receives
//! streams from several remote sites at once. Instead of chunking them
//! one call at a time — draining the pipeline between clients — the
//! session engine opens one `ChunkSession` per client and schedules all
//! of their buffers through one shared discrete-event pipeline with
//! round-robin admission. Each client still gets chunks bit-identical
//! to a sequential scan of its own stream.

use shredder::core::{
    AdmissionPolicy, ChunkingService, Shredder, ShredderConfig, ShredderEngine, SliceSource,
};
use shredder::rabin::{chunk_all, ChunkParams};
use shredder::workloads;

fn main() {
    let cfg = ShredderConfig::gpu_streams_memory().with_buffer_size(1 << 20);

    // Six remote sites, 8 MiB snapshot stream each.
    let sites: Vec<(String, Vec<u8>)> = (0..6)
        .map(|s| {
            (
                format!("site-{s}"),
                workloads::random_bytes(8 << 20, 1000 + s as u64),
            )
        })
        .collect();

    // Baseline: each site served alone through the one-shot API.
    let solo = Shredder::new(cfg.clone());
    let solo_gbps: Vec<f64> = sites
        .iter()
        .map(|(_, data)| {
            solo.chunk_stream(data)
                .expect("chunking failed")
                .report
                .throughput_gbps()
        })
        .collect();
    let solo_mean = solo_gbps.iter().sum::<f64>() / solo_gbps.len() as f64;

    // Multi-tenant: all sites concurrently through one engine.
    let mut engine = ShredderEngine::new(cfg).with_policy(AdmissionPolicy::RoundRobin);
    for (name, data) in &sites {
        engine.open_named_session(name.clone(), 1, SliceSource::new(data));
    }
    let outcome = engine.run().expect("engine run failed");

    println!(
        "{:<10}{:>12}{:>14}{:>12}{:>10}",
        "session", "bytes", "makespan", "queueing", "GB/s"
    );
    for r in &outcome.report.sessions {
        println!(
            "{:<10}{:>9} MiB{:>11.2} ms{:>9.2} ms{:>10.2}",
            r.name,
            r.bytes >> 20,
            r.makespan.as_millis_f64(),
            r.queue_wait.as_millis_f64(),
            r.throughput_gbps()
        );
    }

    // Every tenant's chunks equal its own sequential scan.
    let params = ChunkParams::paper();
    for (session, (name, data)) in outcome.sessions.iter().zip(&sites) {
        assert_eq!(session.chunks, chunk_all(data, &params), "{name} diverged");
    }

    println!(
        "\nsingle-stream mean  : {solo_mean:.2} GB/s\n\
         aggregate (6 sites) : {:.2} GB/s\n\
         engine makespan     : {:.2} ms over {} buffers\n\
         total queueing      : {:.2} ms (streams contend for {} admission slots)",
        outcome.report.aggregate_gbps(),
        outcome.report.makespan.as_millis_f64(),
        outcome.report.buffers,
        outcome.report.queue_wait.as_millis_f64(),
        outcome.report.pipeline_depth,
    );
    assert!(outcome.report.aggregate_gbps() > solo_mean);
    println!("\nall sites restored bit-identical chunk boundaries under contention");
}
