//! Case study II: consolidated cloud backup with dedup (paper §7).
//!
//! Run with `cargo run --release --example cloud_backup`.
//!
//! Emulates the §7.3 environment: a master VM image, nightly snapshots
//! derived through a segment-similarity table, and a backup server that
//! chunks each snapshot with Shredder (min/max chunk sizes enabled),
//! deduplicates against the index, and ships only new chunks to the
//! backup site — which restores and verifies every image.

use shredder::backup::{BackupConfig, BackupServer};
use shredder::core::{Shredder, ShredderConfig};
use shredder::rabin::ChunkParams;
use shredder::workloads::{MasterImage, SimilarityTable};

fn main() {
    // A 64 MiB master image split into 256 KiB segments; 10% of segments
    // change per nightly snapshot.
    let master = MasterImage::synthesize(64 << 20, 256 << 10, 99);
    let table = SimilarityTable::uniform(master.segments(), 0.10);

    // The fully optimized GPU chunking service with backup chunk-size
    // constraints (min 2 KiB / max 16 KiB, §7.3).
    let service = Shredder::new(
        ShredderConfig::gpu_streams_memory()
            .with_params(ChunkParams::backup())
            .with_buffer_size(16 << 20),
    );

    let mut server = BackupServer::new(BackupConfig::paper());

    // Night 0: full backup of the master image.
    let full = server.backup_image(master.data(), &service).unwrap();
    println!(
        "night 0 : {:>6} chunks, {:>5} MiB shipped, {:>5.2} Gbps",
        full.chunks,
        full.new_bytes >> 20,
        full.bandwidth_gbps()
    );

    // Nights 1-5: incremental snapshots.
    for night in 1..=5u64 {
        let snapshot = master.derive(&table, night);
        let report = server.backup_image(&snapshot, &service).unwrap();
        let restored = server
            .site()
            .restore(report.image_id)
            .expect("restore must succeed");
        assert_eq!(restored, snapshot, "integrity check failed");
        println!(
            "night {night} : {:>6} chunks, {:>5} MiB shipped ({:>4.1}% dedup), {:>5.2} Gbps",
            report.chunks,
            report.new_bytes >> 20,
            report.dedup_fraction() * 100.0,
            report.bandwidth_gbps()
        );
    }

    println!(
        "\nbackup site: {} images, {} MiB physical for {} MiB logical ({:.1}x dedup)",
        server.site().image_count(),
        server.site().physical_bytes() >> 20,
        server.site().logical_bytes() >> 20,
        server.site().dedup_ratio()
    );
    println!(
        "index: {} fingerprints, {} lookups, {} duplicate hits",
        server.index().len(),
        server.index().lookups(),
        server.index().hits()
    );

    // Night 6: four remote sites consolidated in ONE batch. Chunking,
    // fingerprinting, index lookup and shipping for all sites run in one
    // shared simulation — the per-stage report below comes from it, and
    // the makespan being smaller than the summed stage busy times is the
    // overlap the staged sink API exists for.
    let snapshots: Vec<Vec<u8>> = (10..14u64)
        .map(|site| master.derive(&table, site))
        .collect();
    let images: Vec<&[u8]> = snapshots.iter().map(|s| s.as_slice()).collect();
    let batch = server.backup_batch(&images, &service).unwrap();
    println!(
        "\nnight 6 (4 sites, one engine): {:.2} Gbps aggregate, makespan {:.2} ms",
        batch.aggregate_bandwidth_gbps(),
        batch.engine.makespan.as_millis_f64()
    );
    for stage in &batch.engine.sink_stages {
        println!(
            "  stage {:<12} busy {:>8.2} ms   queue wait {:>8.2} ms",
            stage.name,
            stage.busy.as_millis_f64(),
            stage.queue_wait.as_millis_f64()
        );
    }
    let busy_sum = batch.engine.stage_busy.read
        + batch.engine.stage_busy.transfer
        + batch.engine.stage_busy.kernel
        + batch.engine.stage_busy.store
        + batch
            .engine
            .sink_stages
            .iter()
            .map(|s| s.busy)
            .sum::<shredder::des::Dur>();
    println!(
        "  overlap: makespan {:.2} ms < stage busy sum {:.2} ms",
        batch.engine.makespan.as_millis_f64(),
        busy_sum.as_millis_f64()
    );
    for (report, snapshot) in batch.reports.iter().zip(&snapshots) {
        assert_eq!(
            &server.site().restore(report.image_id).unwrap(),
            snapshot,
            "batched restore mismatch"
        );
    }
}
