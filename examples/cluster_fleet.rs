//! A sharded Shredder fleet: routing, replication, a node death, and
//! the repair that follows.
//!
//! Demonstrates the cluster regime one service cannot express: tenant
//! streams consistent-hash onto four nodes, every committed generation
//! replicates to a ring successor, a node dies mid-run taking its
//! in-flight requests with it, and — once it rejoins — surviving
//! replicas rebuild its store digest-verified. Run with:
//!
//! ```text
//! cargo run --release --example cluster_fleet
//! ```

use shredder::cluster::{FleetConfig, FleetRequest, MembershipPlan, ShredderFleet};
use shredder::core::{AdmissionControl, FaultPlan, MemorySource, ShredderConfig, Workload};
use shredder::des::Dur;

const TENANTS: usize = 24;
const REQ_BYTES: usize = 256 << 10;

fn build_fleet<'a>(config: FleetConfig) -> ShredderFleet<'a> {
    let mut fleet = ShredderFleet::new(config);
    for t in 0..TENANTS as u64 {
        fleet.submit(
            FleetRequest::new(
                format!("tenant-{t}"),
                MemorySource::pseudo_random(REQ_BYTES, t),
            )
            .named(format!("tenant-{t}")),
        );
    }
    fleet
}

fn config() -> FleetConfig {
    FleetConfig::new(
        4,
        ShredderConfig::gpu_streams_memory().with_buffer_size(128 << 10),
    )
    .with_admission(AdmissionControl::fifo(2))
    .with_replication(2)
}

fn main() {
    // 1. A healthy run: the mix spreads over the ring, replication puts
    //    every generation on two nodes.
    let healthy = build_fleet(config())
        .run(&Workload::poisson(3_000.0, 42))
        .expect("fleet run failed");
    let report = &healthy.report;
    println!("-- healthy 4-node fleet, R=2 --");
    println!(
        "completed {}/{TENANTS} at {:.0} req/s aggregate, p99 {:.2} ms",
        report.completed,
        report.achieved_rps,
        report.p99.as_millis_f64()
    );
    for node in &report.nodes {
        println!(
            "  node {}: routed {:2}, {:.1} MB ingested, {:.1} MB replicated out",
            node.node,
            node.routed,
            node.ingest_bytes as f64 / 1e6,
            node.replication_out_bytes as f64 / 1e6,
        );
    }
    println!(
        "replication: {} shipments, amplification {:.2}x (dedup-blind R=2 would be 2.00x)",
        report.replication.shipments,
        report.replication_amplification(),
    );

    // 2. Kill node 1 a third of the way in, rejoin it later: in-flight
    //    requests are lost, post-death arrivals re-route, and the
    //    rejoined node is repaired from its peers' replicas.
    let death_at = Dur::from_nanos(report.makespan.as_nanos() / 3);
    let rejoin_at = Dur::from_nanos(report.makespan.as_nanos() * 2);
    let faulted = build_fleet(
        config()
            .with_faults(FaultPlan::new().device_death(death_at, 1))
            .with_membership(MembershipPlan::new().join(rejoin_at, 1)),
    )
    .run(&Workload::poisson(3_000.0, 42))
    .expect("fleet run failed");
    let report = &faulted.report;
    println!(
        "\n-- node 1 dies at {:.2} ms, rejoins at {:.2} ms --",
        death_at.as_millis_f64(),
        rejoin_at.as_millis_f64()
    );
    println!(
        "completed {}, lost {}, shed {} of {TENANTS}",
        report.completed, report.lost, report.shed
    );
    println!(
        "repair on rejoin: {} snapshots, {:.1} MB re-shipped from replicas",
        report.repair.snapshots_installed,
        report.repair.bytes_copied as f64 / 1e6,
    );
    println!(
        "rebalance after rejoin: {:.1} MB moved ({:.0}% of live bytes; consistent hashing bounds this near 1/N)",
        report.rebalance.bytes_moved as f64 / 1e6,
        report.rebalance.max_moved_fraction * 100.0,
    );

    // 3. The repaired node's store scrubs clean: every re-shipped chunk
    //    was digest-verified on install.
    let store = faulted.store(1).expect("node 1 exists");
    let store = store.borrow();
    let scrub = store.scrub().expect("repaired store must scrub clean");
    println!(
        "node 1 after repair: {} chunks, scrub clean ({} scanned)",
        store.chunk_count(),
        scrub.chunks_scanned,
    );
}
