//! Case study I: incremental MapReduce over Inc-HDFS (paper §6).
//!
//! Run with `cargo run --release --example incremental_mapreduce`.
//!
//! Uploads a text corpus to Inc-HDFS with content-based chunking
//! (`copyFromLocalGPU`), runs Word-Count, then changes 5% of the input
//! and shows how dedup at the storage level turns into computation
//! savings: most map tasks are satisfied from the memo table and the
//! incremental run beats the from-scratch run while producing the exact
//! same output.

use shredder::core::{HostChunker, HostChunkerConfig};
use shredder::hdfs::{IncHdfs, TextInputFormat};
use shredder::mapreduce::apps::WordCount;
use shredder::mapreduce::{ClusterConfig, IncrementalRunner};
use shredder::rabin::ChunkParams;
use shredder::workloads::{self, MutationSpec};

fn main() {
    // A 16 MiB newline-record corpus and a 5%-changed second version.
    let v1 = workloads::words_corpus(16 << 20, 2000, 7);
    let v2 = workloads::mutate(&v1, &MutationSpec::replace(0.05, 11));

    // The chunking service the Inc-HDFS client offloads to (map-task
    // sized splits: ~128 KiB expected).
    let service = HostChunker::new(HostChunkerConfig {
        params: ChunkParams::paper().with_expected_size(128 << 10),
        ..HostChunkerConfig::optimized()
    });

    // Upload version 1 and prime the computation.
    let mut fs = IncHdfs::new(20);
    let up1 = fs
        .copy_from_local_gpu("/corpus", &v1, &service, &TextInputFormat)
        .unwrap();
    println!(
        "upload v1 : {} splits, {} MiB new",
        up1.splits,
        up1.new_bytes >> 20
    );

    let mut runner = IncrementalRunner::new(WordCount, ClusterConfig::paper());
    let first = runner.run(&fs.splits("/corpus").expect("splits"));
    println!(
        "run v1    : {} map tasks, {:.2} s simulated",
        first.stats.splits,
        first.stats.timing.total.as_secs_f64()
    );

    // Upload version 2: unchanged chunks deduplicate.
    let up2 = fs
        .copy_from_local_gpu("/corpus", &v2, &service, &TextInputFormat)
        .unwrap();
    println!(
        "upload v2 : {} splits, {:.0}% deduplicated",
        up2.splits,
        up2.dedup_fraction() * 100.0
    );

    // Incremental run vs from-scratch ("plain Hadoop") run.
    let splits = fs.splits("/corpus").expect("splits v2");
    let incremental = runner.run(&splits);
    let mut fresh = IncrementalRunner::new(WordCount, ClusterConfig::paper());
    let full = fresh.run(&splits);

    assert_eq!(incremental.output, full.output, "outputs must match");
    println!(
        "run v2    : {}/{} map tasks memoized",
        incremental.stats.memo_hits, incremental.stats.splits
    );
    println!(
        "from-scratch {:.2} s vs incremental {:.2} s  ->  {:.1}x speedup",
        full.stats.timing.total.as_secs_f64(),
        incremental.stats.timing.total.as_secs_f64(),
        full.stats.timing.total.as_secs_f64() / incremental.stats.timing.total.as_secs_f64()
    );

    let mut top: Vec<(&String, &u64)> = incremental.output.iter().collect();
    top.sort_by(|a, b| b.1.cmp(a.1));
    println!("\ntop words:");
    for (word, count) in top.iter().take(5) {
        println!("  {word:<8} {count}");
    }

    // The same input format, consumed directly through the staged sink
    // API (no Inc-HDFS instance): record alignment + split
    // fingerprinting run inside the chunking simulation, and the
    // resulting splits memoize identically.
    let direct =
        shredder::mapreduce::runner::content_defined_splits(&v2, &service, &TextInputFormat)
            .expect("content-defined splits");
    let via_sink = runner.run(&direct);
    assert_eq!(via_sink.output, incremental.output, "sink splits diverge");
    println!(
        "\nsink-based splits: {} splits, {}/{} memoized on rerun",
        direct.len(),
        via_sink.stats.memo_hits,
        via_sink.stats.splits
    );
}
