//! The incremental-storage lifecycle end to end: nightly backups of a
//! mutating VM image into the versioned store, retention expiry,
//! garbage collection, and digest-verified restore.
//!
//! ```text
//! backup v0 .. v5  ->  expire v0..v2  ->  GC (sweep + compact)  ->  restore v3..v5
//! ```
//!
//! Run with `cargo run --release --example snapshot_restore`.

use shredder::backup::{BackupConfig, BackupServer};
use shredder::core::{Shredder, ShredderConfig};
use shredder::rabin::ChunkParams;
use shredder::store::StoreConfig;
use shredder::workloads::{mutate, MutationSpec};

const NIGHTS: usize = 6;

fn main() {
    let gpu = Shredder::new(
        ShredderConfig::gpu_streams_memory()
            .with_params(ChunkParams::backup())
            .with_buffer_size(2 << 20),
    );
    // Small segments + aggressive compaction so this demo's GC reclaims
    // immediately; production would defer with a ~0.5 threshold.
    let mut server = BackupServer::with_store_config(
        BackupConfig {
            buffer_size: 2 << 20,
            ..BackupConfig::paper()
        },
        StoreConfig {
            segment_bytes: 1 << 20,
            gc_threshold: 0.9,
            retention: None,
        },
    );

    // Six nightly snapshots, each a 4% mutation of the previous night.
    let mut image = shredder::workloads::compressible_bytes(24 << 20, 512, 0x5ee);
    let mut nights = Vec::new();
    println!("night  image      new data   dedup   backup bw   physical");
    for night in 0..NIGHTS {
        let report = server.backup_image(&image, &gpu).expect("backup failed");
        println!(
            "  {night}    {:5.1} MB   {:6.2} MB   {:4.1}%   {:5.2} Gbps   {:5.1} MB",
            report.image_bytes as f64 / 1e6,
            report.new_bytes as f64 / 1e6,
            report.dedup_fraction() * 100.0,
            report.bandwidth_gbps(),
            server.site().physical_bytes() as f64 / 1e6,
        );
        nights.push((report.image_id, image.clone()));
        image = mutate(&image, &MutationSpec::replace(0.04, 0xda7e + night as u64));
    }

    // Retention: keep the last three nights.
    let cutoff = nights[NIGHTS - 4].0;
    let expired = server.expire_images(cutoff);
    let before = server.site().physical_bytes();
    let gc = server.collect_garbage();
    println!(
        "\nexpired {expired} snapshots; GC freed {} chunks ({:.2} MB), \
         compacted {} segments, footprint {:.1} MB -> {:.1} MB",
        gc.freed_chunks,
        gc.freed_bytes as f64 / 1e6,
        gc.compacted_segments,
        before as f64 / 1e6,
        server.site().physical_bytes() as f64 / 1e6,
    );

    // Every surviving night restores bit-identical — each chunk is
    // re-hashed and checked against its manifest digest on the way out.
    for (id, expected) in &nights[NIGHTS - 3..] {
        let restored = server.site().restore(*id).expect("restore failed");
        assert_eq!(&restored, expected, "night {id} diverged");
        println!(
            "night {id}: restored {:.1} MB, all digests verified",
            restored.len() as f64 / 1e6
        );
    }
    // The expired nights are gone for good.
    assert!(server.site().restore(nights[0].0).is_none());

    let report = server.site().report();
    println!(
        "\nstore: {} chunks in {} segments, dedup {:.1}x, live {:.0}%, \
         {} GC run(s) freed {:.2} MB total",
        report.chunk_count,
        report.segment_count,
        report.dedup_ratio(),
        report.live_fraction() * 100.0,
        report.gc_runs,
        report.freed_bytes_total as f64 / 1e6,
    );
}
