//! Future work (§9): network redundancy elimination with Shredder.
//!
//! Run with `cargo run --release --example network_redundancy`.
//!
//! The paper's conclusion suggests applying Shredder to "middleboxes for
//! bandwidth reduction using network redundancy elimination" \[11\]. This
//! example sketches that: a pair of middleboxes on either end of a WAN
//! link chunk the passing byte stream, keep a synchronized chunk cache,
//! and replace repeated chunks with small tokens — the
//! EndRE/packet-cache idea built on the same chunking service.

use std::collections::HashMap;

use shredder::core::{ChunkingService, Shredder, ShredderConfig};
use shredder::hash::{sha256, Digest};
use shredder::rabin::ChunkParams;
use shredder::workloads;

/// Token size on the wire for a cache hit (digest prefix + length).
const TOKEN_BYTES: usize = 12;

struct Middlebox {
    cache: HashMap<Digest, Vec<u8>>,
}

enum WireItem {
    Literal(Vec<u8>),
    Token(Digest),
}

impl Middlebox {
    fn new() -> Self {
        Middlebox {
            cache: HashMap::new(),
        }
    }

    /// Sender side: encode a stream as literals + tokens.
    fn encode(&mut self, data: &[u8], chunker: &dyn ChunkingService) -> Vec<WireItem> {
        let outcome = chunker.chunk_stream(data).expect("chunking failed");
        outcome
            .chunks
            .iter()
            .map(|c| {
                let payload = c.slice(data);
                let digest = sha256(payload);
                match self.cache.entry(digest) {
                    std::collections::hash_map::Entry::Occupied(_) => WireItem::Token(digest),
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(payload.to_vec());
                        WireItem::Literal(payload.to_vec())
                    }
                }
            })
            .collect()
    }

    /// Receiver side: reconstruct the stream, learning new literals.
    fn decode(&mut self, items: &[WireItem]) -> Vec<u8> {
        let mut out = Vec::new();
        for item in items {
            match item {
                WireItem::Literal(bytes) => {
                    self.cache.insert(sha256(bytes), bytes.clone());
                    out.extend_from_slice(bytes);
                }
                WireItem::Token(digest) => {
                    out.extend_from_slice(&self.cache[digest]);
                }
            }
        }
        out
    }
}

fn wire_bytes(items: &[WireItem]) -> usize {
    items
        .iter()
        .map(|i| match i {
            WireItem::Literal(b) => b.len(),
            WireItem::Token(..) => TOKEN_BYTES,
        })
        .sum()
}

fn main() {
    // Small expected chunks, as redundancy elimination uses (§2.1's
    // SampleByte discussion: small chunks catch fine-grained repeats).
    let chunker = Shredder::new(
        ShredderConfig::gpu_streams_memory()
            .with_params(ChunkParams::paper().with_expected_size(2048))
            .with_buffer_size(4 << 20),
    );

    let mut sender = Middlebox::new();
    let mut receiver = Middlebox::new();

    // Day one: a software update pushed to one branch office.
    let update_v1 = workloads::compressible_bytes(8 << 20, 2048, 77);
    // Day two: a patched build — 90% identical content — to another.
    let update_v2 = workloads::mutate(&update_v1, &workloads::MutationSpec::mixed(0.10, 78));

    let mut total_in = 0usize;
    let mut total_out = 0usize;
    for (day, payload) in [(1, &update_v1), (2, &update_v2)] {
        let items = sender.encode(payload, &chunker);
        let sent = wire_bytes(&items);
        let restored = receiver.decode(&items);
        assert_eq!(&restored, payload, "day {day} stream corrupted");

        total_in += payload.len();
        total_out += sent;
        println!(
            "day {day}: {:>5} KiB in -> {:>5} KiB on the wire ({:.1}% saved)",
            payload.len() >> 10,
            sent >> 10,
            (1.0 - sent as f64 / payload.len() as f64) * 100.0
        );
    }

    println!(
        "\noverall: {} KiB -> {} KiB ({:.1}% of WAN bandwidth eliminated)",
        total_in >> 10,
        total_out >> 10,
        (1.0 - total_out as f64 / total_in as f64) * 100.0
    );
}
