//! The online service frontend: open-loop arrivals, admission control,
//! latency SLOs.
//!
//! Demonstrates the service regime the closed-batch API cannot express:
//! requests arrive *while the GPUs are busy*, wait in a bounded
//! admission queue, and either complete (with per-request latency) or
//! are shed under overload. Run with:
//!
//! ```text
//! cargo run --release --example online_service
//! ```

use shredder::core::{
    capacity_search, AdmissionControl, ChunkError, ChunkRequest, MemorySource, ShredderConfig,
    ShredderService, TenantClass, Workload,
};
use shredder::des::Dur;

const REQUESTS: usize = 24;
const REQ_BYTES: usize = 512 << 10;

fn build_service<'a>(control: AdmissionControl) -> ShredderService<'a> {
    let mut service =
        ShredderService::new(ShredderConfig::gpu_streams_memory().with_buffer_size(128 << 10))
            .with_admission(control);
    // Two tenant classes: paying traffic gets 4x the fair-share weight;
    // free traffic is additionally capped at a 10 Gbps ingest link via
    // `TenantClass::with_ingest_bw` — the per-class successor of the
    // old per-sink intake cap (one-shot consumers cap their reader with
    // `ChunkingService::chunk_source_sink_capped` instead).
    service.define_class(TenantClass::new("gold").with_weight(4));
    service.define_class(TenantClass::new("free").with_ingest_bw(1.25e9));
    for t in 0..REQUESTS as u64 {
        let class = if t % 3 == 0 { "gold" } else { "free" };
        service.submit(
            ChunkRequest::new(MemorySource::pseudo_random(REQ_BYTES, t))
                .named(format!("{class}-{t}"))
                .with_class(class),
        );
    }
    service
}

fn main() {
    // 1. Measure capacity with a closed batch.
    let mu = {
        let out = build_service(AdmissionControl::fifo(4))
            .run(&Workload::Batch)
            .expect("batch run failed");
        out.service().achieved_rps
    };
    println!("measured capacity ≈ {mu:.0} req/s\n");

    // 2. Open-loop Poisson at 70% of capacity: everything completes,
    //    p99 stays finite.
    let out = build_service(AdmissionControl::fifo(4))
        .run(&Workload::poisson(0.7 * mu, 7))
        .expect("service run failed");
    let svc = out.service();
    println!("-- 70% of capacity (open loop) --");
    println!(
        "offered {:.0} req/s  achieved {:.0} req/s  completed {}  shed {}",
        svc.offered_rps, svc.achieved_rps, svc.completed, svc.shed
    );
    for class in &svc.classes {
        println!(
            "  class {:<8} p50 {:>7.2} ms  p99 {:>7.2} ms  (completed {}, shed {})",
            class.class,
            class.p50.as_millis_f64(),
            class.p99.as_millis_f64(),
            class.completed,
            class.shed
        );
    }

    // 3. 2x capacity with a queue-delay bound: the service sheds
    //    instead of queueing without bound.
    let bound = Dur::from_millis(2);
    let out = build_service(AdmissionControl::fifo(4).with_max_queue_delay(bound))
        .run(&Workload::poisson(2.0 * mu, 11))
        .expect("service run failed");
    let svc = out.service();
    println!("\n-- 200% of capacity, queue delay bounded at 2 ms --");
    println!(
        "completed {}  shed {}  max queue delay {:.2} ms  max queue depth {}",
        svc.completed,
        svc.shed,
        svc.max_queue_delay().as_millis_f64(),
        svc.max_queue_depth
    );
    for r in &out.requests {
        if let Err(ChunkError::Overloaded { queued }) = &r.outcome {
            println!(
                "  {} shed after {:.2} ms in queue",
                r.name,
                queued.as_millis_f64()
            );
        }
    }

    // 4. Bisect the highest sustained rate meeting a p99 SLO.
    let slo = Dur::from_millis(3);
    let report = capacity_search(slo, 0.2 * mu, 2.0 * mu, 6, |rate| {
        let out = build_service(AdmissionControl::fifo(4).with_max_queue_delay(slo))
            .run(&Workload::poisson(rate, 4242))?;
        Ok(out.service().clone())
    })
    .expect("capacity search failed");
    println!(
        "\nsustained rate at p99 ≤ {:.0} ms: {:.0} req/s ({} trials)",
        slo.as_millis_f64(),
        report.sustained_rps,
        report.trials.len()
    );
}
