//! Offline stand-in for the `bytes` crate.
//!
//! Provides the subset of the `Bytes` API this workspace uses: an
//! immutable, cheaply-clonable (reference-counted) byte buffer. Chunk
//! payloads are stored once and shared between DataNodes, backup sites
//! and dedup indexes without copying on clone.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer. Cloning is O(1).
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Copies a slice into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// Creates a buffer from static data (copied; the real crate
    /// borrows, but the observable behaviour is identical).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.0
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes(Arc::from(data))
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.0[..] == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self.0[..] == other.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.0.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_cheap_clone() {
        let b = Bytes::copy_from_slice(b"hello");
        let c = b.clone();
        assert_eq!(&*b, b"hello");
        assert_eq!(b, c);
        assert_eq!(b.len(), 5);
        assert!(!b.is_empty());
    }

    #[test]
    fn conversions() {
        let from_vec: Bytes = vec![1u8, 2, 3].into();
        let from_slice: Bytes = [1u8, 2, 3].as_slice().into();
        assert_eq!(from_vec, from_slice);
        assert!(Bytes::new().is_empty());
    }
}
