//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro, [`Strategy`] with `prop_map`,
//! [`any`], `collection::vec`, [`Just`], `prop_oneof!`, and the
//! `prop_assert*` family. Cases are generated from a deterministic
//! generator seeded by the test name, so failures reproduce exactly;
//! shrinking is not implemented (a failing case reports its inputs via
//! the assertion message instead).

#![forbid(unsafe_code)]

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, SeedableRng};

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to generate per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The property failed.
    Fail(String),
    /// The case was rejected by `prop_assume!` (not a failure).
    Reject(String),
}

impl TestCaseError {
    /// A failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection (assumption not met).
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }

    /// True if this is a rejection rather than a failure.
    pub fn is_rejection(&self) -> bool {
        matches!(self, TestCaseError::Reject(_))
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// The deterministic generator driving a test case.
pub type TestRng = StdRng;

/// Builds the generator for `(test name, case index)` — deterministic
/// across runs and platforms.
pub fn test_rng(test_name: &str, case: u32) -> TestRng {
    // FNV-1a over the name, mixed with the case index.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
}

/// Runs one generated case (helper the [`proptest!`] macro expands to).
pub fn run_case<F: FnOnce() -> Result<(), TestCaseError>>(f: F) -> Result<(), TestCaseError> {
    f()
}

/// A value generator.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Picks uniformly among homogeneous alternatives (`prop_oneof!`).
#[derive(Debug, Clone)]
pub struct OneOf<S> {
    options: Vec<S>,
}

impl<S> OneOf<S> {
    /// Creates a uniform choice over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<S>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { options }
    }
}

impl<S: Strategy> Strategy for OneOf<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let idx = (rng.next_u64() as usize) % self.options.len();
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                SampleRange::sample(self.clone(), rng)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                SampleRange::sample(self.clone(), rng)
            }
        }
    )*};
}
impl_strategy_for_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a default "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Strategy generating arbitrary values of `T`.
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy of all values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::{Rng, SampleRange};
    use std::ops::Range;

    /// Generates `Vec`s of `element` values with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec`](fn@vec).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.start + 1 >= self.size.end {
                self.size.start
            } else {
                SampleRange::sample(self.size.clone(), rng)
            };
            // Bias some cases toward the small end so boundary conditions
            // (empty, single element) are exercised.
            let len = match rng.next_u64() % 16 {
                0 => self.size.start,
                1 => self.size.start + (len - self.size.start).min(1),
                _ => len,
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The common imports.
pub mod prelude {
    pub use crate::{any, Any, Arbitrary, Just, ProptestConfig, Strategy, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares deterministic property tests.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::test_rng(stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome = $crate::run_case(|| {
                    $body
                    ::core::result::Result::Ok(())
                });
                match outcome {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err(e) if e.is_rejection() => {}
                    ::core::result::Result::Err(e) => {
                        panic!("proptest case {case} of {}: {e}", stringify!($name));
                    }
                }
            }
        }
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
}

/// Asserts a condition inside a property, failing the case (not
/// panicking) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `(left != right)`\n  both: `{:?}`",
                left
            )));
        }
    }};
}

/// Rejects the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Uniform choice among homogeneous strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($strat),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Generated vectors respect their size bounds.
        #[test]
        fn vec_respects_bounds(data in crate::collection::vec(any::<u8>(), 3..17)) {
            prop_assert!(data.len() >= 3 && data.len() < 17);
        }

        /// Ranges generate in-bounds values; assume works.
        #[test]
        fn ranges_and_assume(x in 10u64..20, y in 0usize..4) {
            prop_assume!(y != 3);
            prop_assert!((10..20).contains(&x));
            prop_assert_ne!(y, 3);
        }

        /// prop_map and prop_oneof compose.
        #[test]
        fn map_and_oneof(v in crate::collection::vec(prop_oneof![Just(1u8), Just(2u8)], 1..8).prop_map(|v| v.len())) {
            prop_assert!((1..8).contains(&v));
        }
    }

    #[test]
    fn deterministic_rng() {
        let mut a = crate::test_rng("t", 0);
        let mut b = crate::test_rng("t", 0);
        assert_eq!(
            crate::collection::vec(any::<u8>(), 0..64).generate(&mut a),
            crate::collection::vec(any::<u8>(), 0..64).generate(&mut b)
        );
    }
}
