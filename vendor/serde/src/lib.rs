//! Offline stand-in for `serde`.
//!
//! Exposes the `Serialize`/`Deserialize` names this workspace imports —
//! both as (empty) traits and as no-op derive macros — so the code
//! compiles unchanged in this network-less container and can switch to
//! the real `serde` by swapping the dependency path.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
