//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset of the API the workloads crate uses —
//! `StdRng::seed_from_u64`, `fill_bytes`, `next_u64`, `random`,
//! `random_range` — on top of a deterministic xoshiro256** generator
//! seeded through SplitMix64. All workload generation in this workspace
//! is seeded, so determinism (not cryptographic quality) is the
//! requirement.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core random number generation.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Convenience sampling methods (the rand 0.9 naming).
pub trait RngExt: Rng + Sized {
    /// Samples a value of `T` from its standard distribution.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

impl<T: Rng> RngExt for T {}

/// Types samplable from their "standard" distribution: full range for
/// integers, `[0, 1)` for floats.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let unit = f64::sample(rng) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard generator: xoshiro256** seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the xoshiro authors recommend.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** step.
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: i32 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let f: f64 = rng.random_range(-8.0..8.0);
            assert!((-8.0..8.0).contains(&f));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn fill_bytes_covers_all_lengths() {
        let mut rng = StdRng::seed_from_u64(2);
        for len in [0usize, 1, 7, 8, 9, 63, 64, 65] {
            let mut buf = vec![0u8; len];
            rng.fill_bytes(&mut buf);
            if len >= 16 {
                assert!(buf.iter().any(|&b| b != 0), "len {len} all zero");
            }
        }
    }

    #[test]
    fn float_range_distribution_sane() {
        let mut rng = StdRng::seed_from_u64(3);
        let mean: f64 = (0..10_000).map(|_| rng.random_range(0.0..1.0)).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
