//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its report and
//! config types so they can be exported to real serializers once the
//! real `serde` is available. This container has no network access to
//! crates.io, so these derives expand to nothing: the derive syntax
//! stays valid and the types keep compiling, without pulling in the
//! real implementation.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
