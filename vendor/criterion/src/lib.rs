//! Offline stand-in for `criterion`.
//!
//! Provides the subset of the criterion API the workspace's
//! wall-clock micro-benchmarks use (`criterion_group!`,
//! `criterion_main!`, benchmark groups, throughput annotation). Each
//! benchmark runs a short fixed number of timed iterations and prints
//! mean wall-clock time (plus derived throughput) — enough to compare
//! the functional primitives, without statistical analysis or plots.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::Instant;

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Input bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id like `name/param`.
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), param),
        }
    }
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            name,
            throughput: None,
            sample_size: 10,
        }
    }

    /// Registers a standalone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        let mut group = self.benchmark_group(name.to_string());
        group.bench_function("run", f);
        group.finish();
    }
}

/// A group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the throughput used to derive rates from times.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets the number of timed samples (clamped to keep runs short).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.clamp(1, 20);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function(&mut self, id: impl fmt::Display, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            samples: self.sample_size,
            total_nanos: 0,
            iters: 0,
        };
        f(&mut b);
        self.report(&id.to_string(), &b);
    }

    /// Runs a parameterized benchmark in this group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let mut b = Bencher {
            samples: self.sample_size,
            total_nanos: 0,
            iters: 0,
        };
        f(&mut b, input);
        self.report(&id.name, &b);
    }

    /// Closes the group.
    pub fn finish(self) {}

    fn report(&self, id: &str, b: &Bencher) {
        if b.iters == 0 {
            println!("  {}/{id}: no iterations", self.name);
            return;
        }
        let mean_ns = b.total_nanos as f64 / b.iters as f64;
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) => {
                format!(
                    "  ({:.2} GiB/s)",
                    n as f64 / mean_ns * 1e9 / (1u64 << 30) as f64
                )
            }
            Some(Throughput::Elements(n)) => {
                format!("  ({:.2} Melem/s)", n as f64 / mean_ns * 1e9 / 1e6)
            }
            None => String::new(),
        };
        println!(
            "  {}/{id}: {:.3} ms/iter over {} iters{rate}",
            self.name,
            mean_ns / 1e6,
            b.iters
        );
    }
}

/// Times closures.
pub struct Bencher {
    samples: usize,
    total_nanos: u128,
    iters: u64,
}

impl Bencher {
    /// Times `f` over a fixed number of iterations.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // One warmup iteration outside the timed region.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.total_nanos += start.elapsed().as_nanos();
        self.iters += self.samples as u64;
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Bytes(1024));
        group.sample_size(2);
        group.bench_function("sum", |b| b.iter(|| (0..1024u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    criterion_group!(smoke, sample_bench);

    #[test]
    fn harness_runs() {
        smoke();
    }
}
