//! # Shredder: GPU-accelerated incremental storage and computation
//!
//! A from-scratch Rust reproduction of *Shredder: GPU-Accelerated
//! Incremental Storage and Computation* (Bhatotia, Rodrigues & Verma,
//! FAST 2012) — a high-performance content-based chunking framework for
//! incremental storage and computation systems.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`rabin`] — Rabin fingerprinting over GF(2) and content-defined
//!   chunking (sequential, fixed-size and parallel SPMD).
//! * [`hash`] — SHA-256 chunk digests and fast index hashing.
//! * [`des`] — the deterministic discrete-event simulation kernel that
//!   underpins every timing result.
//! * [`gpu`] — the functional + timing model of the paper's Tesla C2050
//!   (DRAM banks, coalescing, DMA, SIMT, the two chunking kernels).
//! * [`core`] — the Shredder framework itself: the
//!   Reader→Transfer→Kernel→Store pipeline with double buffering, pinned
//!   ring buffers and the multi-stage streaming pipeline, plus the
//!   host-only pthreads-style baseline.
//! * [`workloads`] — seeded data/trace generators (mutations, VM images,
//!   record datasets).
//! * [`hdfs`] — Inc-HDFS: content-defined chunking for HDFS-style
//!   storage (case study I substrate).
//! * [`mapreduce`] — Incoop-style incremental MapReduce with memoization
//!   (case study I).
//! * [`backup`] — the consolidated cloud-backup system (case study II).
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.
//!
//! # Quickstart
//!
//! ```
//! use shredder::core::{ChunkingService, Shredder, ShredderConfig};
//!
//! // Chunk a stream with the fully-optimized GPU pipeline and collect
//! // the chunk boundaries Shredder "upcalls" to the application.
//! let data: Vec<u8> = (0..1u32 << 20).map(|i| (i.wrapping_mul(2654435761) >> 9) as u8).collect();
//! let shredder = Shredder::new(ShredderConfig::default());
//! let outcome = shredder.chunk_stream(&data);
//! assert_eq!(
//!     outcome.chunks.iter().map(|c| c.len).sum::<usize>(),
//!     data.len()
//! );
//! println!("simulated chunking bandwidth: {:.2} GB/s", outcome.report.throughput_gbps());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use shredder_backup as backup;
pub use shredder_core as core;
pub use shredder_des as des;
pub use shredder_gpu as gpu;
pub use shredder_hash as hash;
pub use shredder_hdfs as hdfs;
pub use shredder_mapreduce as mapreduce;
pub use shredder_rabin as rabin;
pub use shredder_workloads as workloads;
