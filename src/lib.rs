//! # Shredder: GPU-accelerated incremental storage and computation
//!
//! A from-scratch Rust reproduction of *Shredder: GPU-Accelerated
//! Incremental Storage and Computation* (Bhatotia, Rodrigues & Verma,
//! FAST 2012) — a high-performance content-based chunking framework for
//! incremental storage and computation systems, grown into a
//! **session-based multi-tenant engine**: many client streams share one
//! device pipeline, as the paper's backup server (§7.2) and Inc-HDFS
//! deployments demand.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`rabin`] — Rabin fingerprinting over GF(2) and content-defined
//!   chunking (sequential, fixed-size and parallel SPMD).
//! * [`hash`] — SHA-256 chunk digests and fast index hashing.
//! * [`des`] — the deterministic discrete-event simulation kernel that
//!   underpins every timing result.
//! * [`gpu`] — the functional + timing model of the paper's Tesla C2050
//!   (DRAM banks, coalescing, DMA, SIMT, the two chunking kernels), and
//!   the multi-device [`DevicePool`](gpu::DevicePool) with per-device
//!   stream triples and event-chained copy–compute overlap.
//! * [`core`] — the Shredder framework: the session-based
//!   [`ShredderEngine`](core::ShredderEngine) scheduling N concurrent
//!   [`ChunkSession`](core::ChunkSession)s through one shared
//!   Reader→Transfer→Kernel→Store pipeline (double buffering, pinned
//!   ring, fair admission), sharded across a device pool (`gpus = N`,
//!   least-loaded / round-robin / pinned placement, per-device
//!   utilization + overlap reporting), the single-stream
//!   [`Shredder`](core::Shredder) convenience, the host-only
//!   pthreads baseline — and the **online service frontend**
//!   ([`ShredderService`](core::ShredderService)): open-loop /
//!   closed-loop / trace arrival workloads, bounded admission with
//!   per-tenant fair share and load shedding, per-request latency
//!   timestamps and p50/p95/p99 SLO reporting.
//! * [`store`] — the versioned content-addressed chunk store: a
//!   segment-packed payload log behind one shared fingerprint index,
//!   first-class snapshots (per-stream generations), digest-verified
//!   restore, and mark-and-sweep GC with segment compaction. Fed
//!   in-simulation by [`core::StoreSink`]; the Inc-HDFS DataNodes and
//!   the backup site are its clients.
//! * [`telemetry`] — in-simulation tracing and metrics: sim-time spans
//!   and instants on request/device/stage lanes, counters, gauges and
//!   log-bucketed histograms, Chrome-trace export for Perfetto. Off by
//!   default, with a zero-overhead-off contract.
//! * [`cluster`] — the sharded multi-node fleet: N node replicas in one
//!   simulation behind consistent-hash routing
//!   ([`HashRing`](cluster::HashRing)), dedup-aware replicated segment
//!   writes over modeled inter-node links, planned membership churn and
//!   fault-plan node deaths with bounded rebalancing and digest-verified
//!   repair, all reported per node and fleet-wide in a
//!   [`FleetReport`](cluster::FleetReport).
//! * [`workloads`] — seeded data/trace generators (mutations, VM images,
//!   record datasets).
//! * [`hdfs`] — Inc-HDFS: content-defined chunking for HDFS-style
//!   storage, with batch ingestion over the session engine.
//! * [`mapreduce`] — Incoop-style incremental MapReduce with memoization
//!   (case study I).
//! * [`backup`] — the consolidated cloud-backup system (case study II),
//!   with multi-site batched backups over the session engine.
//!
//! See `DESIGN.md` for the system inventory, the session API, and the
//! migration notes from the old one-shot `chunk_stream` API.
//!
//! # Quickstart: the online service
//!
//! Shredder is a storage-system *service*: requests keep arriving while
//! the GPUs are busy. A [`ShredderService`](core::ShredderService)
//! takes submitted requests, drives them with an open-loop Poisson
//! [`Workload`](core::Workload) (or closed-loop / trace-replay /
//! batch), pushes them through bounded admission, and reports latency
//! percentiles per tenant class — three lines from config to a p99
//! readout:
//!
//! ```
//! use shredder::core::{ChunkRequest, MemorySource, ShredderConfig, ShredderService, Workload};
//!
//! let mut service = ShredderService::new(ShredderConfig::default().with_buffer_size(256 << 10));
//! (0..16u64).for_each(|t| {
//!     service.submit(ChunkRequest::new(MemorySource::pseudo_random(512 << 10, t)));
//! });
//! let outcome = service.run(&Workload::poisson(1_000.0, 42)).expect("service run failed");
//!
//! println!(
//!     "offered {:.0} req/s, achieved {:.0} req/s, p99 {:.2} ms, shed {}",
//!     outcome.service().offered_rps,
//!     outcome.service().achieved_rps,
//!     outcome.service().p99().as_millis_f64(),
//!     outcome.service().shed,
//! );
//! # assert_eq!(outcome.service().completed + outcome.service().shed, 16);
//! ```
//!
//! Under overload, bounded admission sheds requests with
//! [`ChunkError::Overloaded`](core::ChunkError) instead of queueing
//! without bound, and
//! [`capacity_search`](core::capacity_search) bisects the highest
//! sustained rate meeting a p99 SLO. Ingest-bandwidth caps are
//! per tenant class ([`TenantClass::with_ingest_bw`](core::TenantClass))
//! — or per request for one-shot consumers, via
//! `ChunkingService::chunk_source_sink_capped` — rather than a
//! property of the sink itself.
//!
//! # Quickstart: multi-tenant chunking
//!
//! Open one session per client stream on a shared engine; every tenant
//! gets chunks bit-identical to a sequential scan of its own stream,
//! while the pipeline stays saturated across tenants:
//!
//! ```
//! use shredder::core::{AdmissionPolicy, ShredderConfig, ShredderEngine, SliceSource};
//!
//! // Three tenant streams (any `StreamSource` works; slices are easiest).
//! let tenants: Vec<Vec<u8>> = (0..3u64)
//!     .map(|t| {
//!         (0..512u32 << 10)
//!             .map(|i| ((i as u64).wrapping_mul(2654435761).wrapping_add(t * 977) >> 9) as u8)
//!             .collect()
//!     })
//!     .collect();
//!
//! let mut engine =
//!     ShredderEngine::new(ShredderConfig::gpu_streams_memory().with_buffer_size(128 << 10))
//!         .with_policy(AdmissionPolicy::RoundRobin);
//! for (t, data) in tenants.iter().enumerate() {
//!     engine.open_named_session(format!("tenant-{t}"), 1, SliceSource::new(data));
//! }
//!
//! let outcome = engine.run().expect("chunking failed");
//! for (session, data) in outcome.sessions.iter().zip(&tenants) {
//!     assert_eq!(
//!         session.chunks.iter().map(|c| c.len).sum::<usize>(),
//!         data.len(),
//!     );
//! }
//! println!(
//!     "{} tenants, aggregate {:.2} GB/s, contention {:.2} ms",
//!     outcome.sessions.len(),
//!     outcome.report.aggregate_gbps(),
//!     outcome.report.queue_wait.as_millis_f64(),
//! );
//! ```
//!
//! # Quickstart: one stream
//!
//! The classic one-shot API is a thin single-session convenience over
//! the same engine:
//!
//! ```
//! use shredder::core::{ChunkingService, Shredder, ShredderConfig};
//!
//! let data: Vec<u8> = (0..1u32 << 20).map(|i| (i.wrapping_mul(2654435761) >> 9) as u8).collect();
//! let shredder = Shredder::new(ShredderConfig::default());
//! let outcome = shredder.chunk_stream(&data).expect("chunking failed");
//! assert_eq!(
//!     outcome.chunks.iter().map(|c| c.len).sum::<usize>(),
//!     data.len()
//! );
//! println!("simulated chunking bandwidth: {:.2} GB/s", outcome.report.throughput_gbps());
//! ```
//!
//! # Quickstart: the Gear kernel
//!
//! The default boundary detector is the paper's Rabin fingerprint. Any
//! engine can swap in the Gear rolling hash with FastCDC cut
//! normalization (`chunk_kernel = Gear` / `GearCoalesced`): one table
//! lookup, a shift and an add per byte instead of the two-table
//! polynomial update, roughly halving the per-byte kernel cost.
//! Boundaries differ from Rabin's (it is a different content hash), but
//! stay content-defined, deterministic, and shift-resilient:
//!
//! ```
//! use shredder::core::{ChunkingService, Shredder, ShredderConfig};
//! use shredder::gpu::kernel::KernelVariant;
//! use shredder::workloads;
//!
//! let data = workloads::random_bytes(4 << 20, 42);
//! let rabin = Shredder::new(ShredderConfig::gpu_streams_memory().with_buffer_size(1 << 20));
//! let gear = Shredder::new(
//!     ShredderConfig::gpu_streams_memory()
//!         .with_buffer_size(1 << 20)
//!         .with_chunk_kernel(KernelVariant::GearCoalesced),
//! );
//! let r = rabin.chunk_stream(&data).expect("chunking failed");
//! let g = gear.chunk_stream(&data).expect("chunking failed");
//! assert!(g.report.throughput_gbps() > r.report.throughput_gbps());
//! println!(
//!     "rabin {:.2} GB/s → gear {:.2} GB/s",
//!     r.report.throughput_gbps(),
//!     g.report.throughput_gbps(),
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use shredder_backup as backup;
pub use shredder_cluster as cluster;
pub use shredder_core as core;
pub use shredder_des as des;
pub use shredder_gpu as gpu;
pub use shredder_hash as hash;
pub use shredder_hdfs as hdfs;
pub use shredder_mapreduce as mapreduce;
pub use shredder_rabin as rabin;
pub use shredder_store as store;
pub use shredder_telemetry as telemetry;
pub use shredder_workloads as workloads;
