(function() {
    const implementors = Object.fromEntries([["shredder_core",[]],["shredder_hdfs",[["impl <a class=\"trait\" href=\"shredder_core/sink/trait.ChunkSink.html\" title=\"trait shredder_core::sink::ChunkSink\">ChunkSink</a> for <a class=\"struct\" href=\"shredder_hdfs/sink/struct.RecordAlignedSink.html\" title=\"struct shredder_hdfs::sink::RecordAlignedSink\">RecordAlignedSink</a>&lt;'_&gt;",0]]],["shredder_hdfs",[["impl ChunkSink for <a class=\"struct\" href=\"shredder_hdfs/sink/struct.RecordAlignedSink.html\" title=\"struct shredder_hdfs::sink::RecordAlignedSink\">RecordAlignedSink</a>&lt;'_&gt;",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[20,330,211]}