(function() {
    const implementors = Object.fromEntries([["shredder_backup",[["impl <a class=\"trait\" href=\"shredder_core/sink/trait.FingerprintIndex.html\" title=\"trait shredder_core::sink::FingerprintIndex\">FingerprintIndex</a> for <a class=\"struct\" href=\"shredder_backup/index/struct.DedupIndex.html\" title=\"struct shredder_backup::index::DedupIndex\">DedupIndex</a>",0]]],["shredder_backup",[["impl FingerprintIndex for <a class=\"struct\" href=\"shredder_backup/index/struct.DedupIndex.html\" title=\"struct shredder_backup::index::DedupIndex\">DedupIndex</a>",0]]],["shredder_core",[]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[327,195,21]}