(function() {
    const implementors = Object.fromEntries([["shredder_hash",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/hash/trait.Hasher.html\" title=\"trait core::hash::Hasher\">Hasher</a> for <a class=\"struct\" href=\"shredder_hash/fnv/struct.Fnv1a64.html\" title=\"struct shredder_hash::fnv::Fnv1a64\">Fnv1a64</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[293]}