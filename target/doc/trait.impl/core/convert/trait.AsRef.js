(function() {
    const implementors = Object.fromEntries([["bytes",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/convert/trait.AsRef.html\" title=\"trait core::convert::AsRef\">AsRef</a>&lt;[<a class=\"primitive\" href=\"https://doc.rust-lang.org/1.95.0/std/primitive.u8.html\">u8</a>]&gt; for <a class=\"struct\" href=\"bytes/struct.Bytes.html\" title=\"struct bytes::Bytes\">Bytes</a>",0]]],["shredder_hash",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/convert/trait.AsRef.html\" title=\"trait core::convert::AsRef\">AsRef</a>&lt;[<a class=\"primitive\" href=\"https://doc.rust-lang.org/1.95.0/std/primitive.u8.html\">u8</a>]&gt; for <a class=\"struct\" href=\"shredder_hash/digest/struct.Digest.html\" title=\"struct shredder_hash::digest::Digest\">Digest</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[360,403]}