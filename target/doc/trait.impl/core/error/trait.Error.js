(function() {
    const implementors = Object.fromEntries([["shredder_core",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/error/trait.Error.html\" title=\"trait core::error::Error\">Error</a> for <a class=\"enum\" href=\"shredder_core/error/enum.ChunkError.html\" title=\"enum shredder_core::error::ChunkError\">ChunkError</a>",0]]],["shredder_gpu",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/error/trait.Error.html\" title=\"trait core::error::Error\">Error</a> for <a class=\"enum\" href=\"shredder_gpu/device/enum.GpuError.html\" title=\"enum shredder_gpu::device::GpuError\">GpuError</a>",0]]],["shredder_hdfs",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/error/trait.Error.html\" title=\"trait core::error::Error\">Error</a> for <a class=\"enum\" href=\"shredder_hdfs/fs/enum.HdfsError.html\" title=\"enum shredder_hdfs::fs::HdfsError\">HdfsError</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[299,293,291]}