(function() {
    const implementors = Object.fromEntries([["bytes",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/deref/trait.Deref.html\" title=\"trait core::ops::deref::Deref\">Deref</a> for <a class=\"struct\" href=\"bytes/struct.Bytes.html\" title=\"struct bytes::Bytes\">Bytes</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[262]}