(function() {
    const implementors = Object.fromEntries([["shredder_des",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/arith/trait.SubAssign.html\" title=\"trait core::ops::arith::SubAssign\">SubAssign</a> for <a class=\"struct\" href=\"shredder_des/time/struct.Dur.html\" title=\"struct shredder_des::time::Dur\">Dur</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[300]}