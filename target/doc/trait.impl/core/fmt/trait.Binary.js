(function() {
    const implementors = Object.fromEntries([["shredder_rabin",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/fmt/trait.Binary.html\" title=\"trait core::fmt::Binary\">Binary</a> for <a class=\"struct\" href=\"shredder_rabin/poly/struct.Polynomial.html\" title=\"struct shredder_rabin::poly::Polynomial\">Polynomial</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[305]}