/root/repo/target/release/examples/gpu_kernel_anatomy-e1caa17e8de80ba2.d: examples/gpu_kernel_anatomy.rs

/root/repo/target/release/examples/gpu_kernel_anatomy-e1caa17e8de80ba2: examples/gpu_kernel_anatomy.rs

examples/gpu_kernel_anatomy.rs:
