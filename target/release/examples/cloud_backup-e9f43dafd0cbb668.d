/root/repo/target/release/examples/cloud_backup-e9f43dafd0cbb668.d: examples/cloud_backup.rs

/root/repo/target/release/examples/cloud_backup-e9f43dafd0cbb668: examples/cloud_backup.rs

examples/cloud_backup.rs:
