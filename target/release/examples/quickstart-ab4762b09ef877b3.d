/root/repo/target/release/examples/quickstart-ab4762b09ef877b3.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-ab4762b09ef877b3: examples/quickstart.rs

examples/quickstart.rs:
