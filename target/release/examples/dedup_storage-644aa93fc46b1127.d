/root/repo/target/release/examples/dedup_storage-644aa93fc46b1127.d: examples/dedup_storage.rs

/root/repo/target/release/examples/dedup_storage-644aa93fc46b1127: examples/dedup_storage.rs

examples/dedup_storage.rs:
