/root/repo/target/release/examples/network_redundancy-ee9a22faa055d487.d: examples/network_redundancy.rs

/root/repo/target/release/examples/network_redundancy-ee9a22faa055d487: examples/network_redundancy.rs

examples/network_redundancy.rs:
