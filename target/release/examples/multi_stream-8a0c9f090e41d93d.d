/root/repo/target/release/examples/multi_stream-8a0c9f090e41d93d.d: examples/multi_stream.rs

/root/repo/target/release/examples/multi_stream-8a0c9f090e41d93d: examples/multi_stream.rs

examples/multi_stream.rs:
