/root/repo/target/release/examples/multi_stream-8e70a8405064f2d5.d: examples/multi_stream.rs

/root/repo/target/release/examples/multi_stream-8e70a8405064f2d5: examples/multi_stream.rs

examples/multi_stream.rs:
