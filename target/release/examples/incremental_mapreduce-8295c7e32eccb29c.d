/root/repo/target/release/examples/incremental_mapreduce-8295c7e32eccb29c.d: examples/incremental_mapreduce.rs

/root/repo/target/release/examples/incremental_mapreduce-8295c7e32eccb29c: examples/incremental_mapreduce.rs

examples/incremental_mapreduce.rs:
