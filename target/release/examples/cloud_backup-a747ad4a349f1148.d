/root/repo/target/release/examples/cloud_backup-a747ad4a349f1148.d: examples/cloud_backup.rs

/root/repo/target/release/examples/cloud_backup-a747ad4a349f1148: examples/cloud_backup.rs

examples/cloud_backup.rs:
