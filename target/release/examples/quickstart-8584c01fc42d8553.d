/root/repo/target/release/examples/quickstart-8584c01fc42d8553.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-8584c01fc42d8553: examples/quickstart.rs

examples/quickstart.rs:
