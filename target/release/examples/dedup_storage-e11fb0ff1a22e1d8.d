/root/repo/target/release/examples/dedup_storage-e11fb0ff1a22e1d8.d: examples/dedup_storage.rs

/root/repo/target/release/examples/dedup_storage-e11fb0ff1a22e1d8: examples/dedup_storage.rs

examples/dedup_storage.rs:
