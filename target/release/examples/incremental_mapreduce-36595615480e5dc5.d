/root/repo/target/release/examples/incremental_mapreduce-36595615480e5dc5.d: examples/incremental_mapreduce.rs

/root/repo/target/release/examples/incremental_mapreduce-36595615480e5dc5: examples/incremental_mapreduce.rs

examples/incremental_mapreduce.rs:
