/root/repo/target/release/deps/shredder_hdfs-9feaf5e29232a551.d: crates/hdfs/src/lib.rs crates/hdfs/src/fs.rs crates/hdfs/src/input_format.rs crates/hdfs/src/namenode.rs crates/hdfs/src/sink.rs crates/hdfs/src/store.rs

/root/repo/target/release/deps/shredder_hdfs-9feaf5e29232a551: crates/hdfs/src/lib.rs crates/hdfs/src/fs.rs crates/hdfs/src/input_format.rs crates/hdfs/src/namenode.rs crates/hdfs/src/sink.rs crates/hdfs/src/store.rs

crates/hdfs/src/lib.rs:
crates/hdfs/src/fs.rs:
crates/hdfs/src/input_format.rs:
crates/hdfs/src/namenode.rs:
crates/hdfs/src/sink.rs:
crates/hdfs/src/store.rs:
