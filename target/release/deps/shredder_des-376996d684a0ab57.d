/root/repo/target/release/deps/shredder_des-376996d684a0ab57.d: crates/des/src/lib.rs crates/des/src/channel.rs crates/des/src/engine.rs crates/des/src/resources.rs crates/des/src/stats.rs crates/des/src/time.rs

/root/repo/target/release/deps/shredder_des-376996d684a0ab57: crates/des/src/lib.rs crates/des/src/channel.rs crates/des/src/engine.rs crates/des/src/resources.rs crates/des/src/stats.rs crates/des/src/time.rs

crates/des/src/lib.rs:
crates/des/src/channel.rs:
crates/des/src/engine.rs:
crates/des/src/resources.rs:
crates/des/src/stats.rs:
crates/des/src/time.rs:
