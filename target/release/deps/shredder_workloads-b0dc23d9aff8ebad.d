/root/repo/target/release/deps/shredder_workloads-b0dc23d9aff8ebad.d: crates/workloads/src/lib.rs crates/workloads/src/bytes.rs crates/workloads/src/mutate.rs crates/workloads/src/text.rs crates/workloads/src/vmimage.rs

/root/repo/target/release/deps/libshredder_workloads-b0dc23d9aff8ebad.rlib: crates/workloads/src/lib.rs crates/workloads/src/bytes.rs crates/workloads/src/mutate.rs crates/workloads/src/text.rs crates/workloads/src/vmimage.rs

/root/repo/target/release/deps/libshredder_workloads-b0dc23d9aff8ebad.rmeta: crates/workloads/src/lib.rs crates/workloads/src/bytes.rs crates/workloads/src/mutate.rs crates/workloads/src/text.rs crates/workloads/src/vmimage.rs

crates/workloads/src/lib.rs:
crates/workloads/src/bytes.rs:
crates/workloads/src/mutate.rs:
crates/workloads/src/text.rs:
crates/workloads/src/vmimage.rs:
