/root/repo/target/release/deps/fig12_throughput-d0dadccdb4858439.d: crates/bench/benches/fig12_throughput.rs

/root/repo/target/release/deps/fig12_throughput-d0dadccdb4858439: crates/bench/benches/fig12_throughput.rs

crates/bench/benches/fig12_throughput.rs:
