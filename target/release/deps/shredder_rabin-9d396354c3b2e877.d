/root/repo/target/release/deps/shredder_rabin-9d396354c3b2e877.d: crates/rabin/src/lib.rs crates/rabin/src/chunker.rs crates/rabin/src/fixed.rs crates/rabin/src/parallel.rs crates/rabin/src/poly.rs crates/rabin/src/skip.rs crates/rabin/src/tables.rs

/root/repo/target/release/deps/shredder_rabin-9d396354c3b2e877: crates/rabin/src/lib.rs crates/rabin/src/chunker.rs crates/rabin/src/fixed.rs crates/rabin/src/parallel.rs crates/rabin/src/poly.rs crates/rabin/src/skip.rs crates/rabin/src/tables.rs

crates/rabin/src/lib.rs:
crates/rabin/src/chunker.rs:
crates/rabin/src/fixed.rs:
crates/rabin/src/parallel.rs:
crates/rabin/src/poly.rs:
crates/rabin/src/skip.rs:
crates/rabin/src/tables.rs:
