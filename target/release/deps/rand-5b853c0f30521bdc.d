/root/repo/target/release/deps/rand-5b853c0f30521bdc.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-5b853c0f30521bdc.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-5b853c0f30521bdc.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
