/root/repo/target/release/deps/shredder_backup-d5ef7af0d56754d4.d: crates/backup/src/lib.rs crates/backup/src/config.rs crates/backup/src/index.rs crates/backup/src/server.rs crates/backup/src/site.rs

/root/repo/target/release/deps/shredder_backup-d5ef7af0d56754d4: crates/backup/src/lib.rs crates/backup/src/config.rs crates/backup/src/index.rs crates/backup/src/server.rs crates/backup/src/site.rs

crates/backup/src/lib.rs:
crates/backup/src/config.rs:
crates/backup/src/index.rs:
crates/backup/src/server.rs:
crates/backup/src/site.rs:
