/root/repo/target/release/deps/shredder_backup-167f1ffe052a4932.d: crates/backup/src/lib.rs crates/backup/src/config.rs crates/backup/src/index.rs crates/backup/src/server.rs crates/backup/src/site.rs

/root/repo/target/release/deps/libshredder_backup-167f1ffe052a4932.rlib: crates/backup/src/lib.rs crates/backup/src/config.rs crates/backup/src/index.rs crates/backup/src/server.rs crates/backup/src/site.rs

/root/repo/target/release/deps/libshredder_backup-167f1ffe052a4932.rmeta: crates/backup/src/lib.rs crates/backup/src/config.rs crates/backup/src/index.rs crates/backup/src/server.rs crates/backup/src/site.rs

crates/backup/src/lib.rs:
crates/backup/src/config.rs:
crates/backup/src/index.rs:
crates/backup/src/server.rs:
crates/backup/src/site.rs:
