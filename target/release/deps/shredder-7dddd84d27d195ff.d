/root/repo/target/release/deps/shredder-7dddd84d27d195ff.d: src/lib.rs

/root/repo/target/release/deps/libshredder-7dddd84d27d195ff.rlib: src/lib.rs

/root/repo/target/release/deps/libshredder-7dddd84d27d195ff.rmeta: src/lib.rs

src/lib.rs:
