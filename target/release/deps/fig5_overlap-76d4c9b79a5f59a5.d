/root/repo/target/release/deps/fig5_overlap-76d4c9b79a5f59a5.d: crates/bench/benches/fig5_overlap.rs

/root/repo/target/release/deps/fig5_overlap-76d4c9b79a5f59a5: crates/bench/benches/fig5_overlap.rs

crates/bench/benches/fig5_overlap.rs:
