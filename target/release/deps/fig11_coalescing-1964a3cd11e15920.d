/root/repo/target/release/deps/fig11_coalescing-1964a3cd11e15920.d: crates/bench/benches/fig11_coalescing.rs

/root/repo/target/release/deps/fig11_coalescing-1964a3cd11e15920: crates/bench/benches/fig11_coalescing.rs

crates/bench/benches/fig11_coalescing.rs:
