/root/repo/target/release/deps/proptest-4c77e59de9366653.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/proptest-4c77e59de9366653: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
