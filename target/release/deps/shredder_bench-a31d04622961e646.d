/root/repo/target/release/deps/shredder_bench-a31d04622961e646.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libshredder_bench-a31d04622961e646.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libshredder_bench-a31d04622961e646.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
