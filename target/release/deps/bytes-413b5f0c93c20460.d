/root/repo/target/release/deps/bytes-413b5f0c93c20460.d: vendor/bytes/src/lib.rs

/root/repo/target/release/deps/bytes-413b5f0c93c20460: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
