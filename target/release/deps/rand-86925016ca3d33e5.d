/root/repo/target/release/deps/rand-86925016ca3d33e5.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/rand-86925016ca3d33e5: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
