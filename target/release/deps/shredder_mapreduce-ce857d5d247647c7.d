/root/repo/target/release/deps/shredder_mapreduce-ce857d5d247647c7.d: crates/mapreduce/src/lib.rs crates/mapreduce/src/apps/mod.rs crates/mapreduce/src/apps/cooccurrence.rs crates/mapreduce/src/apps/kmeans.rs crates/mapreduce/src/apps/wordcount.rs crates/mapreduce/src/cluster.rs crates/mapreduce/src/job.rs crates/mapreduce/src/memo.rs crates/mapreduce/src/runner.rs

/root/repo/target/release/deps/libshredder_mapreduce-ce857d5d247647c7.rlib: crates/mapreduce/src/lib.rs crates/mapreduce/src/apps/mod.rs crates/mapreduce/src/apps/cooccurrence.rs crates/mapreduce/src/apps/kmeans.rs crates/mapreduce/src/apps/wordcount.rs crates/mapreduce/src/cluster.rs crates/mapreduce/src/job.rs crates/mapreduce/src/memo.rs crates/mapreduce/src/runner.rs

/root/repo/target/release/deps/libshredder_mapreduce-ce857d5d247647c7.rmeta: crates/mapreduce/src/lib.rs crates/mapreduce/src/apps/mod.rs crates/mapreduce/src/apps/cooccurrence.rs crates/mapreduce/src/apps/kmeans.rs crates/mapreduce/src/apps/wordcount.rs crates/mapreduce/src/cluster.rs crates/mapreduce/src/job.rs crates/mapreduce/src/memo.rs crates/mapreduce/src/runner.rs

crates/mapreduce/src/lib.rs:
crates/mapreduce/src/apps/mod.rs:
crates/mapreduce/src/apps/cooccurrence.rs:
crates/mapreduce/src/apps/kmeans.rs:
crates/mapreduce/src/apps/wordcount.rs:
crates/mapreduce/src/cluster.rs:
crates/mapreduce/src/job.rs:
crates/mapreduce/src/memo.rs:
crates/mapreduce/src/runner.rs:
