/root/repo/target/release/deps/sink_pipeline-8736bdd185421cb5.d: tests/sink_pipeline.rs

/root/repo/target/release/deps/sink_pipeline-8736bdd185421cb5: tests/sink_pipeline.rs

tests/sink_pipeline.rs:
