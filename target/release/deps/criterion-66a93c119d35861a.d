/root/repo/target/release/deps/criterion-66a93c119d35861a.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/criterion-66a93c119d35861a: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
