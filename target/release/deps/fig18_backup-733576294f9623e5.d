/root/repo/target/release/deps/fig18_backup-733576294f9623e5.d: crates/bench/benches/fig18_backup.rs

/root/repo/target/release/deps/fig18_backup-733576294f9623e5: crates/bench/benches/fig18_backup.rs

crates/bench/benches/fig18_backup.rs:
