/root/repo/target/release/deps/ablation_design_choices-7a39a686cea147e6.d: crates/bench/benches/ablation_design_choices.rs

/root/repo/target/release/deps/ablation_design_choices-7a39a686cea147e6: crates/bench/benches/ablation_design_choices.rs

crates/bench/benches/ablation_design_choices.rs:
