/root/repo/target/release/deps/multi_stream-cf61fdaa2d5b2937.d: tests/multi_stream.rs

/root/repo/target/release/deps/multi_stream-cf61fdaa2d5b2937: tests/multi_stream.rs

tests/multi_stream.rs:
