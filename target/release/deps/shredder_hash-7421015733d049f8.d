/root/repo/target/release/deps/shredder_hash-7421015733d049f8.d: crates/hash/src/lib.rs crates/hash/src/digest.rs crates/hash/src/fnv.rs crates/hash/src/sha256.rs

/root/repo/target/release/deps/shredder_hash-7421015733d049f8: crates/hash/src/lib.rs crates/hash/src/digest.rs crates/hash/src/fnv.rs crates/hash/src/sha256.rs

crates/hash/src/lib.rs:
crates/hash/src/digest.rs:
crates/hash/src/fnv.rs:
crates/hash/src/sha256.rs:
