/root/repo/target/release/deps/shredder_mapreduce-bbf1ed4b80e3144f.d: crates/mapreduce/src/lib.rs crates/mapreduce/src/apps/mod.rs crates/mapreduce/src/apps/cooccurrence.rs crates/mapreduce/src/apps/kmeans.rs crates/mapreduce/src/apps/wordcount.rs crates/mapreduce/src/cluster.rs crates/mapreduce/src/job.rs crates/mapreduce/src/memo.rs crates/mapreduce/src/runner.rs

/root/repo/target/release/deps/shredder_mapreduce-bbf1ed4b80e3144f: crates/mapreduce/src/lib.rs crates/mapreduce/src/apps/mod.rs crates/mapreduce/src/apps/cooccurrence.rs crates/mapreduce/src/apps/kmeans.rs crates/mapreduce/src/apps/wordcount.rs crates/mapreduce/src/cluster.rs crates/mapreduce/src/job.rs crates/mapreduce/src/memo.rs crates/mapreduce/src/runner.rs

crates/mapreduce/src/lib.rs:
crates/mapreduce/src/apps/mod.rs:
crates/mapreduce/src/apps/cooccurrence.rs:
crates/mapreduce/src/apps/kmeans.rs:
crates/mapreduce/src/apps/wordcount.rs:
crates/mapreduce/src/cluster.rs:
crates/mapreduce/src/job.rs:
crates/mapreduce/src/memo.rs:
crates/mapreduce/src/runner.rs:
