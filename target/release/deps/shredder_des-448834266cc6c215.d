/root/repo/target/release/deps/shredder_des-448834266cc6c215.d: crates/des/src/lib.rs crates/des/src/channel.rs crates/des/src/engine.rs crates/des/src/resources.rs crates/des/src/stats.rs crates/des/src/time.rs

/root/repo/target/release/deps/libshredder_des-448834266cc6c215.rlib: crates/des/src/lib.rs crates/des/src/channel.rs crates/des/src/engine.rs crates/des/src/resources.rs crates/des/src/stats.rs crates/des/src/time.rs

/root/repo/target/release/deps/libshredder_des-448834266cc6c215.rmeta: crates/des/src/lib.rs crates/des/src/channel.rs crates/des/src/engine.rs crates/des/src/resources.rs crates/des/src/stats.rs crates/des/src/time.rs

crates/des/src/lib.rs:
crates/des/src/channel.rs:
crates/des/src/engine.rs:
crates/des/src/resources.rs:
crates/des/src/stats.rs:
crates/des/src/time.rs:
