/root/repo/target/release/deps/shredder_hash-7a53623a122a9e45.d: crates/hash/src/lib.rs crates/hash/src/digest.rs crates/hash/src/fnv.rs crates/hash/src/sha256.rs

/root/repo/target/release/deps/libshredder_hash-7a53623a122a9e45.rlib: crates/hash/src/lib.rs crates/hash/src/digest.rs crates/hash/src/fnv.rs crates/hash/src/sha256.rs

/root/repo/target/release/deps/libshredder_hash-7a53623a122a9e45.rmeta: crates/hash/src/lib.rs crates/hash/src/digest.rs crates/hash/src/fnv.rs crates/hash/src/sha256.rs

crates/hash/src/lib.rs:
crates/hash/src/digest.rs:
crates/hash/src/fnv.rs:
crates/hash/src/sha256.rs:
