/root/repo/target/release/deps/shredder_workloads-81f255ffaf7279c3.d: crates/workloads/src/lib.rs crates/workloads/src/bytes.rs crates/workloads/src/mutate.rs crates/workloads/src/text.rs crates/workloads/src/vmimage.rs

/root/repo/target/release/deps/shredder_workloads-81f255ffaf7279c3: crates/workloads/src/lib.rs crates/workloads/src/bytes.rs crates/workloads/src/mutate.rs crates/workloads/src/text.rs crates/workloads/src/vmimage.rs

crates/workloads/src/lib.rs:
crates/workloads/src/bytes.rs:
crates/workloads/src/mutate.rs:
crates/workloads/src/text.rs:
crates/workloads/src/vmimage.rs:
