/root/repo/target/release/deps/experiment_shapes-33a0dd325fb6e07f.d: tests/experiment_shapes.rs

/root/repo/target/release/deps/experiment_shapes-33a0dd325fb6e07f: tests/experiment_shapes.rs

tests/experiment_shapes.rs:
