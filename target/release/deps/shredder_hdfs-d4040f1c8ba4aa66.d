/root/repo/target/release/deps/shredder_hdfs-d4040f1c8ba4aa66.d: crates/hdfs/src/lib.rs crates/hdfs/src/fs.rs crates/hdfs/src/input_format.rs crates/hdfs/src/namenode.rs crates/hdfs/src/sink.rs crates/hdfs/src/store.rs

/root/repo/target/release/deps/libshredder_hdfs-d4040f1c8ba4aa66.rlib: crates/hdfs/src/lib.rs crates/hdfs/src/fs.rs crates/hdfs/src/input_format.rs crates/hdfs/src/namenode.rs crates/hdfs/src/sink.rs crates/hdfs/src/store.rs

/root/repo/target/release/deps/libshredder_hdfs-d4040f1c8ba4aa66.rmeta: crates/hdfs/src/lib.rs crates/hdfs/src/fs.rs crates/hdfs/src/input_format.rs crates/hdfs/src/namenode.rs crates/hdfs/src/sink.rs crates/hdfs/src/store.rs

crates/hdfs/src/lib.rs:
crates/hdfs/src/fs.rs:
crates/hdfs/src/input_format.rs:
crates/hdfs/src/namenode.rs:
crates/hdfs/src/sink.rs:
crates/hdfs/src/store.rs:
