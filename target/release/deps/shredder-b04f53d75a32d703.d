/root/repo/target/release/deps/shredder-b04f53d75a32d703.d: src/lib.rs

/root/repo/target/release/deps/shredder-b04f53d75a32d703: src/lib.rs

src/lib.rs:
