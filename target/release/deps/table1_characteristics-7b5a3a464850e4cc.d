/root/repo/target/release/deps/table1_characteristics-7b5a3a464850e4cc.d: crates/bench/benches/table1_characteristics.rs

/root/repo/target/release/deps/table1_characteristics-7b5a3a464850e4cc: crates/bench/benches/table1_characteristics.rs

crates/bench/benches/table1_characteristics.rs:
