/root/repo/target/release/deps/shredder_gpu-f3ad7ffa6e2aa5a7.d: crates/gpu/src/lib.rs crates/gpu/src/calibration.rs crates/gpu/src/coalesce.rs crates/gpu/src/config.rs crates/gpu/src/device.rs crates/gpu/src/dma.rs crates/gpu/src/dram.rs crates/gpu/src/executor.rs crates/gpu/src/hostmem.rs crates/gpu/src/kernel.rs crates/gpu/src/simt.rs crates/gpu/src/stream.rs

/root/repo/target/release/deps/shredder_gpu-f3ad7ffa6e2aa5a7: crates/gpu/src/lib.rs crates/gpu/src/calibration.rs crates/gpu/src/coalesce.rs crates/gpu/src/config.rs crates/gpu/src/device.rs crates/gpu/src/dma.rs crates/gpu/src/dram.rs crates/gpu/src/executor.rs crates/gpu/src/hostmem.rs crates/gpu/src/kernel.rs crates/gpu/src/simt.rs crates/gpu/src/stream.rs

crates/gpu/src/lib.rs:
crates/gpu/src/calibration.rs:
crates/gpu/src/coalesce.rs:
crates/gpu/src/config.rs:
crates/gpu/src/device.rs:
crates/gpu/src/dma.rs:
crates/gpu/src/dram.rs:
crates/gpu/src/executor.rs:
crates/gpu/src/hostmem.rs:
crates/gpu/src/kernel.rs:
crates/gpu/src/simt.rs:
crates/gpu/src/stream.rs:
