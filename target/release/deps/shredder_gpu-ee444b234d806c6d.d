/root/repo/target/release/deps/shredder_gpu-ee444b234d806c6d.d: crates/gpu/src/lib.rs crates/gpu/src/calibration.rs crates/gpu/src/coalesce.rs crates/gpu/src/config.rs crates/gpu/src/device.rs crates/gpu/src/dma.rs crates/gpu/src/dram.rs crates/gpu/src/executor.rs crates/gpu/src/hostmem.rs crates/gpu/src/kernel.rs crates/gpu/src/simt.rs crates/gpu/src/stream.rs

/root/repo/target/release/deps/libshredder_gpu-ee444b234d806c6d.rlib: crates/gpu/src/lib.rs crates/gpu/src/calibration.rs crates/gpu/src/coalesce.rs crates/gpu/src/config.rs crates/gpu/src/device.rs crates/gpu/src/dma.rs crates/gpu/src/dram.rs crates/gpu/src/executor.rs crates/gpu/src/hostmem.rs crates/gpu/src/kernel.rs crates/gpu/src/simt.rs crates/gpu/src/stream.rs

/root/repo/target/release/deps/libshredder_gpu-ee444b234d806c6d.rmeta: crates/gpu/src/lib.rs crates/gpu/src/calibration.rs crates/gpu/src/coalesce.rs crates/gpu/src/config.rs crates/gpu/src/device.rs crates/gpu/src/dma.rs crates/gpu/src/dram.rs crates/gpu/src/executor.rs crates/gpu/src/hostmem.rs crates/gpu/src/kernel.rs crates/gpu/src/simt.rs crates/gpu/src/stream.rs

crates/gpu/src/lib.rs:
crates/gpu/src/calibration.rs:
crates/gpu/src/coalesce.rs:
crates/gpu/src/config.rs:
crates/gpu/src/device.rs:
crates/gpu/src/dma.rs:
crates/gpu/src/dram.rs:
crates/gpu/src/executor.rs:
crates/gpu/src/hostmem.rs:
crates/gpu/src/kernel.rs:
crates/gpu/src/simt.rs:
crates/gpu/src/stream.rs:
