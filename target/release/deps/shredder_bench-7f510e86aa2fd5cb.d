/root/repo/target/release/deps/shredder_bench-7f510e86aa2fd5cb.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/shredder_bench-7f510e86aa2fd5cb: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
