/root/repo/target/release/deps/fig9_pipeline-349a5b08478b567d.d: crates/bench/benches/fig9_pipeline.rs

/root/repo/target/release/deps/fig9_pipeline-349a5b08478b567d: crates/bench/benches/fig9_pipeline.rs

crates/bench/benches/fig9_pipeline.rs:
