/root/repo/target/release/deps/fig12_throughput-99f98f1dd38dd922.d: crates/bench/benches/fig12_throughput.rs

/root/repo/target/release/deps/fig12_throughput-99f98f1dd38dd922: crates/bench/benches/fig12_throughput.rs

crates/bench/benches/fig12_throughput.rs:
