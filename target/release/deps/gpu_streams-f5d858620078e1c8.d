/root/repo/target/release/deps/gpu_streams-f5d858620078e1c8.d: tests/gpu_streams.rs

/root/repo/target/release/deps/gpu_streams-f5d858620078e1c8: tests/gpu_streams.rs

tests/gpu_streams.rs:
