/root/repo/target/release/deps/fig3_bandwidth-da8d49d8291aebf7.d: crates/bench/benches/fig3_bandwidth.rs

/root/repo/target/release/deps/fig3_bandwidth-da8d49d8291aebf7: crates/bench/benches/fig3_bandwidth.rs

crates/bench/benches/fig3_bandwidth.rs:
