/root/repo/target/release/deps/multi_tenant-f7fdf862c0553819.d: crates/bench/benches/multi_tenant.rs

/root/repo/target/release/deps/multi_tenant-f7fdf862c0553819: crates/bench/benches/multi_tenant.rs

crates/bench/benches/multi_tenant.rs:
