/root/repo/target/release/deps/fig9_pipeline-7a3b463d188ae479.d: crates/bench/benches/fig9_pipeline.rs

/root/repo/target/release/deps/fig9_pipeline-7a3b463d188ae479: crates/bench/benches/fig9_pipeline.rs

crates/bench/benches/fig9_pipeline.rs:
