/root/repo/target/release/deps/serde-138c84a31cc19923.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/serde-138c84a31cc19923: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
