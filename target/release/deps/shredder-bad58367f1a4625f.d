/root/repo/target/release/deps/shredder-bad58367f1a4625f.d: src/lib.rs

/root/repo/target/release/deps/libshredder-bad58367f1a4625f.rlib: src/lib.rs

/root/repo/target/release/deps/libshredder-bad58367f1a4625f.rmeta: src/lib.rs

src/lib.rs:
