/root/repo/target/release/deps/fig18_backup-dd9198483d154280.d: crates/bench/benches/fig18_backup.rs

/root/repo/target/release/deps/fig18_backup-dd9198483d154280: crates/bench/benches/fig18_backup.rs

crates/bench/benches/fig18_backup.rs:
