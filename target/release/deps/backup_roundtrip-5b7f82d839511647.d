/root/repo/target/release/deps/backup_roundtrip-5b7f82d839511647.d: tests/backup_roundtrip.rs

/root/repo/target/release/deps/backup_roundtrip-5b7f82d839511647: tests/backup_roundtrip.rs

tests/backup_roundtrip.rs:
