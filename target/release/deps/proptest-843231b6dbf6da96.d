/root/repo/target/release/deps/proptest-843231b6dbf6da96.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-843231b6dbf6da96.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-843231b6dbf6da96.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
