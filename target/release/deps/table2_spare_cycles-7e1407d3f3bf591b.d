/root/repo/target/release/deps/table2_spare_cycles-7e1407d3f3bf591b.d: crates/bench/benches/table2_spare_cycles.rs

/root/repo/target/release/deps/table2_spare_cycles-7e1407d3f3bf591b: crates/bench/benches/table2_spare_cycles.rs

crates/bench/benches/table2_spare_cycles.rs:
