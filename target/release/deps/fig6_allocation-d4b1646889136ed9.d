/root/repo/target/release/deps/fig6_allocation-d4b1646889136ed9.d: crates/bench/benches/fig6_allocation.rs

/root/repo/target/release/deps/fig6_allocation-d4b1646889136ed9: crates/bench/benches/fig6_allocation.rs

crates/bench/benches/fig6_allocation.rs:
