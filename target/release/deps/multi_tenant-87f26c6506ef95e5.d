/root/repo/target/release/deps/multi_tenant-87f26c6506ef95e5.d: crates/bench/benches/multi_tenant.rs

/root/repo/target/release/deps/multi_tenant-87f26c6506ef95e5: crates/bench/benches/multi_tenant.rs

crates/bench/benches/multi_tenant.rs:
