/root/repo/target/release/deps/fig15_incremental-a3995ef343634e16.d: crates/bench/benches/fig15_incremental.rs

/root/repo/target/release/deps/fig15_incremental-a3995ef343634e16: crates/bench/benches/fig15_incremental.rs

crates/bench/benches/fig15_incremental.rs:
