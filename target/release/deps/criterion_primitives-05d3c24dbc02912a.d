/root/repo/target/release/deps/criterion_primitives-05d3c24dbc02912a.d: crates/bench/benches/criterion_primitives.rs

/root/repo/target/release/deps/criterion_primitives-05d3c24dbc02912a: crates/bench/benches/criterion_primitives.rs

crates/bench/benches/criterion_primitives.rs:
