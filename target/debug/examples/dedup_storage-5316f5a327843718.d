/root/repo/target/debug/examples/dedup_storage-5316f5a327843718.d: examples/dedup_storage.rs Cargo.toml

/root/repo/target/debug/examples/libdedup_storage-5316f5a327843718.rmeta: examples/dedup_storage.rs Cargo.toml

examples/dedup_storage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
