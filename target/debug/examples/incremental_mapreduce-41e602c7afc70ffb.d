/root/repo/target/debug/examples/incremental_mapreduce-41e602c7afc70ffb.d: examples/incremental_mapreduce.rs

/root/repo/target/debug/examples/incremental_mapreduce-41e602c7afc70ffb: examples/incremental_mapreduce.rs

examples/incremental_mapreduce.rs:
