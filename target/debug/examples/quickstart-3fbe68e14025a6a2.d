/root/repo/target/debug/examples/quickstart-3fbe68e14025a6a2.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-3fbe68e14025a6a2.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
