/root/repo/target/debug/examples/network_redundancy-c481a12d9cd2e21d.d: examples/network_redundancy.rs Cargo.toml

/root/repo/target/debug/examples/libnetwork_redundancy-c481a12d9cd2e21d.rmeta: examples/network_redundancy.rs Cargo.toml

examples/network_redundancy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
