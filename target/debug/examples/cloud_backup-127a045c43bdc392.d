/root/repo/target/debug/examples/cloud_backup-127a045c43bdc392.d: examples/cloud_backup.rs Cargo.toml

/root/repo/target/debug/examples/libcloud_backup-127a045c43bdc392.rmeta: examples/cloud_backup.rs Cargo.toml

examples/cloud_backup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
