/root/repo/target/debug/examples/incremental_mapreduce-2d3b426712f942d9.d: examples/incremental_mapreduce.rs Cargo.toml

/root/repo/target/debug/examples/libincremental_mapreduce-2d3b426712f942d9.rmeta: examples/incremental_mapreduce.rs Cargo.toml

examples/incremental_mapreduce.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
