/root/repo/target/debug/examples/cloud_backup-5b596f863d20d9d2.d: examples/cloud_backup.rs

/root/repo/target/debug/examples/cloud_backup-5b596f863d20d9d2: examples/cloud_backup.rs

examples/cloud_backup.rs:
