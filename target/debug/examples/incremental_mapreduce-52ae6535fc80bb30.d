/root/repo/target/debug/examples/incremental_mapreduce-52ae6535fc80bb30.d: examples/incremental_mapreduce.rs

/root/repo/target/debug/examples/incremental_mapreduce-52ae6535fc80bb30: examples/incremental_mapreduce.rs

examples/incremental_mapreduce.rs:
