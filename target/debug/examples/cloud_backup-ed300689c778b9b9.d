/root/repo/target/debug/examples/cloud_backup-ed300689c778b9b9.d: examples/cloud_backup.rs

/root/repo/target/debug/examples/cloud_backup-ed300689c778b9b9: examples/cloud_backup.rs

examples/cloud_backup.rs:
