/root/repo/target/debug/examples/dedup_storage-276c7b7275c87bc5.d: examples/dedup_storage.rs

/root/repo/target/debug/examples/dedup_storage-276c7b7275c87bc5: examples/dedup_storage.rs

examples/dedup_storage.rs:
