/root/repo/target/debug/examples/quickstart-1c98186f47aefd80.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-1c98186f47aefd80: examples/quickstart.rs

examples/quickstart.rs:
