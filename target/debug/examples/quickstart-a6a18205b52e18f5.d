/root/repo/target/debug/examples/quickstart-a6a18205b52e18f5.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-a6a18205b52e18f5: examples/quickstart.rs

examples/quickstart.rs:
