/root/repo/target/debug/examples/incremental_mapreduce-3bd3ac79a13137ea.d: examples/incremental_mapreduce.rs

/root/repo/target/debug/examples/incremental_mapreduce-3bd3ac79a13137ea: examples/incremental_mapreduce.rs

examples/incremental_mapreduce.rs:
