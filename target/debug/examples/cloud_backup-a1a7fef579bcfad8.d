/root/repo/target/debug/examples/cloud_backup-a1a7fef579bcfad8.d: examples/cloud_backup.rs Cargo.toml

/root/repo/target/debug/examples/libcloud_backup-a1a7fef579bcfad8.rmeta: examples/cloud_backup.rs Cargo.toml

examples/cloud_backup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
