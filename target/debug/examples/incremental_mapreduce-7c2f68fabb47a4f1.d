/root/repo/target/debug/examples/incremental_mapreduce-7c2f68fabb47a4f1.d: examples/incremental_mapreduce.rs Cargo.toml

/root/repo/target/debug/examples/libincremental_mapreduce-7c2f68fabb47a4f1.rmeta: examples/incremental_mapreduce.rs Cargo.toml

examples/incremental_mapreduce.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
