/root/repo/target/debug/examples/cloud_backup-0a6075fb5b0759d5.d: examples/cloud_backup.rs

/root/repo/target/debug/examples/cloud_backup-0a6075fb5b0759d5: examples/cloud_backup.rs

examples/cloud_backup.rs:
