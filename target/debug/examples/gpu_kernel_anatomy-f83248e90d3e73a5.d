/root/repo/target/debug/examples/gpu_kernel_anatomy-f83248e90d3e73a5.d: examples/gpu_kernel_anatomy.rs

/root/repo/target/debug/examples/gpu_kernel_anatomy-f83248e90d3e73a5: examples/gpu_kernel_anatomy.rs

examples/gpu_kernel_anatomy.rs:
