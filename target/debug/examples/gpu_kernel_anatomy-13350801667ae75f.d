/root/repo/target/debug/examples/gpu_kernel_anatomy-13350801667ae75f.d: examples/gpu_kernel_anatomy.rs

/root/repo/target/debug/examples/gpu_kernel_anatomy-13350801667ae75f: examples/gpu_kernel_anatomy.rs

examples/gpu_kernel_anatomy.rs:
