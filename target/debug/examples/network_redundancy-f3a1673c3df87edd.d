/root/repo/target/debug/examples/network_redundancy-f3a1673c3df87edd.d: examples/network_redundancy.rs

/root/repo/target/debug/examples/network_redundancy-f3a1673c3df87edd: examples/network_redundancy.rs

examples/network_redundancy.rs:
