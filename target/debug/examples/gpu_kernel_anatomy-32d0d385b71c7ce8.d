/root/repo/target/debug/examples/gpu_kernel_anatomy-32d0d385b71c7ce8.d: examples/gpu_kernel_anatomy.rs Cargo.toml

/root/repo/target/debug/examples/libgpu_kernel_anatomy-32d0d385b71c7ce8.rmeta: examples/gpu_kernel_anatomy.rs Cargo.toml

examples/gpu_kernel_anatomy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
