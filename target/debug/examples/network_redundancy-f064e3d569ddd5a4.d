/root/repo/target/debug/examples/network_redundancy-f064e3d569ddd5a4.d: examples/network_redundancy.rs

/root/repo/target/debug/examples/network_redundancy-f064e3d569ddd5a4: examples/network_redundancy.rs

examples/network_redundancy.rs:
