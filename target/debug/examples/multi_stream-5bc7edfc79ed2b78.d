/root/repo/target/debug/examples/multi_stream-5bc7edfc79ed2b78.d: examples/multi_stream.rs

/root/repo/target/debug/examples/multi_stream-5bc7edfc79ed2b78: examples/multi_stream.rs

examples/multi_stream.rs:
