/root/repo/target/debug/examples/dedup_storage-bcb9812eb6376e19.d: examples/dedup_storage.rs

/root/repo/target/debug/examples/dedup_storage-bcb9812eb6376e19: examples/dedup_storage.rs

examples/dedup_storage.rs:
