/root/repo/target/debug/examples/multi_stream-2ab676d49711d5a7.d: examples/multi_stream.rs

/root/repo/target/debug/examples/multi_stream-2ab676d49711d5a7: examples/multi_stream.rs

examples/multi_stream.rs:
