/root/repo/target/debug/examples/multi_stream-01b632cac7da4647.d: examples/multi_stream.rs Cargo.toml

/root/repo/target/debug/examples/libmulti_stream-01b632cac7da4647.rmeta: examples/multi_stream.rs Cargo.toml

examples/multi_stream.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
