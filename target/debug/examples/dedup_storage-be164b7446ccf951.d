/root/repo/target/debug/examples/dedup_storage-be164b7446ccf951.d: examples/dedup_storage.rs

/root/repo/target/debug/examples/dedup_storage-be164b7446ccf951: examples/dedup_storage.rs

examples/dedup_storage.rs:
