/root/repo/target/debug/examples/quickstart-448ac84459c3a815.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-448ac84459c3a815: examples/quickstart.rs

examples/quickstart.rs:
