/root/repo/target/debug/examples/network_redundancy-9f6c13c7d84be03a.d: examples/network_redundancy.rs Cargo.toml

/root/repo/target/debug/examples/libnetwork_redundancy-9f6c13c7d84be03a.rmeta: examples/network_redundancy.rs Cargo.toml

examples/network_redundancy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
