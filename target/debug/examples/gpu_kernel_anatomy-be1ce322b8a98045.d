/root/repo/target/debug/examples/gpu_kernel_anatomy-be1ce322b8a98045.d: examples/gpu_kernel_anatomy.rs

/root/repo/target/debug/examples/gpu_kernel_anatomy-be1ce322b8a98045: examples/gpu_kernel_anatomy.rs

examples/gpu_kernel_anatomy.rs:
