/root/repo/target/debug/examples/network_redundancy-21e8e389347a96cd.d: examples/network_redundancy.rs

/root/repo/target/debug/examples/network_redundancy-21e8e389347a96cd: examples/network_redundancy.rs

examples/network_redundancy.rs:
