/root/repo/target/debug/deps/prop-ef6c1d890acba502.d: crates/mapreduce/tests/prop.rs

/root/repo/target/debug/deps/prop-ef6c1d890acba502: crates/mapreduce/tests/prop.rs

crates/mapreduce/tests/prop.rs:
