/root/repo/target/debug/deps/fig12_throughput-e94643a105ea7607.d: crates/bench/benches/fig12_throughput.rs

/root/repo/target/debug/deps/fig12_throughput-e94643a105ea7607: crates/bench/benches/fig12_throughput.rs

crates/bench/benches/fig12_throughput.rs:
