/root/repo/target/debug/deps/backup_roundtrip-bdc72ae0411fa286.d: tests/backup_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libbackup_roundtrip-bdc72ae0411fa286.rmeta: tests/backup_roundtrip.rs Cargo.toml

tests/backup_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
