/root/repo/target/debug/deps/incremental_computation-041bd621472bc140.d: tests/incremental_computation.rs

/root/repo/target/debug/deps/incremental_computation-041bd621472bc140: tests/incremental_computation.rs

tests/incremental_computation.rs:
