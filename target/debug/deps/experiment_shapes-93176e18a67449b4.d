/root/repo/target/debug/deps/experiment_shapes-93176e18a67449b4.d: tests/experiment_shapes.rs

/root/repo/target/debug/deps/experiment_shapes-93176e18a67449b4: tests/experiment_shapes.rs

tests/experiment_shapes.rs:
