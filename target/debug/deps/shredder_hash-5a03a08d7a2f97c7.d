/root/repo/target/debug/deps/shredder_hash-5a03a08d7a2f97c7.d: crates/hash/src/lib.rs crates/hash/src/digest.rs crates/hash/src/fnv.rs crates/hash/src/sha256.rs

/root/repo/target/debug/deps/shredder_hash-5a03a08d7a2f97c7: crates/hash/src/lib.rs crates/hash/src/digest.rs crates/hash/src/fnv.rs crates/hash/src/sha256.rs

crates/hash/src/lib.rs:
crates/hash/src/digest.rs:
crates/hash/src/fnv.rs:
crates/hash/src/sha256.rs:
