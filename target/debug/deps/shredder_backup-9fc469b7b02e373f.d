/root/repo/target/debug/deps/shredder_backup-9fc469b7b02e373f.d: crates/backup/src/lib.rs crates/backup/src/config.rs crates/backup/src/index.rs crates/backup/src/server.rs crates/backup/src/site.rs

/root/repo/target/debug/deps/libshredder_backup-9fc469b7b02e373f.rlib: crates/backup/src/lib.rs crates/backup/src/config.rs crates/backup/src/index.rs crates/backup/src/server.rs crates/backup/src/site.rs

/root/repo/target/debug/deps/libshredder_backup-9fc469b7b02e373f.rmeta: crates/backup/src/lib.rs crates/backup/src/config.rs crates/backup/src/index.rs crates/backup/src/server.rs crates/backup/src/site.rs

crates/backup/src/lib.rs:
crates/backup/src/config.rs:
crates/backup/src/index.rs:
crates/backup/src/server.rs:
crates/backup/src/site.rs:
