/root/repo/target/debug/deps/shredder_bench-0182add9efd85105.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libshredder_bench-0182add9efd85105.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libshredder_bench-0182add9efd85105.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
