/root/repo/target/debug/deps/table1_characteristics-98eda85bb916bdc7.d: crates/bench/benches/table1_characteristics.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_characteristics-98eda85bb916bdc7.rmeta: crates/bench/benches/table1_characteristics.rs Cargo.toml

crates/bench/benches/table1_characteristics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
