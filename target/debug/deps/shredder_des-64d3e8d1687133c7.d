/root/repo/target/debug/deps/shredder_des-64d3e8d1687133c7.d: crates/des/src/lib.rs crates/des/src/channel.rs crates/des/src/engine.rs crates/des/src/resources.rs crates/des/src/stats.rs crates/des/src/time.rs

/root/repo/target/debug/deps/shredder_des-64d3e8d1687133c7: crates/des/src/lib.rs crates/des/src/channel.rs crates/des/src/engine.rs crates/des/src/resources.rs crates/des/src/stats.rs crates/des/src/time.rs

crates/des/src/lib.rs:
crates/des/src/channel.rs:
crates/des/src/engine.rs:
crates/des/src/resources.rs:
crates/des/src/stats.rs:
crates/des/src/time.rs:
