/root/repo/target/debug/deps/shredder_backup-7dacdbce27986bd4.d: crates/backup/src/lib.rs crates/backup/src/config.rs crates/backup/src/index.rs crates/backup/src/server.rs crates/backup/src/site.rs Cargo.toml

/root/repo/target/debug/deps/libshredder_backup-7dacdbce27986bd4.rmeta: crates/backup/src/lib.rs crates/backup/src/config.rs crates/backup/src/index.rs crates/backup/src/server.rs crates/backup/src/site.rs Cargo.toml

crates/backup/src/lib.rs:
crates/backup/src/config.rs:
crates/backup/src/index.rs:
crates/backup/src/server.rs:
crates/backup/src/site.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
