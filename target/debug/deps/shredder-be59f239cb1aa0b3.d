/root/repo/target/debug/deps/shredder-be59f239cb1aa0b3.d: src/lib.rs

/root/repo/target/debug/deps/libshredder-be59f239cb1aa0b3.rlib: src/lib.rs

/root/repo/target/debug/deps/libshredder-be59f239cb1aa0b3.rmeta: src/lib.rs

src/lib.rs:
