/root/repo/target/debug/deps/engine_equivalence-660a93a7e395c2d2.d: tests/engine_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libengine_equivalence-660a93a7e395c2d2.rmeta: tests/engine_equivalence.rs Cargo.toml

tests/engine_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
