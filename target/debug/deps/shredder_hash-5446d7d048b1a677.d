/root/repo/target/debug/deps/shredder_hash-5446d7d048b1a677.d: crates/hash/src/lib.rs crates/hash/src/digest.rs crates/hash/src/fnv.rs crates/hash/src/sha256.rs

/root/repo/target/debug/deps/libshredder_hash-5446d7d048b1a677.rlib: crates/hash/src/lib.rs crates/hash/src/digest.rs crates/hash/src/fnv.rs crates/hash/src/sha256.rs

/root/repo/target/debug/deps/libshredder_hash-5446d7d048b1a677.rmeta: crates/hash/src/lib.rs crates/hash/src/digest.rs crates/hash/src/fnv.rs crates/hash/src/sha256.rs

crates/hash/src/lib.rs:
crates/hash/src/digest.rs:
crates/hash/src/fnv.rs:
crates/hash/src/sha256.rs:
