/root/repo/target/debug/deps/rand-45f15563ca91c127.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-45f15563ca91c127.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
