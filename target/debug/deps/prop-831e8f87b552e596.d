/root/repo/target/debug/deps/prop-831e8f87b552e596.d: crates/core/tests/prop.rs

/root/repo/target/debug/deps/prop-831e8f87b552e596: crates/core/tests/prop.rs

crates/core/tests/prop.rs:
