/root/repo/target/debug/deps/incremental_computation-086397ee33fded23.d: tests/incremental_computation.rs Cargo.toml

/root/repo/target/debug/deps/libincremental_computation-086397ee33fded23.rmeta: tests/incremental_computation.rs Cargo.toml

tests/incremental_computation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
