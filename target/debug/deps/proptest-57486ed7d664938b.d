/root/repo/target/debug/deps/proptest-57486ed7d664938b.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-57486ed7d664938b: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
