/root/repo/target/debug/deps/fig5_overlap-87a1dac5a91acfa5.d: crates/bench/benches/fig5_overlap.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_overlap-87a1dac5a91acfa5.rmeta: crates/bench/benches/fig5_overlap.rs Cargo.toml

crates/bench/benches/fig5_overlap.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
