/root/repo/target/debug/deps/engine_equivalence-eea9325f560bf276.d: tests/engine_equivalence.rs

/root/repo/target/debug/deps/engine_equivalence-eea9325f560bf276: tests/engine_equivalence.rs

tests/engine_equivalence.rs:
