/root/repo/target/debug/deps/shredder_workloads-9fbf4358e51be111.d: crates/workloads/src/lib.rs crates/workloads/src/bytes.rs crates/workloads/src/mutate.rs crates/workloads/src/text.rs crates/workloads/src/vmimage.rs

/root/repo/target/debug/deps/libshredder_workloads-9fbf4358e51be111.rmeta: crates/workloads/src/lib.rs crates/workloads/src/bytes.rs crates/workloads/src/mutate.rs crates/workloads/src/text.rs crates/workloads/src/vmimage.rs

crates/workloads/src/lib.rs:
crates/workloads/src/bytes.rs:
crates/workloads/src/mutate.rs:
crates/workloads/src/text.rs:
crates/workloads/src/vmimage.rs:
