/root/repo/target/debug/deps/fig9_pipeline-d4513ec4ba2b7ac8.d: crates/bench/benches/fig9_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_pipeline-d4513ec4ba2b7ac8.rmeta: crates/bench/benches/fig9_pipeline.rs Cargo.toml

crates/bench/benches/fig9_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
