/root/repo/target/debug/deps/ablation_design_choices-b4abb2138bfc6592.d: crates/bench/benches/ablation_design_choices.rs

/root/repo/target/debug/deps/ablation_design_choices-b4abb2138bfc6592: crates/bench/benches/ablation_design_choices.rs

crates/bench/benches/ablation_design_choices.rs:
