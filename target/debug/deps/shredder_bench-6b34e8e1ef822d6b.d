/root/repo/target/debug/deps/shredder_bench-6b34e8e1ef822d6b.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/shredder_bench-6b34e8e1ef822d6b: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
