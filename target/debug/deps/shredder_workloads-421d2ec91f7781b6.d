/root/repo/target/debug/deps/shredder_workloads-421d2ec91f7781b6.d: crates/workloads/src/lib.rs crates/workloads/src/bytes.rs crates/workloads/src/mutate.rs crates/workloads/src/text.rs crates/workloads/src/vmimage.rs Cargo.toml

/root/repo/target/debug/deps/libshredder_workloads-421d2ec91f7781b6.rmeta: crates/workloads/src/lib.rs crates/workloads/src/bytes.rs crates/workloads/src/mutate.rs crates/workloads/src/text.rs crates/workloads/src/vmimage.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/bytes.rs:
crates/workloads/src/mutate.rs:
crates/workloads/src/text.rs:
crates/workloads/src/vmimage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
