/root/repo/target/debug/deps/shredder_mapreduce-fbbe141b0b89b2dd.d: crates/mapreduce/src/lib.rs crates/mapreduce/src/apps/mod.rs crates/mapreduce/src/apps/cooccurrence.rs crates/mapreduce/src/apps/kmeans.rs crates/mapreduce/src/apps/wordcount.rs crates/mapreduce/src/cluster.rs crates/mapreduce/src/job.rs crates/mapreduce/src/memo.rs crates/mapreduce/src/runner.rs

/root/repo/target/debug/deps/libshredder_mapreduce-fbbe141b0b89b2dd.rmeta: crates/mapreduce/src/lib.rs crates/mapreduce/src/apps/mod.rs crates/mapreduce/src/apps/cooccurrence.rs crates/mapreduce/src/apps/kmeans.rs crates/mapreduce/src/apps/wordcount.rs crates/mapreduce/src/cluster.rs crates/mapreduce/src/job.rs crates/mapreduce/src/memo.rs crates/mapreduce/src/runner.rs

crates/mapreduce/src/lib.rs:
crates/mapreduce/src/apps/mod.rs:
crates/mapreduce/src/apps/cooccurrence.rs:
crates/mapreduce/src/apps/kmeans.rs:
crates/mapreduce/src/apps/wordcount.rs:
crates/mapreduce/src/cluster.rs:
crates/mapreduce/src/job.rs:
crates/mapreduce/src/memo.rs:
crates/mapreduce/src/runner.rs:
