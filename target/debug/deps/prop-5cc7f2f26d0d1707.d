/root/repo/target/debug/deps/prop-5cc7f2f26d0d1707.d: crates/core/tests/prop.rs

/root/repo/target/debug/deps/prop-5cc7f2f26d0d1707: crates/core/tests/prop.rs

crates/core/tests/prop.rs:
