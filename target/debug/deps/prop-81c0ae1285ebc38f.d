/root/repo/target/debug/deps/prop-81c0ae1285ebc38f.d: crates/hash/tests/prop.rs

/root/repo/target/debug/deps/prop-81c0ae1285ebc38f: crates/hash/tests/prop.rs

crates/hash/tests/prop.rs:
