/root/repo/target/debug/deps/fig9_pipeline-9fd4f4e588ba58b7.d: crates/bench/benches/fig9_pipeline.rs

/root/repo/target/debug/deps/fig9_pipeline-9fd4f4e588ba58b7: crates/bench/benches/fig9_pipeline.rs

crates/bench/benches/fig9_pipeline.rs:
