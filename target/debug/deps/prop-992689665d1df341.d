/root/repo/target/debug/deps/prop-992689665d1df341.d: crates/mapreduce/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-992689665d1df341.rmeta: crates/mapreduce/tests/prop.rs Cargo.toml

crates/mapreduce/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
