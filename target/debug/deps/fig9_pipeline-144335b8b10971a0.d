/root/repo/target/debug/deps/fig9_pipeline-144335b8b10971a0.d: crates/bench/benches/fig9_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_pipeline-144335b8b10971a0.rmeta: crates/bench/benches/fig9_pipeline.rs Cargo.toml

crates/bench/benches/fig9_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
