/root/repo/target/debug/deps/prop-96f060166d9c19de.d: crates/mapreduce/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-96f060166d9c19de.rmeta: crates/mapreduce/tests/prop.rs Cargo.toml

crates/mapreduce/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
