/root/repo/target/debug/deps/prop-ac0a952f404bd06c.d: crates/gpu/tests/prop.rs

/root/repo/target/debug/deps/prop-ac0a952f404bd06c: crates/gpu/tests/prop.rs

crates/gpu/tests/prop.rs:
