/root/repo/target/debug/deps/table2_spare_cycles-216c098cb324f650.d: crates/bench/benches/table2_spare_cycles.rs

/root/repo/target/debug/deps/table2_spare_cycles-216c098cb324f650: crates/bench/benches/table2_spare_cycles.rs

crates/bench/benches/table2_spare_cycles.rs:
