/root/repo/target/debug/deps/fig6_allocation-5da393e49aff1a58.d: crates/bench/benches/fig6_allocation.rs

/root/repo/target/debug/deps/fig6_allocation-5da393e49aff1a58: crates/bench/benches/fig6_allocation.rs

crates/bench/benches/fig6_allocation.rs:
