/root/repo/target/debug/deps/shredder_hash-34078b7ba854dff5.d: crates/hash/src/lib.rs crates/hash/src/digest.rs crates/hash/src/fnv.rs crates/hash/src/sha256.rs

/root/repo/target/debug/deps/shredder_hash-34078b7ba854dff5: crates/hash/src/lib.rs crates/hash/src/digest.rs crates/hash/src/fnv.rs crates/hash/src/sha256.rs

crates/hash/src/lib.rs:
crates/hash/src/digest.rs:
crates/hash/src/fnv.rs:
crates/hash/src/sha256.rs:
