/root/repo/target/debug/deps/fig15_incremental-861ec8aad6916f95.d: crates/bench/benches/fig15_incremental.rs

/root/repo/target/debug/deps/fig15_incremental-861ec8aad6916f95: crates/bench/benches/fig15_incremental.rs

crates/bench/benches/fig15_incremental.rs:
