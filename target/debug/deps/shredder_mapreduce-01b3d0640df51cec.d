/root/repo/target/debug/deps/shredder_mapreduce-01b3d0640df51cec.d: crates/mapreduce/src/lib.rs crates/mapreduce/src/apps/mod.rs crates/mapreduce/src/apps/cooccurrence.rs crates/mapreduce/src/apps/kmeans.rs crates/mapreduce/src/apps/wordcount.rs crates/mapreduce/src/cluster.rs crates/mapreduce/src/job.rs crates/mapreduce/src/memo.rs crates/mapreduce/src/runner.rs

/root/repo/target/debug/deps/libshredder_mapreduce-01b3d0640df51cec.rlib: crates/mapreduce/src/lib.rs crates/mapreduce/src/apps/mod.rs crates/mapreduce/src/apps/cooccurrence.rs crates/mapreduce/src/apps/kmeans.rs crates/mapreduce/src/apps/wordcount.rs crates/mapreduce/src/cluster.rs crates/mapreduce/src/job.rs crates/mapreduce/src/memo.rs crates/mapreduce/src/runner.rs

/root/repo/target/debug/deps/libshredder_mapreduce-01b3d0640df51cec.rmeta: crates/mapreduce/src/lib.rs crates/mapreduce/src/apps/mod.rs crates/mapreduce/src/apps/cooccurrence.rs crates/mapreduce/src/apps/kmeans.rs crates/mapreduce/src/apps/wordcount.rs crates/mapreduce/src/cluster.rs crates/mapreduce/src/job.rs crates/mapreduce/src/memo.rs crates/mapreduce/src/runner.rs

crates/mapreduce/src/lib.rs:
crates/mapreduce/src/apps/mod.rs:
crates/mapreduce/src/apps/cooccurrence.rs:
crates/mapreduce/src/apps/kmeans.rs:
crates/mapreduce/src/apps/wordcount.rs:
crates/mapreduce/src/cluster.rs:
crates/mapreduce/src/job.rs:
crates/mapreduce/src/memo.rs:
crates/mapreduce/src/runner.rs:
