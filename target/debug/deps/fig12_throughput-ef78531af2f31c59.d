/root/repo/target/debug/deps/fig12_throughput-ef78531af2f31c59.d: crates/bench/benches/fig12_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_throughput-ef78531af2f31c59.rmeta: crates/bench/benches/fig12_throughput.rs Cargo.toml

crates/bench/benches/fig12_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
