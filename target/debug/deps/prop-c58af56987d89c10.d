/root/repo/target/debug/deps/prop-c58af56987d89c10.d: crates/des/tests/prop.rs

/root/repo/target/debug/deps/prop-c58af56987d89c10: crates/des/tests/prop.rs

crates/des/tests/prop.rs:
