/root/repo/target/debug/deps/gpu_streams-d7423943a013b58f.d: tests/gpu_streams.rs

/root/repo/target/debug/deps/gpu_streams-d7423943a013b58f: tests/gpu_streams.rs

tests/gpu_streams.rs:
