/root/repo/target/debug/deps/fig18_backup-c7612e42086200f8.d: crates/bench/benches/fig18_backup.rs

/root/repo/target/debug/deps/fig18_backup-c7612e42086200f8: crates/bench/benches/fig18_backup.rs

crates/bench/benches/fig18_backup.rs:
