/root/repo/target/debug/deps/shredder_core-6a840b9f7c64ccec.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/host_chunker.rs crates/core/src/pipeline.rs crates/core/src/report.rs crates/core/src/service.rs crates/core/src/session.rs crates/core/src/sink.rs crates/core/src/source.rs

/root/repo/target/debug/deps/libshredder_core-6a840b9f7c64ccec.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/host_chunker.rs crates/core/src/pipeline.rs crates/core/src/report.rs crates/core/src/service.rs crates/core/src/session.rs crates/core/src/sink.rs crates/core/src/source.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/engine.rs:
crates/core/src/error.rs:
crates/core/src/host_chunker.rs:
crates/core/src/pipeline.rs:
crates/core/src/report.rs:
crates/core/src/service.rs:
crates/core/src/session.rs:
crates/core/src/sink.rs:
crates/core/src/source.rs:
