/root/repo/target/debug/deps/engine_equivalence-e83a9ecf373a189f.d: tests/engine_equivalence.rs

/root/repo/target/debug/deps/engine_equivalence-e83a9ecf373a189f: tests/engine_equivalence.rs

tests/engine_equivalence.rs:
