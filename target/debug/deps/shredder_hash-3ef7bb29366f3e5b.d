/root/repo/target/debug/deps/shredder_hash-3ef7bb29366f3e5b.d: crates/hash/src/lib.rs crates/hash/src/digest.rs crates/hash/src/fnv.rs crates/hash/src/sha256.rs Cargo.toml

/root/repo/target/debug/deps/libshredder_hash-3ef7bb29366f3e5b.rmeta: crates/hash/src/lib.rs crates/hash/src/digest.rs crates/hash/src/fnv.rs crates/hash/src/sha256.rs Cargo.toml

crates/hash/src/lib.rs:
crates/hash/src/digest.rs:
crates/hash/src/fnv.rs:
crates/hash/src/sha256.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
