/root/repo/target/debug/deps/proptest-a0bf6f6d2da6d638.d: vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-a0bf6f6d2da6d638.rmeta: vendor/proptest/src/lib.rs Cargo.toml

vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
