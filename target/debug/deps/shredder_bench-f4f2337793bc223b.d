/root/repo/target/debug/deps/shredder_bench-f4f2337793bc223b.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/shredder_bench-f4f2337793bc223b: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
