/root/repo/target/debug/deps/prop-219dd9ef8622f0b6.d: crates/hash/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-219dd9ef8622f0b6.rmeta: crates/hash/tests/prop.rs Cargo.toml

crates/hash/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
