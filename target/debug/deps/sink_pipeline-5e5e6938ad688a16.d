/root/repo/target/debug/deps/sink_pipeline-5e5e6938ad688a16.d: tests/sink_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libsink_pipeline-5e5e6938ad688a16.rmeta: tests/sink_pipeline.rs Cargo.toml

tests/sink_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
