/root/repo/target/debug/deps/shredder_rabin-4551e1a6555f5711.d: crates/rabin/src/lib.rs crates/rabin/src/chunker.rs crates/rabin/src/fixed.rs crates/rabin/src/parallel.rs crates/rabin/src/poly.rs crates/rabin/src/skip.rs crates/rabin/src/tables.rs Cargo.toml

/root/repo/target/debug/deps/libshredder_rabin-4551e1a6555f5711.rmeta: crates/rabin/src/lib.rs crates/rabin/src/chunker.rs crates/rabin/src/fixed.rs crates/rabin/src/parallel.rs crates/rabin/src/poly.rs crates/rabin/src/skip.rs crates/rabin/src/tables.rs Cargo.toml

crates/rabin/src/lib.rs:
crates/rabin/src/chunker.rs:
crates/rabin/src/fixed.rs:
crates/rabin/src/parallel.rs:
crates/rabin/src/poly.rs:
crates/rabin/src/skip.rs:
crates/rabin/src/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
