/root/repo/target/debug/deps/incremental_computation-eb29a2a96300827f.d: tests/incremental_computation.rs

/root/repo/target/debug/deps/incremental_computation-eb29a2a96300827f: tests/incremental_computation.rs

tests/incremental_computation.rs:
