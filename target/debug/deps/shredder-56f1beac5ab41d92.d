/root/repo/target/debug/deps/shredder-56f1beac5ab41d92.d: src/lib.rs

/root/repo/target/debug/deps/shredder-56f1beac5ab41d92: src/lib.rs

src/lib.rs:
