/root/repo/target/debug/deps/multi_tenant-6c8e5d85755978c2.d: crates/bench/benches/multi_tenant.rs

/root/repo/target/debug/deps/multi_tenant-6c8e5d85755978c2: crates/bench/benches/multi_tenant.rs

crates/bench/benches/multi_tenant.rs:
