/root/repo/target/debug/deps/shredder_rabin-604be86f2254f13e.d: crates/rabin/src/lib.rs crates/rabin/src/chunker.rs crates/rabin/src/fixed.rs crates/rabin/src/parallel.rs crates/rabin/src/poly.rs crates/rabin/src/skip.rs crates/rabin/src/tables.rs

/root/repo/target/debug/deps/libshredder_rabin-604be86f2254f13e.rmeta: crates/rabin/src/lib.rs crates/rabin/src/chunker.rs crates/rabin/src/fixed.rs crates/rabin/src/parallel.rs crates/rabin/src/poly.rs crates/rabin/src/skip.rs crates/rabin/src/tables.rs

crates/rabin/src/lib.rs:
crates/rabin/src/chunker.rs:
crates/rabin/src/fixed.rs:
crates/rabin/src/parallel.rs:
crates/rabin/src/poly.rs:
crates/rabin/src/skip.rs:
crates/rabin/src/tables.rs:
