/root/repo/target/debug/deps/experiment_shapes-40af4ade15a3f649.d: tests/experiment_shapes.rs Cargo.toml

/root/repo/target/debug/deps/libexperiment_shapes-40af4ade15a3f649.rmeta: tests/experiment_shapes.rs Cargo.toml

tests/experiment_shapes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
