/root/repo/target/debug/deps/prop-91a07e037130644a.d: crates/rabin/tests/prop.rs

/root/repo/target/debug/deps/prop-91a07e037130644a: crates/rabin/tests/prop.rs

crates/rabin/tests/prop.rs:
