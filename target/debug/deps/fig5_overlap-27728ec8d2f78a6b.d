/root/repo/target/debug/deps/fig5_overlap-27728ec8d2f78a6b.d: crates/bench/benches/fig5_overlap.rs

/root/repo/target/debug/deps/fig5_overlap-27728ec8d2f78a6b: crates/bench/benches/fig5_overlap.rs

crates/bench/benches/fig5_overlap.rs:
