/root/repo/target/debug/deps/shredder_bench-25c77678bff49d73.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libshredder_bench-25c77678bff49d73.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
