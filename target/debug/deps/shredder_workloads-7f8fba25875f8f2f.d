/root/repo/target/debug/deps/shredder_workloads-7f8fba25875f8f2f.d: crates/workloads/src/lib.rs crates/workloads/src/bytes.rs crates/workloads/src/mutate.rs crates/workloads/src/text.rs crates/workloads/src/vmimage.rs

/root/repo/target/debug/deps/shredder_workloads-7f8fba25875f8f2f: crates/workloads/src/lib.rs crates/workloads/src/bytes.rs crates/workloads/src/mutate.rs crates/workloads/src/text.rs crates/workloads/src/vmimage.rs

crates/workloads/src/lib.rs:
crates/workloads/src/bytes.rs:
crates/workloads/src/mutate.rs:
crates/workloads/src/text.rs:
crates/workloads/src/vmimage.rs:
