/root/repo/target/debug/deps/shredder_backup-b3374e2ebc010da3.d: crates/backup/src/lib.rs crates/backup/src/config.rs crates/backup/src/index.rs crates/backup/src/server.rs crates/backup/src/site.rs

/root/repo/target/debug/deps/shredder_backup-b3374e2ebc010da3: crates/backup/src/lib.rs crates/backup/src/config.rs crates/backup/src/index.rs crates/backup/src/server.rs crates/backup/src/site.rs

crates/backup/src/lib.rs:
crates/backup/src/config.rs:
crates/backup/src/index.rs:
crates/backup/src/server.rs:
crates/backup/src/site.rs:
