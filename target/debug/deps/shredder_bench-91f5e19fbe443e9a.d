/root/repo/target/debug/deps/shredder_bench-91f5e19fbe443e9a.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libshredder_bench-91f5e19fbe443e9a.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libshredder_bench-91f5e19fbe443e9a.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
