/root/repo/target/debug/deps/engine_equivalence-26a1018db82ba9dc.d: tests/engine_equivalence.rs

/root/repo/target/debug/deps/engine_equivalence-26a1018db82ba9dc: tests/engine_equivalence.rs

tests/engine_equivalence.rs:
