/root/repo/target/debug/deps/ablation_design_choices-e721b4865fcd18ec.d: crates/bench/benches/ablation_design_choices.rs Cargo.toml

/root/repo/target/debug/deps/libablation_design_choices-e721b4865fcd18ec.rmeta: crates/bench/benches/ablation_design_choices.rs Cargo.toml

crates/bench/benches/ablation_design_choices.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
