/root/repo/target/debug/deps/prop-12126de01ae10d4b.d: crates/des/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-12126de01ae10d4b.rmeta: crates/des/tests/prop.rs Cargo.toml

crates/des/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
