/root/repo/target/debug/deps/experiment_shapes-b49124301e34ae28.d: tests/experiment_shapes.rs Cargo.toml

/root/repo/target/debug/deps/libexperiment_shapes-b49124301e34ae28.rmeta: tests/experiment_shapes.rs Cargo.toml

tests/experiment_shapes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
