/root/repo/target/debug/deps/shredder-abbebfab39096fb5.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libshredder-abbebfab39096fb5.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
