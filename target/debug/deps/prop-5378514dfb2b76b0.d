/root/repo/target/debug/deps/prop-5378514dfb2b76b0.d: crates/core/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-5378514dfb2b76b0.rmeta: crates/core/tests/prop.rs Cargo.toml

crates/core/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
