/root/repo/target/debug/deps/table2_spare_cycles-1916076dff520b45.d: crates/bench/benches/table2_spare_cycles.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_spare_cycles-1916076dff520b45.rmeta: crates/bench/benches/table2_spare_cycles.rs Cargo.toml

crates/bench/benches/table2_spare_cycles.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
