/root/repo/target/debug/deps/multi_stream-4ab660de4a2460e1.d: tests/multi_stream.rs Cargo.toml

/root/repo/target/debug/deps/libmulti_stream-4ab660de4a2460e1.rmeta: tests/multi_stream.rs Cargo.toml

tests/multi_stream.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
