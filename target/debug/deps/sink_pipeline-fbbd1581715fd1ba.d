/root/repo/target/debug/deps/sink_pipeline-fbbd1581715fd1ba.d: tests/sink_pipeline.rs

/root/repo/target/debug/deps/sink_pipeline-fbbd1581715fd1ba: tests/sink_pipeline.rs

tests/sink_pipeline.rs:
