/root/repo/target/debug/deps/shredder_hdfs-9b9c9355fb96ab23.d: crates/hdfs/src/lib.rs crates/hdfs/src/fs.rs crates/hdfs/src/input_format.rs crates/hdfs/src/namenode.rs crates/hdfs/src/sink.rs crates/hdfs/src/store.rs

/root/repo/target/debug/deps/libshredder_hdfs-9b9c9355fb96ab23.rmeta: crates/hdfs/src/lib.rs crates/hdfs/src/fs.rs crates/hdfs/src/input_format.rs crates/hdfs/src/namenode.rs crates/hdfs/src/sink.rs crates/hdfs/src/store.rs

crates/hdfs/src/lib.rs:
crates/hdfs/src/fs.rs:
crates/hdfs/src/input_format.rs:
crates/hdfs/src/namenode.rs:
crates/hdfs/src/sink.rs:
crates/hdfs/src/store.rs:
