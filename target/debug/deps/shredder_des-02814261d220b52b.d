/root/repo/target/debug/deps/shredder_des-02814261d220b52b.d: crates/des/src/lib.rs crates/des/src/channel.rs crates/des/src/engine.rs crates/des/src/resources.rs crates/des/src/stats.rs crates/des/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libshredder_des-02814261d220b52b.rmeta: crates/des/src/lib.rs crates/des/src/channel.rs crates/des/src/engine.rs crates/des/src/resources.rs crates/des/src/stats.rs crates/des/src/time.rs Cargo.toml

crates/des/src/lib.rs:
crates/des/src/channel.rs:
crates/des/src/engine.rs:
crates/des/src/resources.rs:
crates/des/src/stats.rs:
crates/des/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
