/root/repo/target/debug/deps/fig18_backup-36b73ef2bfdfcf57.d: crates/bench/benches/fig18_backup.rs Cargo.toml

/root/repo/target/debug/deps/libfig18_backup-36b73ef2bfdfcf57.rmeta: crates/bench/benches/fig18_backup.rs Cargo.toml

crates/bench/benches/fig18_backup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
