/root/repo/target/debug/deps/prop-2779cfefe7425b2b.d: crates/backup/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-2779cfefe7425b2b.rmeta: crates/backup/tests/prop.rs Cargo.toml

crates/backup/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
