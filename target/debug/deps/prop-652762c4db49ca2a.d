/root/repo/target/debug/deps/prop-652762c4db49ca2a.d: crates/mapreduce/tests/prop.rs

/root/repo/target/debug/deps/prop-652762c4db49ca2a: crates/mapreduce/tests/prop.rs

crates/mapreduce/tests/prop.rs:
