/root/repo/target/debug/deps/fig11_coalescing-60e925e8e59c02d4.d: crates/bench/benches/fig11_coalescing.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_coalescing-60e925e8e59c02d4.rmeta: crates/bench/benches/fig11_coalescing.rs Cargo.toml

crates/bench/benches/fig11_coalescing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
