/root/repo/target/debug/deps/proptest-444b8a5188b28851.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-444b8a5188b28851.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-444b8a5188b28851.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
