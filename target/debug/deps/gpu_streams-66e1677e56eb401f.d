/root/repo/target/debug/deps/gpu_streams-66e1677e56eb401f.d: tests/gpu_streams.rs Cargo.toml

/root/repo/target/debug/deps/libgpu_streams-66e1677e56eb401f.rmeta: tests/gpu_streams.rs Cargo.toml

tests/gpu_streams.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
