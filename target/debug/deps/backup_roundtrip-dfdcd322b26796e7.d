/root/repo/target/debug/deps/backup_roundtrip-dfdcd322b26796e7.d: tests/backup_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libbackup_roundtrip-dfdcd322b26796e7.rmeta: tests/backup_roundtrip.rs Cargo.toml

tests/backup_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
