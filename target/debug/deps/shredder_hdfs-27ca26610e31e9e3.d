/root/repo/target/debug/deps/shredder_hdfs-27ca26610e31e9e3.d: crates/hdfs/src/lib.rs crates/hdfs/src/fs.rs crates/hdfs/src/input_format.rs crates/hdfs/src/namenode.rs crates/hdfs/src/sink.rs crates/hdfs/src/store.rs

/root/repo/target/debug/deps/shredder_hdfs-27ca26610e31e9e3: crates/hdfs/src/lib.rs crates/hdfs/src/fs.rs crates/hdfs/src/input_format.rs crates/hdfs/src/namenode.rs crates/hdfs/src/sink.rs crates/hdfs/src/store.rs

crates/hdfs/src/lib.rs:
crates/hdfs/src/fs.rs:
crates/hdfs/src/input_format.rs:
crates/hdfs/src/namenode.rs:
crates/hdfs/src/sink.rs:
crates/hdfs/src/store.rs:
