/root/repo/target/debug/deps/shredder_core-40ff79746f7a3fff.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/host_chunker.rs crates/core/src/pipeline.rs crates/core/src/report.rs crates/core/src/service.rs crates/core/src/session.rs crates/core/src/sink.rs crates/core/src/source.rs

/root/repo/target/debug/deps/shredder_core-40ff79746f7a3fff: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/host_chunker.rs crates/core/src/pipeline.rs crates/core/src/report.rs crates/core/src/service.rs crates/core/src/session.rs crates/core/src/sink.rs crates/core/src/source.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/engine.rs:
crates/core/src/error.rs:
crates/core/src/host_chunker.rs:
crates/core/src/pipeline.rs:
crates/core/src/report.rs:
crates/core/src/service.rs:
crates/core/src/session.rs:
crates/core/src/sink.rs:
crates/core/src/source.rs:
