/root/repo/target/debug/deps/criterion_primitives-66f59361a8afe9e7.d: crates/bench/benches/criterion_primitives.rs

/root/repo/target/debug/deps/criterion_primitives-66f59361a8afe9e7: crates/bench/benches/criterion_primitives.rs

crates/bench/benches/criterion_primitives.rs:
