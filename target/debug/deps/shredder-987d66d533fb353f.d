/root/repo/target/debug/deps/shredder-987d66d533fb353f.d: src/lib.rs

/root/repo/target/debug/deps/shredder-987d66d533fb353f: src/lib.rs

src/lib.rs:
