/root/repo/target/debug/deps/multi_tenant-872e2440c9d2b13a.d: crates/bench/benches/multi_tenant.rs Cargo.toml

/root/repo/target/debug/deps/libmulti_tenant-872e2440c9d2b13a.rmeta: crates/bench/benches/multi_tenant.rs Cargo.toml

crates/bench/benches/multi_tenant.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
