/root/repo/target/debug/deps/backup_roundtrip-ddae13601a20bb74.d: tests/backup_roundtrip.rs

/root/repo/target/debug/deps/backup_roundtrip-ddae13601a20bb74: tests/backup_roundtrip.rs

tests/backup_roundtrip.rs:
