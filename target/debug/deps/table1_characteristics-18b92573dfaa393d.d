/root/repo/target/debug/deps/table1_characteristics-18b92573dfaa393d.d: crates/bench/benches/table1_characteristics.rs

/root/repo/target/debug/deps/table1_characteristics-18b92573dfaa393d: crates/bench/benches/table1_characteristics.rs

crates/bench/benches/table1_characteristics.rs:
