/root/repo/target/debug/deps/backup_roundtrip-5d515e17f9360b8f.d: tests/backup_roundtrip.rs

/root/repo/target/debug/deps/backup_roundtrip-5d515e17f9360b8f: tests/backup_roundtrip.rs

tests/backup_roundtrip.rs:
