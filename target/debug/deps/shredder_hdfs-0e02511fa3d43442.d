/root/repo/target/debug/deps/shredder_hdfs-0e02511fa3d43442.d: crates/hdfs/src/lib.rs crates/hdfs/src/fs.rs crates/hdfs/src/input_format.rs crates/hdfs/src/namenode.rs crates/hdfs/src/store.rs

/root/repo/target/debug/deps/libshredder_hdfs-0e02511fa3d43442.rlib: crates/hdfs/src/lib.rs crates/hdfs/src/fs.rs crates/hdfs/src/input_format.rs crates/hdfs/src/namenode.rs crates/hdfs/src/store.rs

/root/repo/target/debug/deps/libshredder_hdfs-0e02511fa3d43442.rmeta: crates/hdfs/src/lib.rs crates/hdfs/src/fs.rs crates/hdfs/src/input_format.rs crates/hdfs/src/namenode.rs crates/hdfs/src/store.rs

crates/hdfs/src/lib.rs:
crates/hdfs/src/fs.rs:
crates/hdfs/src/input_format.rs:
crates/hdfs/src/namenode.rs:
crates/hdfs/src/store.rs:
