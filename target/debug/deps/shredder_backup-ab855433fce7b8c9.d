/root/repo/target/debug/deps/shredder_backup-ab855433fce7b8c9.d: crates/backup/src/lib.rs crates/backup/src/config.rs crates/backup/src/index.rs crates/backup/src/server.rs crates/backup/src/site.rs

/root/repo/target/debug/deps/libshredder_backup-ab855433fce7b8c9.rlib: crates/backup/src/lib.rs crates/backup/src/config.rs crates/backup/src/index.rs crates/backup/src/server.rs crates/backup/src/site.rs

/root/repo/target/debug/deps/libshredder_backup-ab855433fce7b8c9.rmeta: crates/backup/src/lib.rs crates/backup/src/config.rs crates/backup/src/index.rs crates/backup/src/server.rs crates/backup/src/site.rs

crates/backup/src/lib.rs:
crates/backup/src/config.rs:
crates/backup/src/index.rs:
crates/backup/src/server.rs:
crates/backup/src/site.rs:
