/root/repo/target/debug/deps/serde-c0b067cebb44a5fa.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-c0b067cebb44a5fa.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
