/root/repo/target/debug/deps/prop-87c42063fe3aa6fc.d: crates/gpu/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-87c42063fe3aa6fc.rmeta: crates/gpu/tests/prop.rs Cargo.toml

crates/gpu/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
