/root/repo/target/debug/deps/shredder_mapreduce-9fcaf4d5edfc9811.d: crates/mapreduce/src/lib.rs crates/mapreduce/src/apps/mod.rs crates/mapreduce/src/apps/cooccurrence.rs crates/mapreduce/src/apps/kmeans.rs crates/mapreduce/src/apps/wordcount.rs crates/mapreduce/src/cluster.rs crates/mapreduce/src/job.rs crates/mapreduce/src/memo.rs crates/mapreduce/src/runner.rs Cargo.toml

/root/repo/target/debug/deps/libshredder_mapreduce-9fcaf4d5edfc9811.rmeta: crates/mapreduce/src/lib.rs crates/mapreduce/src/apps/mod.rs crates/mapreduce/src/apps/cooccurrence.rs crates/mapreduce/src/apps/kmeans.rs crates/mapreduce/src/apps/wordcount.rs crates/mapreduce/src/cluster.rs crates/mapreduce/src/job.rs crates/mapreduce/src/memo.rs crates/mapreduce/src/runner.rs Cargo.toml

crates/mapreduce/src/lib.rs:
crates/mapreduce/src/apps/mod.rs:
crates/mapreduce/src/apps/cooccurrence.rs:
crates/mapreduce/src/apps/kmeans.rs:
crates/mapreduce/src/apps/wordcount.rs:
crates/mapreduce/src/cluster.rs:
crates/mapreduce/src/job.rs:
crates/mapreduce/src/memo.rs:
crates/mapreduce/src/runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
