/root/repo/target/debug/deps/fig5_overlap-a99321cda84cd52d.d: crates/bench/benches/fig5_overlap.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_overlap-a99321cda84cd52d.rmeta: crates/bench/benches/fig5_overlap.rs Cargo.toml

crates/bench/benches/fig5_overlap.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
