/root/repo/target/debug/deps/prop-18fdbb9c8e49fa30.d: crates/gpu/tests/prop.rs

/root/repo/target/debug/deps/prop-18fdbb9c8e49fa30: crates/gpu/tests/prop.rs

crates/gpu/tests/prop.rs:
