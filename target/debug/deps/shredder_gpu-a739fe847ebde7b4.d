/root/repo/target/debug/deps/shredder_gpu-a739fe847ebde7b4.d: crates/gpu/src/lib.rs crates/gpu/src/calibration.rs crates/gpu/src/coalesce.rs crates/gpu/src/config.rs crates/gpu/src/device.rs crates/gpu/src/dma.rs crates/gpu/src/dram.rs crates/gpu/src/executor.rs crates/gpu/src/hostmem.rs crates/gpu/src/kernel.rs crates/gpu/src/simt.rs crates/gpu/src/stream.rs

/root/repo/target/debug/deps/libshredder_gpu-a739fe847ebde7b4.rmeta: crates/gpu/src/lib.rs crates/gpu/src/calibration.rs crates/gpu/src/coalesce.rs crates/gpu/src/config.rs crates/gpu/src/device.rs crates/gpu/src/dma.rs crates/gpu/src/dram.rs crates/gpu/src/executor.rs crates/gpu/src/hostmem.rs crates/gpu/src/kernel.rs crates/gpu/src/simt.rs crates/gpu/src/stream.rs

crates/gpu/src/lib.rs:
crates/gpu/src/calibration.rs:
crates/gpu/src/coalesce.rs:
crates/gpu/src/config.rs:
crates/gpu/src/device.rs:
crates/gpu/src/dma.rs:
crates/gpu/src/dram.rs:
crates/gpu/src/executor.rs:
crates/gpu/src/hostmem.rs:
crates/gpu/src/kernel.rs:
crates/gpu/src/simt.rs:
crates/gpu/src/stream.rs:
