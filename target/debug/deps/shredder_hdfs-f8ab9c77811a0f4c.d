/root/repo/target/debug/deps/shredder_hdfs-f8ab9c77811a0f4c.d: crates/hdfs/src/lib.rs crates/hdfs/src/fs.rs crates/hdfs/src/input_format.rs crates/hdfs/src/namenode.rs crates/hdfs/src/store.rs

/root/repo/target/debug/deps/shredder_hdfs-f8ab9c77811a0f4c: crates/hdfs/src/lib.rs crates/hdfs/src/fs.rs crates/hdfs/src/input_format.rs crates/hdfs/src/namenode.rs crates/hdfs/src/store.rs

crates/hdfs/src/lib.rs:
crates/hdfs/src/fs.rs:
crates/hdfs/src/input_format.rs:
crates/hdfs/src/namenode.rs:
crates/hdfs/src/store.rs:
