/root/repo/target/debug/deps/shredder-a414a1ef89a45f77.d: src/lib.rs

/root/repo/target/debug/deps/libshredder-a414a1ef89a45f77.rlib: src/lib.rs

/root/repo/target/debug/deps/libshredder-a414a1ef89a45f77.rmeta: src/lib.rs

src/lib.rs:
