/root/repo/target/debug/deps/shredder_des-be627601a5fa8cea.d: crates/des/src/lib.rs crates/des/src/channel.rs crates/des/src/engine.rs crates/des/src/resources.rs crates/des/src/stats.rs crates/des/src/time.rs

/root/repo/target/debug/deps/shredder_des-be627601a5fa8cea: crates/des/src/lib.rs crates/des/src/channel.rs crates/des/src/engine.rs crates/des/src/resources.rs crates/des/src/stats.rs crates/des/src/time.rs

crates/des/src/lib.rs:
crates/des/src/channel.rs:
crates/des/src/engine.rs:
crates/des/src/resources.rs:
crates/des/src/stats.rs:
crates/des/src/time.rs:
