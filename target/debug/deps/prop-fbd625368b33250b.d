/root/repo/target/debug/deps/prop-fbd625368b33250b.d: crates/backup/tests/prop.rs

/root/repo/target/debug/deps/prop-fbd625368b33250b: crates/backup/tests/prop.rs

crates/backup/tests/prop.rs:
