/root/repo/target/debug/deps/shredder-a80b1bad41a80fdf.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libshredder-a80b1bad41a80fdf.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
