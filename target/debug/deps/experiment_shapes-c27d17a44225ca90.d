/root/repo/target/debug/deps/experiment_shapes-c27d17a44225ca90.d: tests/experiment_shapes.rs

/root/repo/target/debug/deps/experiment_shapes-c27d17a44225ca90: tests/experiment_shapes.rs

tests/experiment_shapes.rs:
