/root/repo/target/debug/deps/prop-70e161803c93239b.d: crates/hash/tests/prop.rs

/root/repo/target/debug/deps/prop-70e161803c93239b: crates/hash/tests/prop.rs

crates/hash/tests/prop.rs:
