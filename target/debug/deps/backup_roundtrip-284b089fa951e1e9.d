/root/repo/target/debug/deps/backup_roundtrip-284b089fa951e1e9.d: tests/backup_roundtrip.rs

/root/repo/target/debug/deps/backup_roundtrip-284b089fa951e1e9: tests/backup_roundtrip.rs

tests/backup_roundtrip.rs:
