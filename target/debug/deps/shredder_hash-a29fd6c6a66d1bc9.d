/root/repo/target/debug/deps/shredder_hash-a29fd6c6a66d1bc9.d: crates/hash/src/lib.rs crates/hash/src/digest.rs crates/hash/src/fnv.rs crates/hash/src/sha256.rs

/root/repo/target/debug/deps/libshredder_hash-a29fd6c6a66d1bc9.rlib: crates/hash/src/lib.rs crates/hash/src/digest.rs crates/hash/src/fnv.rs crates/hash/src/sha256.rs

/root/repo/target/debug/deps/libshredder_hash-a29fd6c6a66d1bc9.rmeta: crates/hash/src/lib.rs crates/hash/src/digest.rs crates/hash/src/fnv.rs crates/hash/src/sha256.rs

crates/hash/src/lib.rs:
crates/hash/src/digest.rs:
crates/hash/src/fnv.rs:
crates/hash/src/sha256.rs:
