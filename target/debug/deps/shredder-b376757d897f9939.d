/root/repo/target/debug/deps/shredder-b376757d897f9939.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libshredder-b376757d897f9939.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
