/root/repo/target/debug/deps/shredder-9b1e876d06e369c3.d: src/lib.rs

/root/repo/target/debug/deps/shredder-9b1e876d06e369c3: src/lib.rs

src/lib.rs:
