/root/repo/target/debug/deps/shredder_des-7c589beb67e21a8b.d: crates/des/src/lib.rs crates/des/src/channel.rs crates/des/src/engine.rs crates/des/src/resources.rs crates/des/src/stats.rs crates/des/src/time.rs

/root/repo/target/debug/deps/libshredder_des-7c589beb67e21a8b.rmeta: crates/des/src/lib.rs crates/des/src/channel.rs crates/des/src/engine.rs crates/des/src/resources.rs crates/des/src/stats.rs crates/des/src/time.rs

crates/des/src/lib.rs:
crates/des/src/channel.rs:
crates/des/src/engine.rs:
crates/des/src/resources.rs:
crates/des/src/stats.rs:
crates/des/src/time.rs:
