/root/repo/target/debug/deps/engine_equivalence-aa24ea82eaf4d1ca.d: tests/engine_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libengine_equivalence-aa24ea82eaf4d1ca.rmeta: tests/engine_equivalence.rs Cargo.toml

tests/engine_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
