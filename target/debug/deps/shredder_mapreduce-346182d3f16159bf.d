/root/repo/target/debug/deps/shredder_mapreduce-346182d3f16159bf.d: crates/mapreduce/src/lib.rs crates/mapreduce/src/apps/mod.rs crates/mapreduce/src/apps/cooccurrence.rs crates/mapreduce/src/apps/kmeans.rs crates/mapreduce/src/apps/wordcount.rs crates/mapreduce/src/cluster.rs crates/mapreduce/src/job.rs crates/mapreduce/src/memo.rs crates/mapreduce/src/runner.rs

/root/repo/target/debug/deps/shredder_mapreduce-346182d3f16159bf: crates/mapreduce/src/lib.rs crates/mapreduce/src/apps/mod.rs crates/mapreduce/src/apps/cooccurrence.rs crates/mapreduce/src/apps/kmeans.rs crates/mapreduce/src/apps/wordcount.rs crates/mapreduce/src/cluster.rs crates/mapreduce/src/job.rs crates/mapreduce/src/memo.rs crates/mapreduce/src/runner.rs

crates/mapreduce/src/lib.rs:
crates/mapreduce/src/apps/mod.rs:
crates/mapreduce/src/apps/cooccurrence.rs:
crates/mapreduce/src/apps/kmeans.rs:
crates/mapreduce/src/apps/wordcount.rs:
crates/mapreduce/src/cluster.rs:
crates/mapreduce/src/job.rs:
crates/mapreduce/src/memo.rs:
crates/mapreduce/src/runner.rs:
