/root/repo/target/debug/deps/incremental_computation-ca46b8c18feb711d.d: tests/incremental_computation.rs

/root/repo/target/debug/deps/incremental_computation-ca46b8c18feb711d: tests/incremental_computation.rs

tests/incremental_computation.rs:
