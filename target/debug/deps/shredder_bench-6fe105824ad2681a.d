/root/repo/target/debug/deps/shredder_bench-6fe105824ad2681a.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libshredder_bench-6fe105824ad2681a.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
