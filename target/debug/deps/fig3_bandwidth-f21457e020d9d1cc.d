/root/repo/target/debug/deps/fig3_bandwidth-f21457e020d9d1cc.d: crates/bench/benches/fig3_bandwidth.rs

/root/repo/target/debug/deps/fig3_bandwidth-f21457e020d9d1cc: crates/bench/benches/fig3_bandwidth.rs

crates/bench/benches/fig3_bandwidth.rs:
