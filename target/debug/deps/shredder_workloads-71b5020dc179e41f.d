/root/repo/target/debug/deps/shredder_workloads-71b5020dc179e41f.d: crates/workloads/src/lib.rs crates/workloads/src/bytes.rs crates/workloads/src/mutate.rs crates/workloads/src/text.rs crates/workloads/src/vmimage.rs

/root/repo/target/debug/deps/shredder_workloads-71b5020dc179e41f: crates/workloads/src/lib.rs crates/workloads/src/bytes.rs crates/workloads/src/mutate.rs crates/workloads/src/text.rs crates/workloads/src/vmimage.rs

crates/workloads/src/lib.rs:
crates/workloads/src/bytes.rs:
crates/workloads/src/mutate.rs:
crates/workloads/src/text.rs:
crates/workloads/src/vmimage.rs:
