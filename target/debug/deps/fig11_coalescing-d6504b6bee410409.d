/root/repo/target/debug/deps/fig11_coalescing-d6504b6bee410409.d: crates/bench/benches/fig11_coalescing.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_coalescing-d6504b6bee410409.rmeta: crates/bench/benches/fig11_coalescing.rs Cargo.toml

crates/bench/benches/fig11_coalescing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
