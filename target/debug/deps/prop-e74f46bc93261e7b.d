/root/repo/target/debug/deps/prop-e74f46bc93261e7b.d: crates/backup/tests/prop.rs

/root/repo/target/debug/deps/prop-e74f46bc93261e7b: crates/backup/tests/prop.rs

crates/backup/tests/prop.rs:
