/root/repo/target/debug/deps/fig11_coalescing-d6c97baf76eec7ce.d: crates/bench/benches/fig11_coalescing.rs

/root/repo/target/debug/deps/fig11_coalescing-d6c97baf76eec7ce: crates/bench/benches/fig11_coalescing.rs

crates/bench/benches/fig11_coalescing.rs:
