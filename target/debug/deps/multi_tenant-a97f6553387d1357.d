/root/repo/target/debug/deps/multi_tenant-a97f6553387d1357.d: crates/bench/benches/multi_tenant.rs Cargo.toml

/root/repo/target/debug/deps/libmulti_tenant-a97f6553387d1357.rmeta: crates/bench/benches/multi_tenant.rs Cargo.toml

crates/bench/benches/multi_tenant.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
