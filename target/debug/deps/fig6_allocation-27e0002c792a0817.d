/root/repo/target/debug/deps/fig6_allocation-27e0002c792a0817.d: crates/bench/benches/fig6_allocation.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_allocation-27e0002c792a0817.rmeta: crates/bench/benches/fig6_allocation.rs Cargo.toml

crates/bench/benches/fig6_allocation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
