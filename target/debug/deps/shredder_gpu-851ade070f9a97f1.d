/root/repo/target/debug/deps/shredder_gpu-851ade070f9a97f1.d: crates/gpu/src/lib.rs crates/gpu/src/calibration.rs crates/gpu/src/coalesce.rs crates/gpu/src/config.rs crates/gpu/src/device.rs crates/gpu/src/dma.rs crates/gpu/src/dram.rs crates/gpu/src/executor.rs crates/gpu/src/hostmem.rs crates/gpu/src/kernel.rs crates/gpu/src/simt.rs crates/gpu/src/stream.rs Cargo.toml

/root/repo/target/debug/deps/libshredder_gpu-851ade070f9a97f1.rmeta: crates/gpu/src/lib.rs crates/gpu/src/calibration.rs crates/gpu/src/coalesce.rs crates/gpu/src/config.rs crates/gpu/src/device.rs crates/gpu/src/dma.rs crates/gpu/src/dram.rs crates/gpu/src/executor.rs crates/gpu/src/hostmem.rs crates/gpu/src/kernel.rs crates/gpu/src/simt.rs crates/gpu/src/stream.rs Cargo.toml

crates/gpu/src/lib.rs:
crates/gpu/src/calibration.rs:
crates/gpu/src/coalesce.rs:
crates/gpu/src/config.rs:
crates/gpu/src/device.rs:
crates/gpu/src/dma.rs:
crates/gpu/src/dram.rs:
crates/gpu/src/executor.rs:
crates/gpu/src/hostmem.rs:
crates/gpu/src/kernel.rs:
crates/gpu/src/simt.rs:
crates/gpu/src/stream.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
