/root/repo/target/debug/deps/gpu_streams-1120c0619d3aab68.d: tests/gpu_streams.rs Cargo.toml

/root/repo/target/debug/deps/libgpu_streams-1120c0619d3aab68.rmeta: tests/gpu_streams.rs Cargo.toml

tests/gpu_streams.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
