/root/repo/target/debug/deps/fig15_incremental-99cd0d66f660578e.d: crates/bench/benches/fig15_incremental.rs Cargo.toml

/root/repo/target/debug/deps/libfig15_incremental-99cd0d66f660578e.rmeta: crates/bench/benches/fig15_incremental.rs Cargo.toml

crates/bench/benches/fig15_incremental.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
