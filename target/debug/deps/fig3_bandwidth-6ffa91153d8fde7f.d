/root/repo/target/debug/deps/fig3_bandwidth-6ffa91153d8fde7f.d: crates/bench/benches/fig3_bandwidth.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_bandwidth-6ffa91153d8fde7f.rmeta: crates/bench/benches/fig3_bandwidth.rs Cargo.toml

crates/bench/benches/fig3_bandwidth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
