/root/repo/target/debug/deps/multi_stream-0f2dcb28de68ed63.d: tests/multi_stream.rs

/root/repo/target/debug/deps/multi_stream-0f2dcb28de68ed63: tests/multi_stream.rs

tests/multi_stream.rs:
