/root/repo/target/debug/deps/multi_stream-70b380e91dc7b5a3.d: tests/multi_stream.rs

/root/repo/target/debug/deps/multi_stream-70b380e91dc7b5a3: tests/multi_stream.rs

tests/multi_stream.rs:
