/root/repo/target/debug/deps/shredder_hdfs-1456987b1d1f6d47.d: crates/hdfs/src/lib.rs crates/hdfs/src/fs.rs crates/hdfs/src/input_format.rs crates/hdfs/src/namenode.rs crates/hdfs/src/sink.rs crates/hdfs/src/store.rs Cargo.toml

/root/repo/target/debug/deps/libshredder_hdfs-1456987b1d1f6d47.rmeta: crates/hdfs/src/lib.rs crates/hdfs/src/fs.rs crates/hdfs/src/input_format.rs crates/hdfs/src/namenode.rs crates/hdfs/src/sink.rs crates/hdfs/src/store.rs Cargo.toml

crates/hdfs/src/lib.rs:
crates/hdfs/src/fs.rs:
crates/hdfs/src/input_format.rs:
crates/hdfs/src/namenode.rs:
crates/hdfs/src/sink.rs:
crates/hdfs/src/store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
