/root/repo/target/debug/deps/fig12_throughput-60421470964ec974.d: crates/bench/benches/fig12_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_throughput-60421470964ec974.rmeta: crates/bench/benches/fig12_throughput.rs Cargo.toml

crates/bench/benches/fig12_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
