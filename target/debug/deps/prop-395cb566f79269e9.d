/root/repo/target/debug/deps/prop-395cb566f79269e9.d: crates/des/tests/prop.rs

/root/repo/target/debug/deps/prop-395cb566f79269e9: crates/des/tests/prop.rs

crates/des/tests/prop.rs:
