/root/repo/target/debug/deps/prop-369fd764011c0024.d: crates/rabin/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-369fd764011c0024.rmeta: crates/rabin/tests/prop.rs Cargo.toml

crates/rabin/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
