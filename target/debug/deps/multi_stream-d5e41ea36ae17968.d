/root/repo/target/debug/deps/multi_stream-d5e41ea36ae17968.d: tests/multi_stream.rs Cargo.toml

/root/repo/target/debug/deps/libmulti_stream-d5e41ea36ae17968.rmeta: tests/multi_stream.rs Cargo.toml

tests/multi_stream.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
