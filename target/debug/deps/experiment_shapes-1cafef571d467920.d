/root/repo/target/debug/deps/experiment_shapes-1cafef571d467920.d: tests/experiment_shapes.rs

/root/repo/target/debug/deps/experiment_shapes-1cafef571d467920: tests/experiment_shapes.rs

tests/experiment_shapes.rs:
