/root/repo/target/debug/deps/criterion_primitives-5813225831b95aa7.d: crates/bench/benches/criterion_primitives.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion_primitives-5813225831b95aa7.rmeta: crates/bench/benches/criterion_primitives.rs Cargo.toml

crates/bench/benches/criterion_primitives.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
