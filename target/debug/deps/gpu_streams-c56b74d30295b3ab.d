/root/repo/target/debug/deps/gpu_streams-c56b74d30295b3ab.d: tests/gpu_streams.rs

/root/repo/target/debug/deps/gpu_streams-c56b74d30295b3ab: tests/gpu_streams.rs

tests/gpu_streams.rs:
