/root/repo/target/debug/deps/shredder_bench-a317369b7723947c.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/shredder_bench-a317369b7723947c: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
