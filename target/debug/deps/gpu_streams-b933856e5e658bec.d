/root/repo/target/debug/deps/gpu_streams-b933856e5e658bec.d: tests/gpu_streams.rs

/root/repo/target/debug/deps/gpu_streams-b933856e5e658bec: tests/gpu_streams.rs

tests/gpu_streams.rs:
