/root/repo/target/debug/deps/shredder_backup-28830dd0c34e5237.d: crates/backup/src/lib.rs crates/backup/src/config.rs crates/backup/src/index.rs crates/backup/src/server.rs crates/backup/src/site.rs

/root/repo/target/debug/deps/libshredder_backup-28830dd0c34e5237.rmeta: crates/backup/src/lib.rs crates/backup/src/config.rs crates/backup/src/index.rs crates/backup/src/server.rs crates/backup/src/site.rs

crates/backup/src/lib.rs:
crates/backup/src/config.rs:
crates/backup/src/index.rs:
crates/backup/src/server.rs:
crates/backup/src/site.rs:
