/root/repo/target/debug/deps/shredder_hash-aba3c4cab7f22f5a.d: crates/hash/src/lib.rs crates/hash/src/digest.rs crates/hash/src/fnv.rs crates/hash/src/sha256.rs Cargo.toml

/root/repo/target/debug/deps/libshredder_hash-aba3c4cab7f22f5a.rmeta: crates/hash/src/lib.rs crates/hash/src/digest.rs crates/hash/src/fnv.rs crates/hash/src/sha256.rs Cargo.toml

crates/hash/src/lib.rs:
crates/hash/src/digest.rs:
crates/hash/src/fnv.rs:
crates/hash/src/sha256.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
