/root/repo/target/debug/deps/shredder_rabin-7ae016c76897d015.d: crates/rabin/src/lib.rs crates/rabin/src/chunker.rs crates/rabin/src/fixed.rs crates/rabin/src/parallel.rs crates/rabin/src/poly.rs crates/rabin/src/skip.rs crates/rabin/src/tables.rs

/root/repo/target/debug/deps/libshredder_rabin-7ae016c76897d015.rlib: crates/rabin/src/lib.rs crates/rabin/src/chunker.rs crates/rabin/src/fixed.rs crates/rabin/src/parallel.rs crates/rabin/src/poly.rs crates/rabin/src/skip.rs crates/rabin/src/tables.rs

/root/repo/target/debug/deps/libshredder_rabin-7ae016c76897d015.rmeta: crates/rabin/src/lib.rs crates/rabin/src/chunker.rs crates/rabin/src/fixed.rs crates/rabin/src/parallel.rs crates/rabin/src/poly.rs crates/rabin/src/skip.rs crates/rabin/src/tables.rs

crates/rabin/src/lib.rs:
crates/rabin/src/chunker.rs:
crates/rabin/src/fixed.rs:
crates/rabin/src/parallel.rs:
crates/rabin/src/poly.rs:
crates/rabin/src/skip.rs:
crates/rabin/src/tables.rs:
