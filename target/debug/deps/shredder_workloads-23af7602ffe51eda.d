/root/repo/target/debug/deps/shredder_workloads-23af7602ffe51eda.d: crates/workloads/src/lib.rs crates/workloads/src/bytes.rs crates/workloads/src/mutate.rs crates/workloads/src/text.rs crates/workloads/src/vmimage.rs

/root/repo/target/debug/deps/libshredder_workloads-23af7602ffe51eda.rlib: crates/workloads/src/lib.rs crates/workloads/src/bytes.rs crates/workloads/src/mutate.rs crates/workloads/src/text.rs crates/workloads/src/vmimage.rs

/root/repo/target/debug/deps/libshredder_workloads-23af7602ffe51eda.rmeta: crates/workloads/src/lib.rs crates/workloads/src/bytes.rs crates/workloads/src/mutate.rs crates/workloads/src/text.rs crates/workloads/src/vmimage.rs

crates/workloads/src/lib.rs:
crates/workloads/src/bytes.rs:
crates/workloads/src/mutate.rs:
crates/workloads/src/text.rs:
crates/workloads/src/vmimage.rs:
