/root/repo/target/debug/deps/prop-4db6246be40feab8.d: crates/mapreduce/tests/prop.rs

/root/repo/target/debug/deps/prop-4db6246be40feab8: crates/mapreduce/tests/prop.rs

crates/mapreduce/tests/prop.rs:
