/root/repo/target/debug/deps/shredder-28dae1e29d29ca4f.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libshredder-28dae1e29d29ca4f.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
