/root/repo/target/debug/deps/shredder_hash-1cb8e074be13988b.d: crates/hash/src/lib.rs crates/hash/src/digest.rs crates/hash/src/fnv.rs crates/hash/src/sha256.rs

/root/repo/target/debug/deps/libshredder_hash-1cb8e074be13988b.rmeta: crates/hash/src/lib.rs crates/hash/src/digest.rs crates/hash/src/fnv.rs crates/hash/src/sha256.rs

crates/hash/src/lib.rs:
crates/hash/src/digest.rs:
crates/hash/src/fnv.rs:
crates/hash/src/sha256.rs:
