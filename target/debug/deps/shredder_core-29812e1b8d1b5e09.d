/root/repo/target/debug/deps/shredder_core-29812e1b8d1b5e09.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/host_chunker.rs crates/core/src/pipeline.rs crates/core/src/report.rs crates/core/src/service.rs crates/core/src/session.rs crates/core/src/sink.rs crates/core/src/source.rs Cargo.toml

/root/repo/target/debug/deps/libshredder_core-29812e1b8d1b5e09.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/host_chunker.rs crates/core/src/pipeline.rs crates/core/src/report.rs crates/core/src/service.rs crates/core/src/session.rs crates/core/src/sink.rs crates/core/src/source.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/engine.rs:
crates/core/src/error.rs:
crates/core/src/host_chunker.rs:
crates/core/src/pipeline.rs:
crates/core/src/report.rs:
crates/core/src/service.rs:
crates/core/src/session.rs:
crates/core/src/sink.rs:
crates/core/src/source.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
