/root/repo/target/debug/deps/prop-f67bec07092338de.d: crates/rabin/tests/prop.rs

/root/repo/target/debug/deps/prop-f67bec07092338de: crates/rabin/tests/prop.rs

crates/rabin/tests/prop.rs:
