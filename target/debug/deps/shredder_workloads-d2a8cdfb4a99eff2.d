/root/repo/target/debug/deps/shredder_workloads-d2a8cdfb4a99eff2.d: crates/workloads/src/lib.rs crates/workloads/src/bytes.rs crates/workloads/src/mutate.rs crates/workloads/src/text.rs crates/workloads/src/vmimage.rs

/root/repo/target/debug/deps/libshredder_workloads-d2a8cdfb4a99eff2.rlib: crates/workloads/src/lib.rs crates/workloads/src/bytes.rs crates/workloads/src/mutate.rs crates/workloads/src/text.rs crates/workloads/src/vmimage.rs

/root/repo/target/debug/deps/libshredder_workloads-d2a8cdfb4a99eff2.rmeta: crates/workloads/src/lib.rs crates/workloads/src/bytes.rs crates/workloads/src/mutate.rs crates/workloads/src/text.rs crates/workloads/src/vmimage.rs

crates/workloads/src/lib.rs:
crates/workloads/src/bytes.rs:
crates/workloads/src/mutate.rs:
crates/workloads/src/text.rs:
crates/workloads/src/vmimage.rs:
