/root/repo/target/debug/deps/shredder-c168bde5947e2fe5.d: src/lib.rs

/root/repo/target/debug/deps/libshredder-c168bde5947e2fe5.rlib: src/lib.rs

/root/repo/target/debug/deps/libshredder-c168bde5947e2fe5.rmeta: src/lib.rs

src/lib.rs:
