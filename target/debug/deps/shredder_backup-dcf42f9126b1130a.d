/root/repo/target/debug/deps/shredder_backup-dcf42f9126b1130a.d: crates/backup/src/lib.rs crates/backup/src/config.rs crates/backup/src/index.rs crates/backup/src/server.rs crates/backup/src/site.rs

/root/repo/target/debug/deps/shredder_backup-dcf42f9126b1130a: crates/backup/src/lib.rs crates/backup/src/config.rs crates/backup/src/index.rs crates/backup/src/server.rs crates/backup/src/site.rs

crates/backup/src/lib.rs:
crates/backup/src/config.rs:
crates/backup/src/index.rs:
crates/backup/src/server.rs:
crates/backup/src/site.rs:
